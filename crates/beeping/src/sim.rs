//! Round execution of a [`BeepingProtocol`] over a graph.

use std::borrow::Cow;

use graphs::{Graph, NodeId};
use rand::Rng;
use rand_pcg::Pcg64Mcg;

use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
use crate::channel::{ChannelFault, ChannelState, JammerKind};
use crate::churn::ChurnError;
#[cfg(debug_assertions)]
use crate::protocol::SettledRound;
use crate::protocol::{BeepSignal, BeepingProtocol};
use crate::rng;
use crate::trace::RoundReport;
use telemetry::Telemetry;

pub use crate::protocol::Channels as SimulatorChannels;

/// Purpose tag of the channel-noise RNG stream (see [`rng::aux_rng`]); kept
/// disjoint from every node stream and from the fault/init streams used by
/// downstream crates.
const CHANNEL_RNG_PURPOSE: u64 = 0xC4A7_7E57;

/// Purpose tag of the Byzantine-behavior RNG stream (babbler coins and
/// crash-restart boot states); disjoint from every other stream so a plan
/// of purely deterministic behaviors — or an empty plan — never perturbs
/// the rest of the execution.
const BYZ_RNG_PURPOSE: u64 = 0xB42A_17E5;

/// Listening capability of a transmitting node.
///
/// The paper's model is **full duplex** ("beeping model with collision
/// detection"): a beeping node still hears its neighbors. The weaker
/// half-duplex variant from the broader beeping literature — where
/// transmitting drowns out reception — is provided for model ablations:
/// Algorithm 1's lone-beep detection fundamentally requires full duplex,
/// and experiment `ABL-HD` demonstrates the failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplexMode {
    /// A beeping node hears its neighbors (the paper's model).
    #[default]
    Full,
    /// A beeping node hears nothing that round.
    Half,
}

/// Selects the delivery kernel used by [`Simulator::step`].
///
/// Both engines execute the *same model* and are bit-identical per seed:
/// they call `transmit`/`receive` in the same order, draw from the same RNG
/// streams in the same order, and produce identical `sent`/`heard` vectors
/// and [`RoundReport`]s. The differential test suite
/// (`tests/engine_differential.rs`) pins this equivalence across graph
/// families, channel counts, duplex modes and composed fault plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Reference kernel: every listener gathers over all its neighbors —
    /// O(m) work per round regardless of activity.
    Scalar,
    /// Fast kernel: the round's beepers *scatter* their signals into
    /// per-channel word-packed "heard" bitsets — O(Σ deg(beeper)) work,
    /// which near stabilization (where only the MIS nodes beep) is far
    /// below O(m). Falls back to the scalar gather whenever per-edge beep
    /// loss is in effect this round, because loss draws one coin per
    /// (listener, beeping neighbor) pair in listener order and that order
    /// must be preserved exactly.
    #[default]
    Scatter,
    /// Event-driven kernel: only the *frontier* — nodes whose state or
    /// incident signals changed — executes each round; the settled
    /// complement is skipped under the draws-when-settled contract
    /// ([`crate::protocol::SettledRound`]), with its pinned signals reused
    /// from persistent word-packed bitsets and its RNG streams ticked
    /// lazily by jump-ahead. Post-stabilization and localized fault/churn
    /// rounds cost O(Σ deg(frontier)) instead of O(n + m); a frontier
    /// denser than [`frontier_fallback_threshold`] falls back to one full
    /// scatter sweep that also rebuilds the settled set. On an unreliable
    /// channel or under a Byzantine plan the engine runs the phased
    /// scatter path (channel noise draws per-listener coins that skipping
    /// cannot reproduce). Bit-identical to the other engines per seed.
    Frontier,
    /// Parallel scatter kernel: the node range is partitioned into
    /// word-aligned, work-balanced worker ranges (`graphs::ShardPlan`) and
    /// `threads` scoped worker threads run the round in two phases —
    /// transmit + scatter into *thread-local* per-channel word accumulators,
    /// then a fixed-shard-order OR-merge into the shared bitsets fused with
    /// gather + receive. Per-node RNG streams are independent and the
    /// per-channel OR is commutative, so same-seed runs are bit-identical
    /// to every other engine at any thread count. Falls back to the phased
    /// scatter path whenever the channel is unreliable or a Byzantine plan
    /// is installed: those draw from *shared* noise/adversary streams in
    /// strict node order, which parallel execution cannot preserve.
    ParScatter {
        /// Worker-thread count; clamped to at least 1, and to the number
        /// of word-aligned shards the graph actually yields.
        threads: usize,
    },
}

/// Deterministic work counters accumulated by every engine; see
/// [`Simulator::work`].
///
/// These count *model work*, not wall clock: for a fixed `(graph, protocol,
/// seed, engine, fault plan)` they are bit-reproducible across machines and
/// runs, which makes them the right substrate for performance-regression
/// tests — a kernel that does asymptotically more work is caught even on a
/// noisy shared box where timing is meaningless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Protocol executions: one per node that ran a live round — every
    /// active node on the full-sweep engines, only the executed
    /// (dirty ∪ woken) set on the event-driven frontier engine.
    pub node_execs: u64,
    /// Adjacency entries traversed by the delivery kernel: `deg(listener)`
    /// per gathering listener on the scalar engine, `deg(beeper)` per
    /// beeping channel on the scatter-family engines.
    pub edge_visits: u64,
}

/// Builds the word-packed all-active participation bitset for `n` nodes:
/// bits `0..n` set, tail bits of the final word clear.
fn full_active_bits(n: usize) -> Vec<u64> {
    let words = n.div_ceil(64);
    let mut bits = vec![u64::MAX; words];
    if !n.is_multiple_of(64) {
        if let Some(last) = bits.last_mut() {
            *last = (1u64 << (n % 64)) - 1;
        }
    }
    bits
}

/// Frontier density at which [`EngineMode::Frontier`] abandons the sparse
/// round and runs one full scatter sweep instead: a frontier *strictly
/// larger* than this falls back. Sized so the sparse path's per-node
/// bookkeeping can never lose to the flat sweep by more than a small
/// constant factor.
pub fn frontier_fallback_threshold(n: usize) -> usize {
    (n / 8).max(16)
}

/// A synchronous-round simulator of the full-duplex beeping model.
///
/// Each call to [`Simulator::step`] executes one round:
///
/// 1. every node draws its transmission from
///    [`BeepingProtocol::transmit`] using its private random stream;
/// 2. the network delivers, to each node, the OR over its *neighbors'*
///    transmissions per channel (collision-detection semantics: "≥ 1 beep",
///    nothing more);
/// 3. every node updates its state via [`BeepingProtocol::receive`].
///
/// The simulator is deterministic for a fixed `(graph, protocol, initial
/// states, master seed, channel model, churn schedule)`.
///
/// # Unreliable-network extensions
///
/// Three adversary axes beyond the paper's model compose with everything
/// else:
///
/// - an unreliable channel ([`Simulator::with_channel`]): beep loss,
///   spurious beeps, burst-noise windows and jammer nodes, applied between
///   the OR-aggregation and `receive`. Channel randomness comes from a
///   dedicated stream, so a [`ChannelFault::reliable`] configuration
///   reproduces noise-free executions bit-for-bit;
/// - topology churn ([`Simulator::insert_edge`], [`Simulator::remove_edge`],
///   [`Simulator::node_leave`], [`Simulator::node_join`]): the graph view is
///   copy-on-write, so the borrowed input graph is cloned on the first
///   mutation and untouched otherwise. A departed node stays allocated but
///   *inactive* — silent, deaf, state frozen — until it rejoins;
/// - Byzantine nodes ([`Simulator::with_byzantine`]): per-node permanent
///   behavior overrides — stuck/babbling radios, channel-2 liars and
///   crash-restart reboots — applied after the jammer overrides in the
///   transmit phase (a Byzantine radio wins over a jammed one). Behavior
///   randomness lives on its own stream; an empty plan draws nothing and
///   reproduces the honest execution bit-for-bit.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Simulator<'g, P: BeepingProtocol> {
    graph: Cow<'g, Graph>,
    protocol: P,
    states: Vec<P::State>,
    rngs: Vec<Pcg64Mcg>,
    round: u64,
    sent: Vec<BeepSignal>,
    heard: Vec<BeepSignal>,
    duplex: DuplexMode,
    channel: ChannelFault,
    channel_state: ChannelState,
    channel_rng: Pcg64Mcg,
    byzantine: ByzantinePlan<P::State>,
    /// Dense per-node lookup derived from `byzantine` (last assignment per
    /// node wins), rebuilt by [`Simulator::set_byzantine`].
    byz: Vec<Option<ByzantineBehavior<P::State>>>,
    byz_rng: Pcg64Mcg,
    active: Vec<bool>,
    /// Word-packed mirror of `active` plus the count of departed nodes,
    /// maintained in lockstep by churn and restore. Makes the fast paths'
    /// all-active check O(1) instead of an O(n) scan, and gives the
    /// parallel kernel a compact shared participation bitset.
    active_bits: Vec<u64>,
    inactive: usize,
    engine: EngineMode,
    /// Scatter-kernel scratch: word-packed per-listener "heard" and
    /// per-beeper "sent" bitsets, one per channel, rebuilt every round
    /// (never part of a checkpoint).
    scatter_heard1: Vec<u64>,
    scatter_heard2: Vec<u64>,
    scatter_sent1: Vec<u64>,
    scatter_sent2: Vec<u64>,
    hook: InvariantHook<P::State>,
    /// Frontier-kernel bookkeeping (dirty set, settled flags, lazy RNG
    /// accounting, persistent signal bitsets and running report totals).
    /// Purely derived from the execution: never part of a checkpoint —
    /// [`Simulator::restore`] resets it and the next frontier round
    /// rebuilds it with a full sweep.
    frontier: FrontierState,
    /// Parallel-kernel bookkeeping (worker ranges and thread-local word
    /// accumulators), lazily built on the first [`EngineMode::ParScatter`]
    /// fast round and rebuilt when the topology or thread count changes.
    /// Purely derived scratch: never part of a checkpoint.
    par: Option<crate::par::ParPlan>,
    /// Deterministic work counters (protocol executions and adjacency
    /// visits); see [`Simulator::work`]. Pure accounting — never consulted
    /// for control flow, identical for a fixed execution regardless of
    /// telemetry, hooks or wall clock.
    work: WorkCounters,
    /// Observational only: phase timers and engine counters. Never consulted
    /// for control flow and never draws randomness, so a disabled handle
    /// (the default) and an enabled one produce bit-identical executions —
    /// pinned by the telemetry proptests in `tests/engine_differential.rs`.
    telemetry: Telemetry,
}

/// Bookkeeping of the frontier kernel; see [`EngineMode::Frontier`].
///
/// Invariants while `synced` holds (all of them re-established by a full
/// sweep, and conservatively repairable — executing a settled node is
/// harmless because its round is a draw-free fixpoint per the
/// draws-when-settled contract):
///
/// - every node is either *settled* (skipped; `sent[v]` pinned, RNG ticked
///   `rate[v]` outputs per round when materialized) or queued in `dirty`
///   for live execution next round;
/// - `rngs[v]` reflects all draws through round `last_exec[v]`; for
///   non-settled nodes `last_exec[v]` is the current round;
/// - `sent1`/`sent2` are word-packed per-channel views of the `sent`
///   vector, and the six `total_*` fields equal the
///   [`RoundReport::from_signals`] counters over the current
///   `sent`/`heard` vectors.
#[derive(Debug, Default)]
struct FrontierState {
    /// Bookkeeping valid? `false` forces a full rebuild sweep.
    synced: bool,
    /// Nodes queued for live execution next round (no duplicates; guarded
    /// by `queued`).
    dirty: Vec<NodeId>,
    /// `queued[v]` ⇔ `v ∈ dirty`.
    queued: Vec<bool>,
    /// Settled nodes — skipped under the draws-when-settled contract.
    settled: Vec<bool>,
    /// Generator outputs a settled node's skipped round consumes.
    rate: Vec<u64>,
    /// Round through which `rngs[v]` is materialized.
    last_exec: Vec<u64>,
    /// Persistent word-packed per-channel transmissions (bit `v` set ⇔
    /// `sent[v]` beeps on the channel); patched in place as signals change.
    sent1: Vec<u64>,
    sent2: Vec<u64>,
    /// Running `RoundReport` counters over the persistent signal vectors.
    total_beeps1: usize,
    total_beeps2: usize,
    total_hearers1: usize,
    total_hearers2: usize,
    total_lone1: usize,
    total_lone2: usize,
    /// Scratch lists reused across sparse rounds.
    exec: Vec<NodeId>,
    changed: Vec<NodeId>,
    listeners: Vec<NodeId>,
    listener_mark: Vec<bool>,
    wake: Vec<NodeId>,
}

impl FrontierState {
    /// Sizes the bookkeeping for an `n`-node network (idempotent).
    fn ensure_init(&mut self, n: usize) {
        if self.queued.len() == n {
            return;
        }
        let words = n.div_ceil(64);
        self.synced = false;
        self.dirty = Vec::new();
        self.queued = vec![false; n];
        self.settled = vec![false; n];
        self.rate = vec![0; n];
        self.last_exec = vec![0; n];
        self.sent1 = vec![0; words];
        self.sent2 = vec![0; words];
        self.listener_mark = vec![false; n];
    }

    /// Queues `v` for live execution next round (deduplicated).
    fn push_dirty(&mut self, v: NodeId) {
        if !self.queued[v] {
            self.queued[v] = true;
            self.dirty.push(v);
        }
    }

    /// Materializes `v`'s generator through `target`: ticks the skipped
    /// rounds' draws in bulk via jump-ahead.
    fn materialize(&mut self, rng: &mut Pcg64Mcg, v: NodeId, target: u64) {
        let from = self.last_exec[v];
        if from < target {
            if self.rate[v] > 0 {
                rng::advance_steps(rng, u128::from(target - from) * u128::from(self.rate[v]));
            }
            self.last_exec[v] = target;
        }
    }

    /// The running totals as a report for round `round`.
    fn report(&self, round: u64) -> RoundReport {
        RoundReport {
            round,
            beeps_channel1: self.total_beeps1,
            beeps_channel2: self.total_beeps2,
            hearers_channel1: self.total_hearers1,
            hearers_channel2: self.total_hearers2,
            lone_beepers: self.total_lone1,
            lone_beepers_channel2: self.total_lone2,
        }
    }
}

/// Debug-build enforcement of the draws-when-settled contract at the
/// moment a node settles: replays `transmit` on a probe generator and
/// checks the pinned signal, the declared draw count (against the
/// jump-ahead the engine will use) and that `receive` on the settled
/// `(sent, heard)` pair is a draw-free state fixpoint.
#[cfg(debug_assertions)]
fn debug_check_settled_contract<P: BeepingProtocol>(
    protocol: &P,
    v: NodeId,
    state: &P::State,
    rng: &Pcg64Mcg,
    sr: SettledRound,
    heard: BeepSignal,
) {
    let mut probe = rng.clone();
    let signal = protocol.transmit(v, state, &mut probe);
    assert_eq!(signal, sr.signal, "settled_round pinned the wrong signal for node {v}");
    let mut jumped = rng.clone();
    rng::advance_steps(&mut jumped, u128::from(sr.draws));
    assert_eq!(
        probe, jumped,
        "settled_round declared {} draws but transmit consumed differently (node {v})",
        sr.draws
    );
    let mut replayed = state.clone();
    let before = probe.clone();
    protocol.receive(v, &mut replayed, signal, heard, &mut probe);
    assert_eq!(probe, before, "settled receive drew randomness (node {v})");
    assert_eq!(
        format!("{replayed:?}"),
        format!("{state:?}"),
        "settled receive changed state (node {v})"
    );
}

/// Signature of a per-round observer: graph, 1-based round, states.
type HookFn<S> = dyn FnMut(&Graph, u64, &[S]);

/// The per-round observer slot of a [`Simulator`]; wraps the boxed closure
/// so the simulator can keep deriving [`Debug`].
struct InvariantHook<S>(Option<Box<HookFn<S>>>);

impl<S> std::fmt::Debug for InvariantHook<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "InvariantHook(installed)"
        } else {
            "InvariantHook(none)"
        })
    }
}

impl<'g, P: BeepingProtocol> Simulator<'g, P> {
    /// Creates a simulator over `graph` running `protocol` from
    /// `initial_states`, with all node randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_states.len() != graph.len()`.
    pub fn new(
        graph: &'g Graph,
        protocol: P,
        initial_states: Vec<P::State>,
        seed: u64,
    ) -> Simulator<'g, P> {
        assert_eq!(initial_states.len(), graph.len(), "one initial state per node is required");
        let n = graph.len();
        Simulator {
            graph: Cow::Borrowed(graph),
            protocol,
            states: initial_states,
            rngs: rng::node_rngs(seed, n),
            round: 0,
            sent: vec![BeepSignal::silent(); n],
            heard: vec![BeepSignal::silent(); n],
            duplex: DuplexMode::Full,
            channel: ChannelFault::reliable(),
            channel_state: ChannelState::default(),
            channel_rng: rng::aux_rng(seed, CHANNEL_RNG_PURPOSE),
            byzantine: ByzantinePlan::new(),
            byz: vec![None; n],
            byz_rng: rng::aux_rng(seed, BYZ_RNG_PURPOSE),
            active: vec![true; n],
            active_bits: full_active_bits(n),
            inactive: 0,
            engine: EngineMode::default(),
            scatter_heard1: Vec::new(),
            scatter_heard2: Vec::new(),
            scatter_sent1: Vec::new(),
            scatter_sent2: Vec::new(),
            hook: InvariantHook(None),
            frontier: FrontierState::default(),
            par: None,
            work: WorkCounters::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Like [`Simulator::new`] but takes ownership of the graph, producing
    /// a `'static` simulator that can be stored, moved across threads or
    /// rebuilt from a durable snapshot without tying it to a borrowed
    /// topology. Behavior is otherwise identical — the owned graph is the
    /// initial copy-on-write state, exactly as if churn had already forced
    /// a private copy.
    ///
    /// # Panics
    ///
    /// Panics if `initial_states.len() != graph.len()`.
    pub fn new_owned(
        graph: Graph,
        protocol: P,
        initial_states: Vec<P::State>,
        seed: u64,
    ) -> Simulator<'static, P> {
        assert_eq!(initial_states.len(), graph.len(), "one initial state per node is required");
        let n = graph.len();
        Simulator {
            graph: Cow::Owned(graph),
            protocol,
            states: initial_states,
            rngs: rng::node_rngs(seed, n),
            round: 0,
            sent: vec![BeepSignal::silent(); n],
            heard: vec![BeepSignal::silent(); n],
            duplex: DuplexMode::Full,
            channel: ChannelFault::reliable(),
            channel_state: ChannelState::default(),
            channel_rng: rng::aux_rng(seed, CHANNEL_RNG_PURPOSE),
            byzantine: ByzantinePlan::new(),
            byz: vec![None; n],
            byz_rng: rng::aux_rng(seed, BYZ_RNG_PURPOSE),
            active: vec![true; n],
            active_bits: full_active_bits(n),
            inactive: 0,
            engine: EngineMode::default(),
            scatter_heard1: Vec::new(),
            scatter_heard2: Vec::new(),
            scatter_sent1: Vec::new(),
            scatter_sent2: Vec::new(),
            hook: InvariantHook(None),
            frontier: FrontierState::default(),
            par: None,
            work: WorkCounters::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle (builder style); see
    /// [`Simulator::set_telemetry`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Simulator<'g, P> {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a telemetry handle, replacing any previous one. The
    /// simulator records per-phase wall-clock timers (transmit / delivery /
    /// receive on the phased path, one fused span on the no-fault fast
    /// path) and per-engine round counters into it. Like the invariant
    /// hook, telemetry observes only: it draws no randomness and never
    /// alters a round's result, so attaching a handle never changes an
    /// execution. Round *events* are emitted by the runner layer
    /// (`mis::runner`), which knows the protocol-level observables.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Selects the delivery kernel (builder style); the default is
    /// [`EngineMode::Scatter`]. Both kernels are bit-identical per seed —
    /// [`EngineMode::Scalar`] is kept as the executable reference.
    pub fn with_engine(mut self, engine: EngineMode) -> Simulator<'g, P> {
        self.engine = engine;
        self
    }

    /// Switches the delivery kernel mid-run. Safe at any round boundary:
    /// the kernels share all RNG streams and state layouts. Leaving (or
    /// re-entering) the frontier kernel materializes any lazily-accounted
    /// RNG positions and discards the frontier bookkeeping — the next
    /// frontier round rebuilds it with one full sweep.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.frontier_desync();
        self.engine = engine;
    }

    /// The active delivery kernel.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Installs a per-round invariant hook (builder style); see
    /// [`Simulator::set_invariant_hook`].
    pub fn with_invariant_hook<F>(mut self, hook: F) -> Simulator<'g, P>
    where
        F: FnMut(&Graph, u64, &[P::State]) + 'static,
    {
        self.set_invariant_hook(hook);
        self
    }

    /// Installs a per-round invariant hook, replacing any previous one. The
    /// hook runs at the end of every [`Simulator::step`] with the current
    /// (possibly churned) topology, the 1-based round just executed and the
    /// post-update states; it is expected to panic on a violated invariant.
    /// Runners install a checker here in debug builds (e.g.
    /// `mis::invariant::InvariantChecker`); the hook draws no randomness
    /// and observes state only, so installing one never changes an
    /// execution.
    pub fn set_invariant_hook<F>(&mut self, hook: F)
    where
        F: FnMut(&Graph, u64, &[P::State]) + 'static,
    {
        self.hook = InvariantHook(Some(Box::new(hook)));
    }

    /// Removes the invariant hook, if any.
    pub fn clear_invariant_hook(&mut self) {
        self.hook = InvariantHook(None);
    }

    /// Switches to the given duplex mode (builder style); the default is
    /// [`DuplexMode::Full`], the paper's model.
    pub fn with_duplex(mut self, duplex: DuplexMode) -> Simulator<'g, P> {
        self.duplex = duplex;
        self
    }

    /// Installs an unreliable-channel model (builder style); the default is
    /// [`ChannelFault::reliable`], the paper's perfect channel.
    ///
    /// # Panics
    ///
    /// Panics if a declared jammer node is out of range.
    pub fn with_channel(mut self, channel: ChannelFault) -> Simulator<'g, P> {
        self.set_channel(channel);
        self
    }

    /// Replaces the channel model mid-run (e.g. to start or stop a noise
    /// regime at an adversary-chosen round). The burst-window position is
    /// reset to the good state.
    ///
    /// # Panics
    ///
    /// Panics if a declared jammer node is out of range.
    pub fn set_channel(&mut self, channel: ChannelFault) {
        let n = self.graph.len();
        for &(v, _) in channel.jammers() {
            assert!(v < n, "jammer node {v} out of range for n={n}");
        }
        // Noise regimes (and their jammer windows) are global events for
        // the frontier kernel: every listener's observation may change, so
        // the settled set is discarded wholesale rather than seeded.
        self.frontier_desync();
        self.channel = channel;
        self.channel_state = ChannelState::default();
    }

    /// Installs a Byzantine plan (builder style); the default is the empty
    /// plan, the honest network.
    ///
    /// # Panics
    ///
    /// Panics if [`ByzantinePlan::validate`] rejects the plan for this
    /// network and protocol.
    pub fn with_byzantine(mut self, plan: ByzantinePlan<P::State>) -> Simulator<'g, P> {
        self.set_byzantine(plan);
        self
    }

    /// Replaces the Byzantine plan mid-run (e.g. to break a node at an
    /// adversary-chosen round). The Byzantine RNG stream keeps its position:
    /// swapping plans never rewinds randomness.
    ///
    /// # Panics
    ///
    /// Panics if [`ByzantinePlan::validate`] rejects the plan for this
    /// network and protocol.
    pub fn set_byzantine(&mut self, plan: ByzantinePlan<P::State>) {
        let n = self.graph.len();
        if let Err(e) = plan.validate(n, self.protocol.channels()) {
            panic!("invalid byzantine plan: {e}");
        }
        // A Byzantine plan swap (including a crash-restart schedule being
        // installed or cleared) reroutes the shared Byzantine stream, which
        // the frontier kernel cannot account per node — discard and rebuild.
        self.frontier_desync();
        let mut byz: Vec<Option<ByzantineBehavior<P::State>>> = vec![None; n];
        for (v, behavior) in plan.overrides() {
            byz[*v] = Some(behavior.clone());
        }
        self.byz = byz;
        self.byzantine = plan;
    }

    /// The installed Byzantine plan.
    pub fn byzantine(&self) -> &ByzantinePlan<P::State> {
        &self.byzantine
    }

    /// The active duplex mode.
    pub fn duplex(&self) -> DuplexMode {
        self.duplex
    }

    /// The installed channel model.
    pub fn channel(&self) -> &ChannelFault {
        &self.channel
    }

    /// The channel model's per-execution state (the burst-window position).
    pub fn channel_state(&self) -> &ChannelState {
        &self.channel_state
    }

    /// The graph being simulated (the current, possibly churned, topology).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol (the ROM).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current node states (the RAM), indexed by node id.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The state of a single node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn state(&self, node: NodeId) -> &P::State {
        &self.states[node]
    }

    /// Overwrites the state of `node` — the transient-fault ("RAM
    /// corruption") entry point. The protocol logic (ROM) is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn corrupt_state(&mut self, node: NodeId, state: P::State) {
        // Frontier seeding: a corrupted node's next transmission may
        // change, so it re-executes live; its neighbors are woken lazily
        // if and when its signal actually changes.
        self.frontier_unsettle(node);
        self.states[node] = state;
    }

    /// Applies `f` to every node state — bulk fault injection or
    /// adversarial re-initialization mid-run.
    pub fn corrupt_all<F: FnMut(NodeId, &mut P::State)>(&mut self, mut f: F) {
        self.frontier_desync();
        for (v, s) in self.states.iter_mut().enumerate() {
            f(v, s);
        }
    }

    /// Topology churn: inserts the undirected edge `{u, v}` (copy-on-write;
    /// the borrowed input graph is never modified). Returns `true` if the
    /// edge was new.
    ///
    /// # Errors
    ///
    /// [`ChurnError::NodeOutOfRange`] if an endpoint is `>= n`,
    /// [`ChurnError::SelfEdge`] if `u == v`; the topology is unchanged on
    /// error.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, ChurnError> {
        self.check_churn_edge(u, v)?;
        match self.graph.to_mut().insert_edge(u, v) {
            Ok(inserted) => {
                if inserted {
                    // Frontier seeding: only the endpoints' observations
                    // can change — their next round runs live.
                    self.frontier_unsettle(u);
                    self.frontier_unsettle(v);
                    self.par = None; // degrees changed: replan worker ranges
                }
                Ok(inserted)
            }
            // Both graph-level failure modes are pre-checked above; map
            // defensively rather than unwrap so a future GraphError variant
            // cannot reintroduce a panic path.
            Err(_) => Err(ChurnError::SelfEdge(u)),
        }
    }

    /// Topology churn: removes the undirected edge `{u, v}`; returns `true`
    /// if it was present.
    ///
    /// # Errors
    ///
    /// [`ChurnError::NodeOutOfRange`] if an endpoint is `>= n`; the
    /// topology is unchanged on error.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, ChurnError> {
        self.check_churn_edge(u, v)?;
        let removed = self.graph.to_mut().remove_edge(u, v);
        if removed {
            self.frontier_unsettle(u);
            self.frontier_unsettle(v);
            self.par = None; // degrees changed: replan worker ranges
        }
        Ok(removed)
    }

    /// Topology churn, batched: removes `removed` then inserts `added` in a
    /// single `O(n + m + k log k)` CSR rebuild instead of `k` per-edge
    /// `O(n + m)` splices — the entry point for motion-driven topology
    /// diffs ([`crate::dynamic`]), where dozens of edges flip per round.
    /// Returns `(inserted, removed)` — edges whose membership actually
    /// changed; already-present insertions and absent removals are skipped,
    /// matching [`Simulator::insert_edge`] / [`Simulator::remove_edge`].
    ///
    /// Edge updates never touch participation or signal state: `active`,
    /// `sent` and `heard` are exactly as before the call, for every node —
    /// only `node_leave`/`node_join` may change who beeps.
    ///
    /// # Errors
    ///
    /// [`ChurnError::NodeOutOfRange`] / [`ChurnError::SelfEdge`] if any
    /// pair in either list is invalid; the topology is unchanged on error.
    pub fn apply_edge_diff(
        &mut self,
        added: &[(NodeId, NodeId)],
        removed: &[(NodeId, NodeId)],
    ) -> Result<(usize, usize), ChurnError> {
        for &(u, v) in added.iter().chain(removed) {
            self.check_churn_edge(u, v)?;
        }
        match self.graph.to_mut().apply_edge_diff(added, removed) {
            Ok(counts) => {
                // Frontier seeding for motion diffs: every listed endpoint
                // re-executes next round (conservative for already-present
                // insertions/absent removals — re-executing a settled node
                // is a draw-free no-op per the contract).
                for &(u, v) in added.iter().chain(removed) {
                    self.frontier_unsettle(u);
                    self.frontier_unsettle(v);
                }
                self.par = None; // degrees changed: replan worker ranges
                Ok(counts)
            }
            // Both graph-level failure modes are pre-checked above; map
            // defensively rather than unwrap so a future GraphError variant
            // cannot reintroduce a panic path.
            Err(_) => Err(ChurnError::SelfEdge(added.first().map_or(0, |&(u, _)| u))),
        }
    }

    fn check_churn_edge(&self, u: NodeId, v: NodeId) -> Result<(), ChurnError> {
        let n = self.graph.len();
        for node in [u, v] {
            if node >= n {
                return Err(ChurnError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Err(ChurnError::SelfEdge(u));
        }
        Ok(())
    }

    /// Topology churn: node `v` departs. All its incident edges are removed
    /// and the node becomes inactive — silent, deaf and frozen — until
    /// [`Simulator::node_join`] brings it back. Returns the number of edges
    /// removed. Idempotent for an already-departed node.
    ///
    /// # Errors
    ///
    /// [`ChurnError::NodeOutOfRange`] if `v >= n`; the execution is
    /// unchanged on error.
    pub fn node_leave(&mut self, v: NodeId) -> Result<usize, ChurnError> {
        let n = self.graph.len();
        if v >= n {
            return Err(ChurnError::NodeOutOfRange { node: v, n });
        }
        // Frontier seeding: the departing node's signal goes silent, so its
        // (pre-isolation) neighbors' observations may change next round;
        // the signal clearing below is routed through the accounting
        // helpers to keep the persistent bitsets and report totals exact.
        if self.frontier_live() {
            let neighbors: Vec<NodeId> =
                self.graph.neighbors(v).iter().map(|&u| u as NodeId).collect();
            for u in neighbors {
                self.frontier_unsettle(u);
            }
            self.frontier_unsettle(v);
            self.frontier_set_sent(v, BeepSignal::silent());
            self.frontier_set_heard(v, BeepSignal::silent());
        }
        let removed = self.graph.to_mut().isolate_node(v);
        if self.active[v] {
            self.active[v] = false;
            self.active_bits[v >> 6] &= !(1u64 << (v & 63));
            self.inactive += 1;
        }
        self.par = None; // worker ranges are degree-balanced: replan
                         // A departed node must not keep advertising its last round: clear
                         // its transmission and observation so `last_sent()`/`last_heard()`
                         // and observer hooks never read a beep from a node that no longer
                         // exists.
        self.sent[v] = BeepSignal::silent();
        self.heard[v] = BeepSignal::silent();
        Ok(removed)
    }

    /// Topology churn: node `v` (re)joins with edges to `neighbors` and the
    /// given state (a joining node boots with *arbitrary* RAM — pass
    /// whatever the adversary chooses). Edges already present are kept.
    ///
    /// # Errors
    ///
    /// [`ChurnError::NodeOutOfRange`] if `v` or a neighbor is `>= n`,
    /// [`ChurnError::SelfEdge`] if `neighbors` contains `v`. Validation
    /// happens before any mutation, so a failed join leaves the execution
    /// unchanged.
    pub fn node_join(
        &mut self,
        v: NodeId,
        neighbors: &[NodeId],
        state: P::State,
    ) -> Result<(), ChurnError> {
        let n = self.graph.len();
        if v >= n {
            return Err(ChurnError::NodeOutOfRange { node: v, n });
        }
        for &u in neighbors {
            if u >= n {
                return Err(ChurnError::NodeOutOfRange { node: u, n });
            }
            if u == v {
                return Err(ChurnError::SelfEdge(v));
            }
        }
        // Frontier seeding: the joiner and every attachment point
        // re-execute next round (their observations may change); signal
        // clearing goes through the accounting helpers as in `node_leave`.
        if self.frontier_live() {
            self.frontier_unsettle(v);
            for &u in neighbors {
                self.frontier_unsettle(u);
            }
            self.frontier_set_sent(v, BeepSignal::silent());
            self.frontier_set_heard(v, BeepSignal::silent());
        }
        let graph = self.graph.to_mut();
        for &u in neighbors {
            // Endpoints are validated above; `insert_edge` only reports
            // conditions that validation already excluded.
            let _ = graph.insert_edge(v, u);
        }
        if !self.active[v] {
            self.active[v] = true;
            self.active_bits[v >> 6] |= 1u64 << (v & 63);
            self.inactive -= 1;
        }
        self.par = None; // worker ranges are degree-balanced: replan
        self.states[v] = state;
        // Mirror of `node_leave`'s signal clearing: a joining node boots
        // fresh and has neither transmitted nor heard anything yet, so the
        // signals left over from before its departure must not leak into
        // `last_sent()`/`last_heard()` or observer hooks.
        self.sent[v] = BeepSignal::silent();
        self.heard[v] = BeepSignal::silent();
        Ok(())
    }

    /// `true` if `v` currently participates (has not departed via
    /// [`Simulator::node_leave`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v]
    }

    /// The participation bitmap, indexed by node id.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Number of currently participating nodes (O(1): the simulator keeps
    /// a departed-node count alongside the bitmap).
    pub fn active_count(&self) -> usize {
        self.active.len() - self.inactive
    }

    /// The deterministic work counters accumulated so far; see
    /// [`WorkCounters`]. Reset with [`Simulator::reset_work`].
    pub fn work(&self) -> WorkCounters {
        self.work
    }

    /// Zeroes the work counters (e.g. after a warm-up phase, so a
    /// measurement window can be accounted in isolation).
    pub fn reset_work(&mut self) {
        self.work = WorkCounters::default();
    }

    /// The transmissions of the most recent round (all silent before the
    /// first [`Simulator::step`]).
    pub fn last_sent(&self) -> &[BeepSignal] {
        &self.sent
    }

    /// The observations of the most recent round.
    pub fn last_heard(&self) -> &[BeepSignal] {
        &self.heard
    }

    /// Executes one synchronous round and reports aggregate beep activity.
    ///
    /// With the default reliable channel and all nodes active, this is
    /// exactly the paper's round: transmit, OR over neighbors, receive.
    /// Otherwise the unreliable-channel model is applied between the
    /// OR-aggregation and `receive`: jammers override transmissions,
    /// per-edge beep loss thins the OR, and spurious beeps are merged into
    /// each listener's observation. Departed (inactive) nodes neither
    /// transmit, hear, nor update state, and consume no node randomness.
    ///
    /// # Panics
    ///
    /// Panics (in debug and release) if the protocol transmits on a channel
    /// it did not declare via [`BeepingProtocol::channels`] — that would be
    /// a model violation, not a recoverable condition.
    pub fn step(&mut self) -> RoundReport {
        let n = self.graph.len();
        let channels = self.protocol.channels();
        // No-fault fast paths: with a perfectly reliable channel and no
        // Byzantine plan, every noise/jammer/Byzantine branch is dead code
        // and no channel or Byzantine randomness is ever drawn, so the
        // fused scatter round — and the frontier kernel, which skips only
        // rounds certified draw-equivalent — are bit-identical to the
        // phased path below.
        let fault_free = self.channel.is_reliable() && self.byzantine.is_empty();
        if self.engine == EngineMode::Scatter && fault_free {
            return self.fast_round(n, channels);
        }
        if let EngineMode::ParScatter { threads } = self.engine {
            if fault_free {
                return self.par_round(n, channels, threads);
            }
            // Channel noise and Byzantine behavior draw from shared streams
            // in strict node order — parallel execution cannot preserve
            // that, so faulted rounds run the phased path below (exactly
            // the scatter engine's behavior, including its own drop_p
            // fallback to the scalar gather).
        }
        if self.engine == EngineMode::Frontier {
            if fault_free {
                return self.frontier_round(n, channels);
            }
            // Channel noise draws per-listener coins the frontier kernel
            // cannot skip: materialize the lazy RNG accounting and run the
            // phased scatter path until the network is fault-free again.
            self.frontier_desync();
        }
        // Phase 0: advance the burst-noise window (no-op without bursts).
        let transmit_span = self.telemetry.time("sim.phase.transmit");
        self.channel.advance_window(&mut self.channel_state, &mut self.channel_rng);
        let drop_p = self.channel.effective_drop(&self.channel_state);
        let spurious_p = self.channel.spurious_p;
        // Phase 0b: crash-restart reboots. An affected node's RAM is
        // overwritten by the adversary's resurrection closure before this
        // round's transmissions, in ascending node order (deterministic
        // draws from the Byzantine stream).
        if !self.byzantine.is_empty() {
            let executing_round = self.round + 1;
            for v in 0..n {
                if !self.active[v] {
                    continue;
                }
                if let Some(ByzantineBehavior::CrashRestart { period, resurrect }) = &self.byz[v] {
                    if executing_round.is_multiple_of(*period) {
                        self.states[v] = resurrect.call(v, executing_round, &mut self.byz_rng);
                    }
                }
            }
        }
        // Phase 1: transmissions. Jammers override the protocol's decision —
        // the radio is Byzantine, the RAM is not — and Byzantine behavior
        // overrides override jammers in turn.
        for v in 0..n {
            let mut signal = if self.active[v] {
                let s = self.protocol.transmit(v, &self.states[v], &mut self.rngs[v]);
                assert!(
                    s.allowed_by(channels),
                    "protocol beeped on an undeclared channel (node {v}, signal {s})"
                );
                s
            } else {
                BeepSignal::silent()
            };
            if self.active[v] {
                match self.channel.jammer(v) {
                    Some(JammerKind::AlwaysBeep) => signal = channels.full_signal(),
                    Some(JammerKind::AlwaysSilent) => signal = BeepSignal::silent(),
                    None => {}
                }
                match &self.byz[v] {
                    Some(ByzantineBehavior::StuckBeep) => signal = channels.full_signal(),
                    Some(ByzantineBehavior::StuckSilent) => signal = BeepSignal::silent(),
                    Some(ByzantineBehavior::Babbler(p)) => {
                        signal = if *p > 0.0 && self.byz_rng.gen_bool(*p) {
                            channels.full_signal()
                        } else {
                            BeepSignal::silent()
                        };
                    }
                    Some(ByzantineBehavior::Channel2Liar) => {
                        signal.merge(BeepSignal::channel2());
                    }
                    Some(ByzantineBehavior::CrashRestart { .. }) | None => {}
                }
            }
            self.sent[v] = signal;
        }
        self.work.node_execs += (n - self.inactive) as u64;
        drop(transmit_span);
        // Phase 2: delivery — OR over neighbors, per channel. A node does
        // not hear itself: beeps are sent to neighbors only (paper §1).
        // Under half duplex, a transmitting node additionally hears nothing.
        // The unreliable channel thins the OR (per-directed-edge loss) and
        // may add spurious positives; a reliable channel draws no randomness
        // here, keeping noise-free executions bit-identical to the paper's
        // model.
        // The frontier and parallel engines have no phased kernel of their
        // own: on this path they *are* the scatter engine (same delivery,
        // same counters).
        let (deliver_name, rounds_counter) = match self.engine {
            EngineMode::Scalar => ("sim.phase.deliver.scalar", "sim.rounds.scalar"),
            EngineMode::Scatter | EngineMode::Frontier | EngineMode::ParScatter { .. } => {
                ("sim.phase.deliver.scatter", "sim.rounds.scatter")
            }
        };
        let deliver_span = self.telemetry.time(deliver_name);
        match self.engine {
            EngineMode::Scalar => self.deliver_scalar(n, channels, drop_p, spurious_p),
            EngineMode::Scatter | EngineMode::Frontier | EngineMode::ParScatter { .. } => {
                self.deliver_scatter(n, channels, drop_p, spurious_p)
            }
        }
        drop(deliver_span);
        // Phase 3: state updates (departed nodes are frozen).
        let receive_span = self.telemetry.time("sim.phase.receive");
        for v in 0..n {
            if self.active[v] {
                self.protocol.receive(
                    v,
                    &mut self.states[v],
                    self.sent[v],
                    self.heard[v],
                    &mut self.rngs[v],
                );
            }
        }
        drop(receive_span);
        self.telemetry.counter_add(rounds_counter, 1);
        self.round += 1;
        if let Some(hook) = self.hook.0.as_mut() {
            hook(&self.graph, self.round, &self.states);
        }
        RoundReport::from_signals(self.round, &self.sent, &self.heard)
    }

    /// Reference delivery: every hearing-capable listener gathers the OR
    /// over its neighbors' transmissions, drawing one loss coin per active
    /// beeping neighbor when `drop_p > 0` and spurious coins afterwards.
    /// The RNG draw order of this loop is the contract both engines honor.
    fn deliver_scalar(
        &mut self,
        n: usize,
        channels: SimulatorChannels,
        drop_p: f64,
        spurious_p: f64,
    ) {
        for v in 0..n {
            let mut heard = BeepSignal::silent();
            if self.active[v] && (self.duplex == DuplexMode::Full || self.sent[v].is_silent()) {
                self.work.edge_visits += self.graph.degree(v) as u64;
                for &u in self.graph.neighbors(v) {
                    let u = u as usize;
                    if !self.active[u] {
                        continue;
                    }
                    let sig = self.sent[u];
                    if sig.is_silent() {
                        continue;
                    }
                    if drop_p > 0.0 && self.channel_rng.gen_bool(drop_p) {
                        continue; // the beep is lost on this directed edge
                    }
                    heard.merge(sig);
                }
                if spurious_p > 0.0 {
                    let c1 = self.channel_rng.gen_bool(spurious_p);
                    let c2 =
                        channels == SimulatorChannels::Two && self.channel_rng.gen_bool(spurious_p);
                    heard.merge(BeepSignal::new(c1, c2));
                }
            }
            self.heard[v] = heard;
        }
    }

    /// Scatter delivery: the round's beepers push their signals into
    /// per-channel word-packed bitsets — O(Σ deg(beeper)) instead of the
    /// scalar gather's O(m) — then each listener reads its own bit.
    ///
    /// Bit-identity with [`Simulator::deliver_scalar`]: with `drop_p == 0`
    /// the gather loop draws no randomness, so reordering the OR is
    /// invisible; the spurious coins are drawn in the same per-listener
    /// ascending order. With `drop_p > 0` the scalar loop's draw order
    /// (one coin per (listener, beeping neighbor) pair) cannot be preserved
    /// by a scatter, so this round falls back to the scalar gather.
    fn deliver_scatter(
        &mut self,
        n: usize,
        channels: SimulatorChannels,
        drop_p: f64,
        spurious_p: f64,
    ) {
        if drop_p > 0.0 {
            return self.deliver_scalar(n, channels, drop_p, spurious_p);
        }
        self.scatter_signals(n);
        let two = channels == SimulatorChannels::Two;
        for v in 0..n {
            let mut heard = BeepSignal::silent();
            if self.active[v] && (self.duplex == DuplexMode::Full || self.sent[v].is_silent()) {
                heard = self.gather_bit(v, two);
                if spurious_p > 0.0 {
                    let c1 = self.channel_rng.gen_bool(spurious_p);
                    let c2 = two && self.channel_rng.gen_bool(spurious_p);
                    heard.merge(BeepSignal::new(c1, c2));
                }
            }
            self.heard[v] = heard;
        }
    }

    /// Clears the scatter bitsets and pushes every beeper's signal to its
    /// neighbors. Inactive nodes are already silent in `sent`, so they
    /// never scatter; inactive/deaf listeners are masked at gather time.
    fn scatter_signals(&mut self, n: usize) {
        let words = n.div_ceil(64);
        self.scatter_heard1.clear();
        self.scatter_heard1.resize(words, 0);
        self.scatter_heard2.clear();
        self.scatter_heard2.resize(words, 0);
        for u in 0..n {
            let sig = self.sent[u];
            if sig.is_silent() {
                continue;
            }
            if sig.on_channel1() {
                self.work.edge_visits += self.graph.degree(u) as u64;
                for &w in self.graph.neighbors(u) {
                    self.scatter_heard1[(w >> 6) as usize] |= 1u64 << (w & 63);
                }
            }
            if sig.on_channel2() {
                self.work.edge_visits += self.graph.degree(u) as u64;
                for &w in self.graph.neighbors(u) {
                    self.scatter_heard2[(w >> 6) as usize] |= 1u64 << (w & 63);
                }
            }
        }
    }

    /// Reads listener `v`'s per-channel bits out of the scatter bitsets.
    fn gather_bit(&self, v: usize, two: bool) -> BeepSignal {
        let word = v >> 6;
        let bit = 1u64 << (v & 63);
        let c1 = self.scatter_heard1[word] & bit != 0;
        let c2 = two && self.scatter_heard2[word] & bit != 0;
        BeepSignal::new(c1, c2)
    }

    /// Fused no-fault round: transmit + scatter + gather + receive in two
    /// passes, with the [`RoundReport`] accumulated inline instead of a
    /// separate [`RoundReport::from_signals`] sweep. Only reachable when
    /// the channel is reliable and the Byzantine plan is empty, so every
    /// skipped branch (burst windows, reboots, jammers, loss, spurious) is
    /// provably dead and no channel/Byzantine randomness is ever drawn —
    /// making this bit-identical to the phased path under either engine.
    fn fast_round(&mut self, n: usize, channels: SimulatorChannels) -> RoundReport {
        let fused_span = self.telemetry.time("sim.phase.fused");
        let two = channels == SimulatorChannels::Two;
        let words = n.div_ceil(64);
        self.scatter_heard1.clear();
        self.scatter_heard1.resize(words, 0);
        self.scatter_heard2.clear();
        self.scatter_heard2.resize(words, 0);
        self.scatter_sent1.clear();
        self.scatter_sent1.resize(words, 0);
        self.scatter_sent2.clear();
        self.scatter_sent2.resize(words, 0);
        let mut report = RoundReport { round: self.round + 1, ..RoundReport::default() };
        // Split borrows with fixed-length slices: the Cow deref happens once
        // instead of per neighbors() call, and every per-node index below is
        // provably in bounds, so the hot loops carry no bounds checks.
        let graph: &Graph = &self.graph;
        let protocol = &self.protocol;
        let states = &mut self.states[..n];
        let rngs = &mut self.rngs[..n];
        let sent = &mut self.sent[..n];
        let heard = &mut self.heard[..n];
        let active = &self.active[..n];
        let heard1 = &mut self.scatter_heard1[..words];
        let heard2 = &mut self.scatter_heard2[..words];
        let sent1 = &mut self.scatter_sent1[..words];
        let sent2 = &mut self.scatter_sent2[..words];
        let full = self.duplex == DuplexMode::Full;
        // With every node active and full duplex — the steady state of an
        // unfaulted network — the per-node activity/deafness checks are
        // vacuous and every report counter is a set cardinality: beepers are
        // popcount(sent_c), hearers popcount(heard_c), lone beepers
        // popcount(sent_c & !heard_c). Track `sent` as bitsets too and the
        // whole report falls out of a word sweep, leaving pass 2 with just
        // the gather and the state update.
        let all_active = self.inactive == 0;
        let mut edge_visits = 0u64;
        if all_active && full {
            // Pass 1: transmissions, fused with the beeper scatter.
            for v in 0..n {
                let signal = protocol.transmit(v, &states[v], &mut rngs[v]);
                assert!(
                    signal.allowed_by(channels),
                    "protocol beeped on an undeclared channel (node {v}, signal {signal})"
                );
                sent[v] = signal;
                if signal.is_silent() {
                    continue;
                }
                let word = v >> 6;
                let bit = 1u64 << (v & 63);
                if signal.on_channel1() {
                    sent1[word] |= bit;
                    edge_visits += graph.degree(v) as u64;
                    for &w in graph.neighbors(v) {
                        heard1[(w >> 6) as usize] |= 1u64 << (w & 63);
                    }
                }
                if signal.on_channel2() {
                    sent2[word] |= bit;
                    edge_visits += graph.degree(v) as u64;
                    for &w in graph.neighbors(v) {
                        heard2[(w >> 6) as usize] |= 1u64 << (w & 63);
                    }
                }
            }
            // Report counters as word-wise popcounts. Bits at index >= n are
            // never set (every scattered index is a node id), so no masking
            // of the final word is needed.
            for w in 0..words {
                report.beeps_channel1 += sent1[w].count_ones() as usize;
                report.hearers_channel1 += heard1[w].count_ones() as usize;
                report.lone_beepers += (sent1[w] & !heard1[w]).count_ones() as usize;
            }
            if two {
                for w in 0..words {
                    report.beeps_channel2 += sent2[w].count_ones() as usize;
                    report.hearers_channel2 += heard2[w].count_ones() as usize;
                    report.lone_beepers_channel2 += (sent2[w] & !heard2[w]).count_ones() as usize;
                }
            }
            // Pass 2: gather + state update.
            for v in 0..n {
                let word = v >> 6;
                let bit = 1u64 << (v & 63);
                let h = BeepSignal::new(heard1[word] & bit != 0, two && heard2[word] & bit != 0);
                heard[v] = h;
                protocol.receive(v, &mut states[v], sent[v], h, &mut rngs[v]);
            }
        } else {
            // General no-fault round: inactive nodes and half duplex mask
            // transmissions/hearing per node, so counters stay inline.
            // Pass 1: transmissions, fused with the beeper scatter.
            for v in 0..n {
                let signal = if active[v] {
                    let s = protocol.transmit(v, &states[v], &mut rngs[v]);
                    assert!(
                        s.allowed_by(channels),
                        "protocol beeped on an undeclared channel (node {v}, signal {s})"
                    );
                    s
                } else {
                    BeepSignal::silent()
                };
                sent[v] = signal;
                if signal.is_silent() {
                    continue;
                }
                if signal.on_channel1() {
                    report.beeps_channel1 += 1;
                    edge_visits += graph.degree(v) as u64;
                    for &w in graph.neighbors(v) {
                        heard1[(w >> 6) as usize] |= 1u64 << (w & 63);
                    }
                }
                if signal.on_channel2() {
                    report.beeps_channel2 += 1;
                    edge_visits += graph.degree(v) as u64;
                    for &w in graph.neighbors(v) {
                        heard2[(w >> 6) as usize] |= 1u64 << (w & 63);
                    }
                }
            }
            // Pass 2: gather + state update, fused with report accumulation.
            for v in 0..n {
                let s = sent[v];
                let is_active = active[v];
                let h = if is_active && (full || s.is_silent()) {
                    let word = v >> 6;
                    let bit = 1u64 << (v & 63);
                    BeepSignal::new(heard1[word] & bit != 0, two && heard2[word] & bit != 0)
                } else {
                    BeepSignal::silent()
                };
                heard[v] = h;
                report.hearers_channel1 += h.on_channel1() as usize;
                report.hearers_channel2 += h.on_channel2() as usize;
                report.lone_beepers += (s.on_channel1() && !h.on_channel1()) as usize;
                report.lone_beepers_channel2 += (s.on_channel2() && !h.on_channel2()) as usize;
                if is_active {
                    protocol.receive(v, &mut states[v], s, h, &mut rngs[v]);
                }
            }
        }
        self.work.node_execs += (n - self.inactive) as u64;
        self.work.edge_visits += edge_visits;
        // Bookkeeping tail in the exact order of the phased path — span
        // closed, counter bumped, round advanced, hook run — so telemetry
        // totals and hook observations line up between the two paths even
        // when a hook panics mid-round (the round is counted on both paths
        // before the hook fires); pinned by `tests/fast_path_accounting.rs`.
        drop(fused_span);
        self.telemetry.counter_add("sim.rounds.fused", 1);
        self.round += 1;
        if let Some(hook) = self.hook.0.as_mut() {
            hook(graph, self.round, states);
        }
        report
    }

    /// Fused no-fault parallel round; see [`EngineMode::ParScatter`] and
    /// the [`crate::par`] module docs. Only reachable when the channel is
    /// reliable and the Byzantine plan is empty, exactly like
    /// [`Simulator::fast_round`] — no channel/Byzantine randomness exists
    /// to be drawn, and per-node streams are independent, so the result is
    /// bit-identical to every sequential engine at any thread count.
    fn par_round(&mut self, n: usize, channels: SimulatorChannels, threads: usize) -> RoundReport {
        let par_span = self.telemetry.time("sim.phase.par");
        let plan = match &mut self.par {
            Some(plan) if plan.matches(&self.graph, threads) => plan,
            slot => slot.insert(crate::par::ParPlan::build(&self.graph, threads)),
        };
        let graph: &Graph = &self.graph;
        let full = self.duplex == DuplexMode::Full;
        let (report, work) = crate::par::run_round(
            plan,
            graph,
            &self.protocol,
            channels,
            full,
            self.round + 1,
            &self.active[..n],
            &self.active_bits,
            &mut self.states[..n],
            &mut self.rngs[..n],
            &mut self.sent[..n],
            &mut self.heard[..n],
            &mut self.scatter_heard1,
            &mut self.scatter_heard2,
        );
        self.work.node_execs += work.node_execs;
        self.work.edge_visits += work.edge_visits;
        // Bookkeeping tail in the exact order of the other engines — span
        // closed, counter bumped, round advanced, hook run (on the calling
        // thread: worker threads never see the hook or telemetry).
        drop(par_span);
        self.telemetry.counter_add("sim.rounds.par", 1);
        self.round += 1;
        if let Some(hook) = self.hook.0.as_mut() {
            hook(&self.graph, self.round, &self.states);
        }
        report
    }

    /// `true` while the frontier bookkeeping is authoritative: the
    /// frontier engine is selected and a full sweep has established the
    /// [`FrontierState`] invariants.
    fn frontier_live(&self) -> bool {
        self.engine == EngineMode::Frontier && self.frontier.synced
    }

    /// Event→dirty-set hook: queues `v` for live execution next round,
    /// materializing its lazily accounted RNG position first. No-op unless
    /// the bookkeeping is live (other engines, or before the first sweep).
    fn frontier_unsettle(&mut self, v: NodeId) {
        if !self.frontier_live() {
            return;
        }
        if self.frontier.settled[v] {
            self.frontier.materialize(&mut self.rngs[v], v, self.round);
            self.frontier.settled[v] = false;
        }
        self.frontier.push_dirty(v);
    }

    /// Materializes every lazily accounted RNG position and discards the
    /// frontier bookkeeping — the exit into any regime the kernel cannot
    /// track per node (noise/Byzantine plans, engine switches, bulk
    /// corruption). The next frontier round rebuilds with a full sweep.
    fn frontier_desync(&mut self) {
        if !self.frontier.synced {
            return;
        }
        for v in 0..self.graph.len() {
            if self.frontier.settled[v] {
                self.frontier.materialize(&mut self.rngs[v], v, self.round);
            }
        }
        self.frontier_reset();
    }

    /// Forgets the frontier bookkeeping *without* materializing — only
    /// correct when the RNG positions are being replaced wholesale (a
    /// restore), where ticking the outgoing streams would corrupt the
    /// incoming ones.
    fn frontier_reset(&mut self) {
        let fr = &mut self.frontier;
        fr.synced = false;
        fr.dirty.clear();
        for q in &mut fr.queued {
            *q = false;
        }
        for s in &mut fr.settled {
            *s = false;
        }
    }

    /// Rewrites `sent[v]` keeping the persistent bitsets and running report
    /// totals exact. Call only while the bookkeeping is live.
    fn frontier_set_sent(&mut self, v: NodeId, s: BeepSignal) {
        let old = self.sent[v];
        if old == s {
            return;
        }
        let h = self.heard[v];
        let fr = &mut self.frontier;
        let word = v >> 6;
        let bit = 1u64 << (v & 63);
        if s.on_channel1() != old.on_channel1() {
            if s.on_channel1() {
                fr.sent1[word] |= bit;
                fr.total_beeps1 += 1;
            } else {
                fr.sent1[word] &= !bit;
                fr.total_beeps1 -= 1;
            }
        }
        if s.on_channel2() != old.on_channel2() {
            if s.on_channel2() {
                fr.sent2[word] |= bit;
                fr.total_beeps2 += 1;
            } else {
                fr.sent2[word] &= !bit;
                fr.total_beeps2 -= 1;
            }
        }
        fr.total_lone1 -= (old.on_channel1() && !h.on_channel1()) as usize;
        fr.total_lone1 += (s.on_channel1() && !h.on_channel1()) as usize;
        fr.total_lone2 -= (old.on_channel2() && !h.on_channel2()) as usize;
        fr.total_lone2 += (s.on_channel2() && !h.on_channel2()) as usize;
        self.sent[v] = s;
    }

    /// Rewrites `heard[v]` keeping the running report totals exact. Call
    /// only while the bookkeeping is live.
    fn frontier_set_heard(&mut self, v: NodeId, h: BeepSignal) {
        let old = self.heard[v];
        if old == h {
            return;
        }
        let s = self.sent[v];
        let fr = &mut self.frontier;
        fr.total_hearers1 -= old.on_channel1() as usize;
        fr.total_hearers1 += h.on_channel1() as usize;
        fr.total_hearers2 -= old.on_channel2() as usize;
        fr.total_hearers2 += h.on_channel2() as usize;
        fr.total_lone1 -= (s.on_channel1() && !old.on_channel1()) as usize;
        fr.total_lone1 += (s.on_channel1() && !h.on_channel1()) as usize;
        fr.total_lone2 -= (s.on_channel2() && !old.on_channel2()) as usize;
        fr.total_lone2 += (s.on_channel2() && !h.on_channel2()) as usize;
        self.heard[v] = h;
    }

    /// Reads listener `u`'s observation from the persistent sent bitsets —
    /// the word-packed signal reuse over the settled complement. Inactive
    /// neighbors never have a bit set (their `sent` is silent), so no
    /// activity mask is needed here.
    fn frontier_gather(&self, u: NodeId, two: bool) -> BeepSignal {
        let fr = &self.frontier;
        let mut c1 = false;
        let mut c2 = false;
        for &w in self.graph.neighbors(u) {
            let word = (w >> 6) as usize;
            let bit = 1u64 << (w & 63);
            c1 |= fr.sent1[word] & bit != 0;
            c2 |= two && fr.sent2[word] & bit != 0;
            if c1 && (c2 || !two) {
                break;
            }
        }
        BeepSignal::new(c1, c2)
    }

    /// One fault-free frontier round: sparse while the dirty set stays at
    /// or under [`frontier_fallback_threshold`], otherwise (or while
    /// unsynced) one full rebuild sweep.
    fn frontier_round(&mut self, n: usize, channels: SimulatorChannels) -> RoundReport {
        self.frontier.ensure_init(n);
        if !self.frontier.synced || self.frontier.dirty.len() > frontier_fallback_threshold(n) {
            self.frontier_full_sweep(n, channels)
        } else {
            self.frontier_sparse_round(n, channels)
        }
    }

    /// Full frontier sweep: executes every node like the fused kernel,
    /// then re-derives the settled set, the persistent signal bitsets and
    /// the running report totals. Entered while unsynced and whenever the
    /// frontier outgrows the density threshold.
    fn frontier_full_sweep(&mut self, n: usize, channels: SimulatorChannels) -> RoundReport {
        let span = self.telemetry.time("sim.phase.frontier");
        let executing = self.round + 1;
        let two = channels == SimulatorChannels::Two;
        let words = n.div_ceil(64);
        // Materialize every lazily accounted stream through the previous
        // round so the live transmissions below start at the right
        // positions, then forget the old settled set.
        if self.frontier.synced {
            for v in 0..n {
                if self.frontier.settled[v] {
                    self.frontier.materialize(&mut self.rngs[v], v, executing - 1);
                    self.frontier.settled[v] = false;
                }
            }
        }
        self.frontier.dirty.clear();
        for q in &mut self.frontier.queued {
            *q = false;
        }
        // Per-round heard accumulation reuses the scatter scratch; the
        // persistent sent bitsets are rebuilt from scratch.
        self.scatter_heard1.clear();
        self.scatter_heard1.resize(words, 0);
        self.scatter_heard2.clear();
        self.scatter_heard2.resize(words, 0);
        let mut report = RoundReport { round: executing, ..RoundReport::default() };
        let graph: &Graph = &self.graph;
        let protocol = &self.protocol;
        let states = &mut self.states[..n];
        let rngs = &mut self.rngs[..n];
        let sent = &mut self.sent[..n];
        let heard = &mut self.heard[..n];
        let active = &self.active[..n];
        let heard1 = &mut self.scatter_heard1[..words];
        let heard2 = &mut self.scatter_heard2[..words];
        let fr = &mut self.frontier;
        fr.sent1.clear();
        fr.sent1.resize(words, 0);
        fr.sent2.clear();
        fr.sent2.resize(words, 0);
        let full = self.duplex == DuplexMode::Full;
        let mut edge_visits = 0u64;
        // Pass 1: live transmissions, fused with the heard scatter and the
        // persistent sent-bitset rebuild.
        for v in 0..n {
            let signal = if active[v] {
                let s = protocol.transmit(v, &states[v], &mut rngs[v]);
                assert!(
                    s.allowed_by(channels),
                    "protocol beeped on an undeclared channel (node {v}, signal {s})"
                );
                s
            } else {
                BeepSignal::silent()
            };
            sent[v] = signal;
            if signal.is_silent() {
                continue;
            }
            let word = v >> 6;
            let bit = 1u64 << (v & 63);
            if signal.on_channel1() {
                report.beeps_channel1 += 1;
                edge_visits += graph.degree(v) as u64;
                for &w in graph.neighbors(v) {
                    heard1[(w >> 6) as usize] |= 1u64 << (w & 63);
                }
                fr.sent1[word] |= bit;
            }
            if signal.on_channel2() {
                report.beeps_channel2 += 1;
                edge_visits += graph.degree(v) as u64;
                for &w in graph.neighbors(v) {
                    heard2[(w >> 6) as usize] |= 1u64 << (w & 63);
                }
                fr.sent2[word] |= bit;
            }
        }
        // Pass 2: gather + state update + settle evaluation.
        for v in 0..n {
            let s = sent[v];
            let is_active = active[v];
            let h = if is_active && (full || s.is_silent()) {
                let word = v >> 6;
                let bit = 1u64 << (v & 63);
                BeepSignal::new(heard1[word] & bit != 0, two && heard2[word] & bit != 0)
            } else {
                BeepSignal::silent()
            };
            heard[v] = h;
            report.hearers_channel1 += h.on_channel1() as usize;
            report.hearers_channel2 += h.on_channel2() as usize;
            report.lone_beepers += (s.on_channel1() && !h.on_channel1()) as usize;
            report.lone_beepers_channel2 += (s.on_channel2() && !h.on_channel2()) as usize;
            fr.last_exec[v] = executing;
            if is_active {
                protocol.receive(v, &mut states[v], s, h, &mut rngs[v]);
                match protocol.settled_round(v, &states[v], h) {
                    Some(sr) if sr.signal == s => {
                        #[cfg(debug_assertions)]
                        debug_check_settled_contract(protocol, v, &states[v], &rngs[v], sr, h);
                        fr.settled[v] = true;
                        fr.rate[v] = sr.draws;
                    }
                    _ => {
                        fr.settled[v] = false;
                        fr.push_dirty(v);
                    }
                }
            } else {
                // A departed node is frozen and draw-free: settled at rate
                // 0, so skipped rounds never advance its stream.
                fr.settled[v] = true;
                fr.rate[v] = 0;
            }
        }
        fr.total_beeps1 = report.beeps_channel1;
        fr.total_beeps2 = report.beeps_channel2;
        fr.total_hearers1 = report.hearers_channel1;
        fr.total_hearers2 = report.hearers_channel2;
        fr.total_lone1 = report.lone_beepers;
        fr.total_lone2 = report.lone_beepers_channel2;
        fr.synced = true;
        self.work.node_execs += (n - self.inactive) as u64;
        self.work.edge_visits += edge_visits;
        // Bookkeeping tail in phased-path order: span, counters, round, hook.
        drop(span);
        self.telemetry.counter_add("sim.rounds.frontier", 1);
        self.telemetry.counter_add("sim.rounds.frontier.fallback", 1);
        self.round = executing;
        if let Some(hook) = self.hook.0.as_mut() {
            hook(graph, self.round, states);
        }
        report
    }

    /// Sparse frontier round — O(Σ deg(dirty ∪ N(changed))) work:
    ///
    /// 1. the dirty set transmits live (changed signals are patched into
    ///    the persistent bitsets);
    /// 2. observations are recomputed only across the changed signals'
    ///    neighborhoods plus the dirty set itself (whose duplex masking or
    ///    adjacency may have changed);
    /// 3. settled listeners whose observation changed are *woken* — their
    ///    skipped transmissions are ticked via jump-ahead, then they run a
    ///    live `receive` on the new observation;
    /// 4. everything that executed is re-evaluated for settling and feeds
    ///    the next round's dirty set.
    fn frontier_sparse_round(&mut self, n: usize, channels: SimulatorChannels) -> RoundReport {
        let _ = n;
        let span = self.telemetry.time("sim.phase.frontier");
        let executing = self.round + 1;
        let two = channels == SimulatorChannels::Two;
        let full = self.duplex == DuplexMode::Full;
        // Swap the dirty list into the exec scratch so `push_dirty` below
        // refills a retained buffer (no per-round allocation).
        std::mem::swap(&mut self.frontier.dirty, &mut self.frontier.exec);
        self.frontier.dirty.clear();
        let mut exec = std::mem::take(&mut self.frontier.exec);
        exec.sort_unstable();
        for &v in &exec {
            self.frontier.queued[v] = false;
        }
        // Pass 1: live transmissions for the dirty set.
        let mut changed = std::mem::take(&mut self.frontier.changed);
        changed.clear();
        for &v in &exec {
            if !self.active[v] {
                // A departed node is frozen and draw-free: it settles at
                // rate 0 until `node_join` queues it again.
                self.frontier.settled[v] = true;
                self.frontier.rate[v] = 0;
                self.frontier.last_exec[v] = executing;
                continue;
            }
            debug_assert_eq!(
                self.frontier.last_exec[v],
                executing - 1,
                "dirty node {v} entered the round with an unmaterialized stream"
            );
            let s = self.protocol.transmit(v, &self.states[v], &mut self.rngs[v]);
            assert!(
                s.allowed_by(channels),
                "protocol beeped on an undeclared channel (node {v}, signal {s})"
            );
            if s != self.sent[v] {
                self.frontier_set_sent(v, s);
                changed.push(v);
            }
        }
        // Pass 2: recompute observations over dirty ∪ N(changed); wake
        // settled listeners whose observation changed.
        let mut listeners = std::mem::take(&mut self.frontier.listeners);
        listeners.clear();
        for &v in &exec {
            if self.active[v] && !self.frontier.listener_mark[v] {
                self.frontier.listener_mark[v] = true;
                listeners.push(v);
            }
        }
        for &v in &changed {
            self.work.edge_visits += self.graph.degree(v) as u64;
            for &w in self.graph.neighbors(v) {
                let w = w as NodeId;
                if self.active[w] && !self.frontier.listener_mark[w] {
                    self.frontier.listener_mark[w] = true;
                    listeners.push(w);
                }
            }
        }
        listeners.sort_unstable();
        let mut wake = std::mem::take(&mut self.frontier.wake);
        wake.clear();
        for &u in &listeners {
            self.frontier.listener_mark[u] = false;
            let h = if full || self.sent[u].is_silent() {
                self.frontier_gather(u, two)
            } else {
                BeepSignal::silent()
            };
            if h != self.heard[u] {
                let was_settled = self.frontier.settled[u];
                self.frontier_set_heard(u, h);
                if was_settled {
                    wake.push(u);
                }
            }
        }
        // Pass 3: woken nodes skipped this round's transmission, but the
        // contract fixes its signal and draw count — tick the stream
        // through this round, then run the live receive below.
        for &u in &wake {
            self.frontier.materialize(&mut self.rngs[u], u, executing);
            self.frontier.settled[u] = false;
        }
        // Pass 4: state updates + settle re-evaluation over everything
        // that executed, in ascending node order (exec and wake are each
        // sorted and disjoint — wake held only settled nodes).
        let (mut ei, mut wi) = (0, 0);
        while ei < exec.len() || wi < wake.len() {
            let take_exec = match (exec.get(ei), wake.get(wi)) {
                (Some(&a), Some(&b)) => a < b,
                (Some(_), None) => true,
                _ => false,
            };
            let v = if take_exec {
                ei += 1;
                exec[ei - 1]
            } else {
                wi += 1;
                wake[wi - 1]
            };
            if self.active[v] {
                self.frontier_finish_node(v, executing);
                self.work.node_execs += 1;
            }
        }
        // Return the scratch buffers for the next sparse round.
        exec.clear();
        self.frontier.exec = exec;
        self.frontier.changed = changed;
        self.frontier.listeners = listeners;
        self.frontier.wake = wake;
        let report = self.frontier.report(executing);
        // Bookkeeping tail in phased-path order: span, counter, round, hook.
        drop(span);
        self.telemetry.counter_add("sim.rounds.frontier", 1);
        self.round = executing;
        if let Some(hook) = self.hook.0.as_mut() {
            hook(&self.graph, self.round, &self.states);
        }
        report
    }

    /// Receive + settle re-evaluation for one live node of a sparse round.
    fn frontier_finish_node(&mut self, v: NodeId, executing: u64) {
        self.protocol.receive(
            v,
            &mut self.states[v],
            self.sent[v],
            self.heard[v],
            &mut self.rngs[v],
        );
        self.frontier.last_exec[v] = executing;
        match self.protocol.settled_round(v, &self.states[v], self.heard[v]) {
            Some(sr) if sr.signal == self.sent[v] => {
                #[cfg(debug_assertions)]
                debug_check_settled_contract(
                    &self.protocol,
                    v,
                    &self.states[v],
                    &self.rngs[v],
                    sr,
                    self.heard[v],
                );
                self.frontier.settled[v] = true;
                self.frontier.rate[v] = sr.draws;
            }
            _ => {
                self.frontier.settled[v] = false;
                self.frontier.push_dirty(v);
            }
        }
    }

    /// Runs until `stop(states) == true` or `max_rounds` total rounds have
    /// executed; returns the first round count (1-based) at which `stop`
    /// held, or `None` on budget exhaustion.
    ///
    /// `stop` is evaluated *before* the first step (round count 0) and after
    /// every step.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&Simulator<'g, P>) -> bool,
    {
        if stop(self) {
            return Some(self.round);
        }
        while self.round < max_rounds {
            self.step();
            if stop(self) {
                return Some(self.round);
            }
        }
        None
    }

    /// Runs exactly `rounds` rounds, discarding the per-round reports.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Consumes the simulator, returning the final states.
    pub fn into_states(self) -> Vec<P::State> {
        self.states
    }

    /// Captures the complete execution state — node states, per-node RNG
    /// positions, the round counter, the (possibly churned) topology, the
    /// participation bitmap and the channel-noise and Byzantine stream
    /// positions — so the run can later be branched or replayed from this
    /// exact point via [`Simulator::restore`]. The channel and Byzantine
    /// *configurations* are not captured: a restore keeps whatever models
    /// are installed.
    ///
    /// Frontier bookkeeping is *not* captured either — it is provably
    /// reconstructible: the captured RNG positions are materialized
    /// through the current round (settled nodes' lazily-accounted draws
    /// are ticked into the snapshot copies), and a restored run's first
    /// frontier round re-derives the settled set with one full sweep,
    /// which is bit-identical because re-executing a settled node is a
    /// draw-equivalent fixpoint under the draws-when-settled contract.
    pub fn checkpoint(&self) -> Checkpoint<P::State> {
        let mut rngs = self.rngs.clone();
        if self.frontier_live() {
            let fr = &self.frontier;
            for (v, rng) in rngs.iter_mut().enumerate() {
                if fr.settled[v] && fr.last_exec[v] < self.round && fr.rate[v] > 0 {
                    rng::advance_steps(
                        rng,
                        u128::from(self.round - fr.last_exec[v]) * u128::from(fr.rate[v]),
                    );
                }
            }
        }
        Checkpoint {
            states: self.states.clone(),
            rngs,
            round: self.round,
            sent: self.sent.clone(),
            heard: self.heard.clone(),
            graph: self.graph.clone().into_owned(),
            active: self.active.clone(),
            channel_state: self.channel_state,
            channel_rng: self.channel_rng.clone(),
            byz_rng: self.byz_rng.clone(),
        }
    }

    /// Rewinds (or fast-forwards) the simulator to a previously captured
    /// [`Checkpoint`]. Continuing from a restored checkpoint under the same
    /// channel configuration reproduces the original continuation exactly,
    /// including any topology churn applied before the capture.
    ///
    /// # Errors
    ///
    /// [`RestoreError::SizeMismatch`] if the checkpoint was taken on a
    /// different-sized network, [`RestoreError::Inconsistent`] if the
    /// checkpoint's own vectors disagree with each other (a hand-built or
    /// deserialized checkpoint gone wrong). The simulator is unchanged on
    /// error.
    pub fn restore(&mut self, checkpoint: &Checkpoint<P::State>) -> Result<(), RestoreError> {
        if checkpoint.states.len() != self.graph.len() {
            return Err(RestoreError::SizeMismatch {
                checkpoint_nodes: checkpoint.states.len(),
                simulator_nodes: self.graph.len(),
            });
        }
        checkpoint.check_consistent()?;
        // The restored RNG positions are already fully materialized (see
        // `checkpoint`); the frontier bookkeeping referred to the replaced
        // execution, so discard it — never materialize against it here.
        self.frontier_reset();
        self.states = checkpoint.states.clone();
        self.rngs = checkpoint.rngs.clone();
        self.round = checkpoint.round;
        self.sent = checkpoint.sent.clone();
        self.heard = checkpoint.heard.clone();
        self.graph = Cow::Owned(checkpoint.graph.clone());
        self.active = checkpoint.active.clone();
        self.inactive = self.active.iter().filter(|&&a| !a).count();
        self.active_bits = full_active_bits(self.active.len());
        for (v, &a) in self.active.iter().enumerate() {
            if !a {
                self.active_bits[v >> 6] &= !(1u64 << (v & 63));
            }
        }
        self.par = None; // topology may differ: replan worker ranges
        self.channel_state = checkpoint.channel_state;
        self.channel_rng = checkpoint.channel_rng.clone();
        self.byz_rng = checkpoint.byz_rng.clone();
        Ok(())
    }
}

/// Why a [`Checkpoint`] could not be restored (see [`Simulator::restore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The checkpoint was captured on a network of a different size.
    SizeMismatch {
        /// Node count recorded in the checkpoint.
        checkpoint_nodes: usize,
        /// Node count of the simulator being restored.
        simulator_nodes: usize,
    },
    /// The checkpoint's own vectors disagree with each other — possible
    /// only for a checkpoint assembled via [`Checkpoint::from_parts`]
    /// (e.g. deserialized from a corrupted snapshot).
    Inconsistent(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::SizeMismatch { checkpoint_nodes, simulator_nodes } => write!(
                f,
                "checkpoint belongs to a different network: \
                 {checkpoint_nodes} nodes captured, simulator has {simulator_nodes}"
            ),
            RestoreError::Inconsistent(detail) => {
                write!(f, "checkpoint is internally inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// A captured execution point of a [`Simulator`]; see
/// [`Simulator::checkpoint`].
#[derive(Debug, Clone)]
pub struct Checkpoint<S> {
    states: Vec<S>,
    rngs: Vec<Pcg64Mcg>,
    round: u64,
    sent: Vec<BeepSignal>,
    heard: Vec<BeepSignal>,
    graph: Graph,
    active: Vec<bool>,
    channel_state: ChannelState,
    channel_rng: Pcg64Mcg,
    byz_rng: Pcg64Mcg,
}

impl<S> Checkpoint<S> {
    /// The round at which the checkpoint was captured.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The captured node states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The captured per-node RNG streams, indexed by node id.
    pub fn rngs(&self) -> &[Pcg64Mcg] {
        &self.rngs
    }

    /// The captured last-round transmissions.
    pub fn sent(&self) -> &[BeepSignal] {
        &self.sent
    }

    /// The captured last-round observations.
    pub fn heard(&self) -> &[BeepSignal] {
        &self.heard
    }

    /// The captured (possibly churned) topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The captured participation bitmap.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// The captured channel-noise execution state (burst-window position).
    pub fn channel_state(&self) -> ChannelState {
        self.channel_state
    }

    /// The captured channel-noise RNG stream.
    pub fn channel_rng(&self) -> &Pcg64Mcg {
        &self.channel_rng
    }

    /// The captured Byzantine-behavior RNG stream.
    pub fn byz_rng(&self) -> &Pcg64Mcg {
        &self.byz_rng
    }

    /// Assembles a checkpoint from externally held parts — the inverse of
    /// the accessor set, used by durable-snapshot codecs to rebuild a
    /// checkpoint after deserialization. The parts are validated against
    /// each other on [`Simulator::restore`], not here, so a codec can
    /// surface a typed [`RestoreError`] instead of a panic.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        states: Vec<S>,
        rngs: Vec<Pcg64Mcg>,
        round: u64,
        sent: Vec<BeepSignal>,
        heard: Vec<BeepSignal>,
        graph: Graph,
        active: Vec<bool>,
        channel_state: ChannelState,
        channel_rng: Pcg64Mcg,
        byz_rng: Pcg64Mcg,
    ) -> Checkpoint<S> {
        Checkpoint {
            states,
            rngs,
            round,
            sent,
            heard,
            graph,
            active,
            channel_state,
            channel_rng,
            byz_rng,
        }
    }

    /// Cross-checks the checkpoint's vectors against each other; every
    /// simulator-captured checkpoint passes by construction.
    fn check_consistent(&self) -> Result<(), RestoreError> {
        let n = self.states.len();
        let fields = [
            ("rngs", self.rngs.len()),
            ("sent", self.sent.len()),
            ("heard", self.heard.len()),
            ("graph", self.graph.len()),
            ("active", self.active.len()),
        ];
        for (name, len) in fields {
            if len != n {
                return Err(RestoreError::Inconsistent(format!(
                    "{name} covers {len} nodes but states covers {n}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Channels, SettledRound};
    use graphs::generators::classic;
    use rand::RngCore;

    /// Parity protocol: node beeps iff its counter is even; counter
    /// increments when it hears a beep.
    struct Parity;
    impl BeepingProtocol for Parity {
        type State = u64;
        fn channels(&self) -> Channels {
            Channels::One
        }
        fn transmit(&self, _: NodeId, state: &u64, _: &mut dyn RngCore) -> BeepSignal {
            if state.is_multiple_of(2) {
                BeepSignal::channel1()
            } else {
                BeepSignal::silent()
            }
        }
        fn receive(
            &self,
            _: NodeId,
            state: &mut u64,
            _: BeepSignal,
            heard: BeepSignal,
            _: &mut dyn RngCore,
        ) {
            if heard.on_channel1() {
                *state += 1;
            }
        }
    }

    #[test]
    fn no_self_hearing() {
        // A single isolated node beeps but must hear nothing.
        let g = Graph::empty(1);
        let mut sim = Simulator::new(&g, Parity, vec![0], 0);
        let report = sim.step();
        assert_eq!(report.beeps_channel1, 1);
        assert_eq!(report.hearers_channel1, 0);
        // The counter never advances: it never hears anything.
        sim.run(10);
        assert_eq!(*sim.state(0), 0);
    }

    #[test]
    fn half_duplex_deafens_transmitters() {
        // Both path endpoints beep in round 1; under half duplex neither
        // hears the other, so neither counter advances.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0).with_duplex(DuplexMode::Half);
        assert_eq!(sim.duplex(), DuplexMode::Half);
        sim.step();
        assert_eq!(sim.states(), &[0, 0]);
        // A silent node still hears: make node 1 silent (odd counter).
        let mut sim = Simulator::new(&g, Parity, vec![0, 1], 0).with_duplex(DuplexMode::Half);
        sim.step();
        assert_eq!(sim.states(), &[0, 2]); // only the silent node heard
    }

    #[test]
    fn or_semantics_on_star() {
        // All leaves beep in round 1 (state 0 = even); the hub hears one bit.
        let g = classic::star(5);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0, 0, 0, 0], 0);
        sim.step();
        // Hub heard (4 leaf beeps → 1 bit) and each leaf heard the hub.
        assert!(sim.last_heard().iter().all(|h| h.on_channel1()));
        assert!(sim.states().iter().all(|&s| s == 1));
    }

    #[test]
    fn deterministic_for_seed() {
        struct Coin;
        impl BeepingProtocol for Coin {
            type State = u32;
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &u32, rng: &mut dyn RngCore) -> BeepSignal {
                if rng.next_u32().is_multiple_of(2) {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            fn receive(
                &self,
                _: NodeId,
                s: &mut u32,
                sent: BeepSignal,
                _: BeepSignal,
                _: &mut dyn RngCore,
            ) {
                *s = s.wrapping_mul(31).wrapping_add(sent.on_channel1() as u32);
            }
        }
        let g = classic::cycle(16);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Coin, vec![0; 16], seed);
            sim.run(50);
            sim.into_states()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        // Both nodes beep in round 1 (counter 0 is even), hear each other,
        // and increment to 1 — then both go silent forever.
        let stopped = sim.run_until(100, |s| s.states().iter().all(|&c| c >= 1));
        assert_eq!(stopped, Some(1));
        assert_eq!(sim.states(), &[1, 1]);
    }

    #[test]
    fn run_until_checks_initial_state() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![5, 5], 0);
        assert_eq!(sim.run_until(100, |s| s.states().iter().all(|&c| c == 5)), Some(0));
        assert_eq!(sim.round(), 0);
    }

    #[test]
    fn run_until_budget_exhaustion() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        assert_eq!(sim.run_until(5, |_| false), None);
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn checkpoint_restore_reproduces_continuation() {
        struct Coin2;
        impl BeepingProtocol for Coin2 {
            type State = u32;
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &u32, rng: &mut dyn RngCore) -> BeepSignal {
                if rng.next_u32().is_multiple_of(3) {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            fn receive(
                &self,
                _: NodeId,
                s: &mut u32,
                sent: BeepSignal,
                heard: BeepSignal,
                _: &mut dyn RngCore,
            ) {
                *s = s
                    .wrapping_mul(17)
                    .wrapping_add(sent.on_channel1() as u32)
                    .wrapping_add(2 * heard.on_channel1() as u32);
            }
        }
        let g = classic::cycle(12);
        let mut sim = Simulator::new(&g, Coin2, vec![0; 12], 5);
        sim.run(20);
        let cp = sim.checkpoint();
        assert_eq!(cp.round(), 20);
        sim.run(30);
        let final_a = sim.states().to_vec();
        // Rewind and replay.
        sim.restore(&cp).unwrap();
        assert_eq!(sim.round(), 20);
        assert_eq!(sim.states(), cp.states());
        sim.run(30);
        assert_eq!(sim.states(), final_a.as_slice());
    }

    #[test]
    fn corrupt_state_changes_behavior() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        sim.corrupt_state(0, 1); // odd: silent
        sim.corrupt_state(1, 1);
        sim.step();
        assert_eq!(sim.states(), &[1, 1]); // nobody beeped, nothing heard
    }

    #[test]
    fn corrupt_all_applies_everywhere() {
        let g = classic::cycle(4);
        let mut sim = Simulator::new(&g, Parity, vec![0; 4], 0);
        sim.corrupt_all(|v, s| *s = v as u64);
        assert_eq!(sim.states(), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "undeclared channel")]
    fn channel_discipline_enforced() {
        struct Cheater;
        impl BeepingProtocol for Cheater {
            type State = ();
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &(), _: &mut dyn RngCore) -> BeepSignal {
                BeepSignal::channel2()
            }
            fn receive(
                &self,
                _: NodeId,
                _: &mut (),
                _: BeepSignal,
                _: BeepSignal,
                _: &mut dyn RngCore,
            ) {
            }
        }
        let g = classic::path(2);
        Simulator::new(&g, Cheater, vec![(), ()], 0).step();
    }

    #[test]
    #[should_panic(expected = "one initial state per node")]
    fn wrong_state_count_panics() {
        let g = classic::path(3);
        let _ = Simulator::new(&g, Parity, vec![0, 0], 0);
    }

    #[test]
    fn full_drop_silences_every_delivery() {
        // With drop_p = 1 nobody ever hears a beep, so Parity counters
        // never advance even on a dense graph.
        let g = classic::complete(6);
        let mut sim = Simulator::new(&g, Parity, vec![0; 6], 3)
            .with_channel(ChannelFault::reliable().with_drop(1.0));
        sim.run(20);
        assert_eq!(sim.states(), &[0; 6]);
        // The beeps were still transmitted — only delivery failed.
        assert!(sim.last_sent().iter().all(|s| s.on_channel1()));
        assert!(sim.last_heard().iter().all(|h| h.is_silent()));
    }

    #[test]
    fn full_spurious_reaches_isolated_nodes() {
        // spurious_p = 1 makes even a totally disconnected node hear a beep
        // every round: a pure false positive.
        let g = Graph::empty(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 7)
            .with_channel(ChannelFault::reliable().with_spurious(1.0));
        sim.run(5);
        assert_eq!(sim.states(), &[5, 5]);
    }

    #[test]
    fn half_duplex_transmitters_get_no_spurious_beeps() {
        // Half duplex deafens a transmitting node to spurious beeps too:
        // noise is applied inside the hearing branch.
        let g = Graph::empty(1);
        let mut sim = Simulator::new(&g, Parity, vec![0], 7)
            .with_duplex(DuplexMode::Half)
            .with_channel(ChannelFault::reliable().with_spurious(1.0));
        sim.step(); // counter 0 → beeping → deaf
        assert_eq!(*sim.state(0), 0);
        sim.step(); // still beeping (counter still even), still deaf
        assert_eq!(*sim.state(0), 0);
    }

    #[test]
    fn always_beep_jammer_overrides_protocol_silence() {
        // Node 0 starts odd (silent under Parity) but is an AlwaysBeep
        // jammer: its neighbor hears it anyway.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![1, 1], 0)
            .with_channel(ChannelFault::reliable().with_jammer(0, JammerKind::AlwaysBeep));
        sim.step();
        assert!(sim.last_sent()[0].on_channel1());
        assert_eq!(sim.states(), &[1, 2]); // only node 1 heard a beep
    }

    #[test]
    fn always_silent_jammer_mutes_protocol_beeps() {
        // Node 0 starts even (beeping under Parity) but its radio is dead:
        // the neighbor hears nothing.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 1], 0)
            .with_channel(ChannelFault::reliable().with_jammer(0, JammerKind::AlwaysSilent));
        sim.step();
        assert!(sim.last_sent()[0].is_silent());
        assert_eq!(sim.states(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "jammer node 9 out of range")]
    fn out_of_range_jammer_rejected() {
        let g = classic::path(2);
        let _ = Simulator::new(&g, Parity, vec![0, 0], 0)
            .with_channel(ChannelFault::reliable().with_jammer(9, JammerKind::AlwaysBeep));
    }

    #[test]
    fn channel_noise_is_deterministic_for_seed() {
        let g = classic::cycle(10);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Parity, vec![0; 10], seed)
                .with_channel(ChannelFault::reliable().with_drop(0.4).with_spurious(0.05));
            sim.run(60);
            sim.into_states()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn channel_noise_never_touches_node_streams() {
        // Coin's state depends only on its own transmissions, which draw
        // from the per-node streams — heavy channel noise must not perturb
        // them, because channel randomness lives on a dedicated stream.
        struct Coin;
        impl BeepingProtocol for Coin {
            type State = u32;
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &u32, rng: &mut dyn RngCore) -> BeepSignal {
                if rng.next_u32().is_multiple_of(2) {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            fn receive(
                &self,
                _: NodeId,
                s: &mut u32,
                sent: BeepSignal,
                _: BeepSignal,
                _: &mut dyn RngCore,
            ) {
                *s = s.wrapping_mul(31).wrapping_add(sent.on_channel1() as u32);
            }
        }
        let g = classic::cycle(8);
        let run = |channel: ChannelFault| {
            let mut sim = Simulator::new(&g, Coin, vec![0; 8], 42).with_channel(channel);
            sim.run(40);
            sim.into_states()
        };
        let clean = run(ChannelFault::reliable());
        let noisy = run(ChannelFault::reliable().with_drop(0.9).with_spurious(0.9));
        assert_eq!(clean, noisy);
    }

    #[test]
    fn churn_edges_change_delivery() {
        // Two isolated nodes never hear each other; after inserting the
        // edge they do, and after removing it they stop again.
        let g = Graph::empty(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        sim.step();
        assert_eq!(sim.states(), &[0, 0]);
        assert_eq!(sim.insert_edge(0, 1), Ok(true));
        assert_eq!(sim.insert_edge(0, 1), Ok(false)); // idempotent
        assert_eq!(sim.graph().degree(0), 1);
        sim.step();
        assert_eq!(sim.states(), &[1, 1]);
        assert_eq!(sim.remove_edge(0, 1), Ok(true));
        assert_eq!(sim.remove_edge(0, 1), Ok(false));
        sim.step();
        assert_eq!(sim.states(), &[1, 1]);
        // The borrowed input graph is untouched (copy-on-write).
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn node_leave_and_join_round_trip() {
        let g = classic::path(3); // 0 - 1 - 2
        let mut sim = Simulator::new(&g, Parity, vec![0, 0, 0], 0);
        assert_eq!(sim.active_count(), 3);
        assert_eq!(sim.node_leave(1), Ok(2));
        assert!(!sim.is_active(1));
        assert_eq!(sim.active_count(), 2);
        assert_eq!(sim.node_leave(1), Ok(0)); // idempotent
        sim.step();
        // The departed middle node is frozen; the endpoints are isolated.
        assert_eq!(sim.states(), &[0, 0, 0]);
        assert!(sim.last_sent()[1].is_silent());
        // Rejoin with fresh (adversarial) state and both edges back.
        sim.node_join(1, &[0, 2], 0).unwrap();
        assert!(sim.is_active(1));
        assert_eq!(sim.graph().degree(1), 2);
        sim.step();
        assert_eq!(sim.states(), &[1, 1, 1]);
    }

    #[test]
    fn node_leave_clears_stale_signals() {
        // Regression: a departing node's last transmission/observation used
        // to linger in `last_sent`/`last_heard`, so observers (and the
        // checkpoint) saw a "ghost beep" from an inactive radio.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        sim.step(); // both beep and hear each other
        assert!(sim.last_sent()[1].on_channel1());
        assert!(sim.last_heard()[1].on_channel1());
        sim.node_leave(1).unwrap();
        assert!(sim.last_sent()[1].is_silent());
        assert!(sim.last_heard()[1].is_silent());
        // The survivor's signals are untouched.
        assert!(sim.last_sent()[0].on_channel1());
        // And the next round still treats the departed node as silent.
        sim.step();
        assert!(sim.last_sent()[1].is_silent());
        assert!(sim.last_heard()[0].is_silent());
    }

    #[test]
    fn node_join_clears_stale_signals() {
        // Regression (mirror of `node_leave_clears_stale_signals`): a node
        // that rejoins boots fresh, so the transmission/observation captured
        // before its departure — or, for a join without a prior leave, last
        // round's signals — must not survive the join.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        sim.step(); // both beep and hear each other
        sim.node_leave(1).unwrap();
        // Simulate signal state lingering from before the leave by joining
        // straight back: the join itself must leave the radio silent.
        sim.node_join(1, &[0], 1).unwrap();
        assert!(sim.is_active(1));
        assert!(sim.last_sent()[1].is_silent());
        assert!(sim.last_heard()[1].is_silent());
        // A join on a node that never left also resets its signals: the
        // adversary hands it arbitrary RAM, not a radio mid-transmission.
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        sim.step();
        assert!(sim.last_sent()[0].on_channel1());
        sim.node_join(0, &[1], 1).unwrap();
        assert!(sim.last_sent()[0].is_silent());
        assert!(sim.last_heard()[0].is_silent());
    }

    #[test]
    fn batch_edge_diff_matches_sequential_churn() {
        let g = classic::path(4); // 0 - 1 - 2 - 3
        let mut batch = Simulator::new(&g, Parity, vec![0; 4], 0);
        let mut seq = Simulator::new(&g, Parity, vec![0; 4], 0);
        batch.step();
        seq.step();
        let counts = batch.apply_edge_diff(&[(0, 2), (1, 3)], &[(1, 2)]).unwrap();
        assert_eq!(counts, (2, 1));
        assert_eq!(seq.remove_edge(1, 2), Ok(true));
        assert_eq!(seq.insert_edge(0, 2), Ok(true));
        assert_eq!(seq.insert_edge(1, 3), Ok(true));
        assert_eq!(batch.graph(), seq.graph());
        for _ in 0..4 {
            batch.step();
            seq.step();
            assert_eq!(batch.states(), seq.states());
            assert_eq!(batch.last_sent(), seq.last_sent());
            assert_eq!(batch.last_heard(), seq.last_heard());
        }
        // The borrowed input graph is untouched (copy-on-write).
        assert_eq!(g, classic::path(4));
    }

    #[test]
    fn batch_edge_diff_never_touches_signals_or_participation() {
        // The staleness audit for the batch path: edge updates must leave
        // `active`, `sent` and `heard` exactly as they were, for every node.
        let g = classic::path(3);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0, 0], 0);
        sim.step();
        sim.node_leave(2).unwrap();
        let sent: Vec<BeepSignal> = sim.last_sent().to_vec();
        let heard: Vec<BeepSignal> = sim.last_heard().to_vec();
        let active: Vec<bool> = sim.active().to_vec();
        sim.apply_edge_diff(&[(0, 2)], &[(0, 1)]).unwrap();
        assert_eq!(sim.last_sent(), &sent[..]);
        assert_eq!(sim.last_heard(), &heard[..]);
        assert_eq!(sim.active(), &active[..]);
    }

    #[test]
    fn batch_edge_diff_rejects_invalid_and_leaves_topology_unchanged() {
        let g = classic::path(3);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0, 0], 0);
        assert_eq!(
            sim.apply_edge_diff(&[(0, 3)], &[]),
            Err(ChurnError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(sim.apply_edge_diff(&[(0, 2)], &[(1, 1)]), Err(ChurnError::SelfEdge(1)));
        assert_eq!(sim.graph(), &classic::path(3));
    }

    #[test]
    fn invariant_hook_observes_every_round() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let g = classic::path(2);
        #[allow(clippy::type_complexity)]
        let seen: Rc<RefCell<Vec<(u64, Vec<u64>)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0).with_invariant_hook(
            move |graph, round, states: &[u64]| {
                assert_eq!(graph.len(), 2);
                sink.borrow_mut().push((round, states.to_vec()));
            },
        );
        sim.run(3);
        // Round 1: both beep (even counters), hear each other, increment;
        // afterwards both are odd and silent forever.
        assert_eq!(*seen.borrow(), vec![(1, vec![1, 1]), (2, vec![1, 1]), (3, vec![1, 1])]);
        // The hook observes only: removing it never changes the execution.
        let mut plain = Simulator::new(&g, Parity, vec![0, 0], 0);
        plain.run(3);
        assert_eq!(plain.states(), sim.states());
    }

    #[test]
    #[should_panic(expected = "invariant violated in round 2")]
    fn invariant_hook_panics_propagate() {
        let g = classic::path(2);
        let mut sim =
            Simulator::new(&g, Parity, vec![0, 0], 0).with_invariant_hook(|_, round, _| {
                assert!(round < 2, "invariant violated in round {round}");
            });
        sim.run(5);
    }

    #[test]
    fn stuck_beep_overrides_protocol_silence() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        // Node 0 starts odd (silent under Parity) but its radio is stuck on:
        // the neighbor hears it every round.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![1, 1], 0)
            .with_byzantine(ByzantinePlan::new().with_behavior(0, ByzantineBehavior::StuckBeep));
        sim.step();
        assert!(sim.last_sent()[0].on_channel1());
        assert_eq!(sim.states(), &[1, 2]); // only node 1 heard a beep
    }

    #[test]
    fn stuck_silent_mutes_protocol_beeps() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 1], 0)
            .with_byzantine(ByzantinePlan::new().with_behavior(0, ByzantineBehavior::StuckSilent));
        sim.step();
        assert!(sim.last_sent()[0].is_silent());
        assert_eq!(sim.states(), &[0, 1]);
    }

    #[test]
    fn byzantine_overrides_beat_jammers() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        // Node 0 is both an AlwaysBeep jammer and StuckSilent Byzantine: the
        // Byzantine radio wins, so nothing is transmitted.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 1], 0)
            .with_channel(ChannelFault::reliable().with_jammer(0, JammerKind::AlwaysBeep))
            .with_byzantine(ByzantinePlan::new().with_behavior(0, ByzantineBehavior::StuckSilent));
        sim.step();
        assert!(sim.last_sent()[0].is_silent());
    }

    #[test]
    fn babbler_extremes_are_stuck_radios() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        let g = classic::path(2);
        let run = |p: f64| {
            let mut sim = Simulator::new(&g, Parity, vec![1, 1], 3).with_byzantine(
                ByzantinePlan::new().with_behavior(0, ByzantineBehavior::Babbler(p)),
            );
            let mut beeps = 0;
            for _ in 0..30 {
                sim.step();
                beeps += sim.last_sent()[0].on_channel1() as u32;
            }
            beeps
        };
        assert_eq!(run(0.0), 0);
        assert_eq!(run(1.0), 30);
        let mid = run(0.5);
        assert!((5..=25).contains(&mid), "babbler(0.5) beeped {mid}/30 rounds");
    }

    #[test]
    fn babbler_is_deterministic_and_off_the_node_streams() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        // Same seed → identical trajectory; and the babbler's coins come
        // from the dedicated stream, so the *other* node's transmissions
        // (driven by its private stream) are identical with and without the
        // babbler present.
        let g = classic::path(2);
        let plan = || ByzantinePlan::new().with_behavior(0, ByzantineBehavior::Babbler(0.5));
        let run = |seed: u64| {
            let mut sim = Simulator::new(&g, Parity, vec![0, 0], seed).with_byzantine(plan());
            sim.run(40);
            sim.into_states()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn crash_restart_reboots_on_schedule() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan, Resurrect};
        // Isolated node: Parity never updates its counter (hears nothing),
        // so the only state changes are the scheduled reboots to 99.
        let g = Graph::empty(1);
        let mut sim = Simulator::new(&g, Parity, vec![0], 0).with_byzantine(
            ByzantinePlan::new().with_behavior(
                0,
                ByzantineBehavior::CrashRestart {
                    period: 5,
                    resurrect: Resurrect::new(|_, round, _| 90 + round),
                },
            ),
        );
        sim.run(4);
        assert_eq!(*sim.state(0), 0); // untouched before the first reboot
        sim.step(); // round 5: reboot fires before the transmission
        assert_eq!(*sim.state(0), 95);
        sim.run(4);
        assert_eq!(*sim.state(0), 95);
        sim.step(); // round 10
        assert_eq!(*sim.state(0), 100);
    }

    #[test]
    fn empty_byzantine_plan_is_bit_identical_to_baseline() {
        use crate::byzantine::ByzantinePlan;
        struct Coin3;
        impl BeepingProtocol for Coin3 {
            type State = u32;
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &u32, rng: &mut dyn RngCore) -> BeepSignal {
                if rng.next_u32().is_multiple_of(2) {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            fn receive(
                &self,
                _: NodeId,
                s: &mut u32,
                sent: BeepSignal,
                heard: BeepSignal,
                _: &mut dyn RngCore,
            ) {
                *s = s
                    .wrapping_mul(31)
                    .wrapping_add(sent.on_channel1() as u32)
                    .wrapping_add(5 * heard.on_channel1() as u32);
            }
        }
        let g = classic::cycle(10);
        let mut with_plan =
            Simulator::new(&g, Coin3, vec![0; 10], 21).with_byzantine(ByzantinePlan::new());
        let mut without = Simulator::new(&g, Coin3, vec![0; 10], 21);
        for _ in 0..50 {
            with_plan.step();
            without.step();
            assert_eq!(with_plan.states(), without.states());
        }
    }

    #[test]
    fn byzantine_checkpoint_restore_replays_babbler() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        let g = classic::cycle(8);
        let mut sim = Simulator::new(&g, Parity, vec![0; 8], 17)
            .with_byzantine(ByzantinePlan::new().with_behavior(2, ByzantineBehavior::Babbler(0.5)));
        sim.run(15);
        let cp = sim.checkpoint();
        sim.run(25);
        let final_a = sim.states().to_vec();
        sim.restore(&cp).unwrap();
        sim.run(25);
        assert_eq!(sim.states(), final_a.as_slice());
    }

    #[test]
    fn inactive_byzantine_node_is_frozen() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        // A departed stuck-beeper neither transmits nor reboots.
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![1, 0], 0)
            .with_byzantine(ByzantinePlan::new().with_behavior(0, ByzantineBehavior::StuckBeep));
        sim.node_leave(0).unwrap();
        sim.step();
        assert!(sim.last_sent()[0].is_silent());
        assert_eq!(*sim.state(1), 0); // heard nothing: its neighbor departed
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_byzantine_node_rejected() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        let g = classic::path(2);
        let _ = Simulator::new(&g, Parity, vec![0, 0], 0)
            .with_byzantine(ByzantinePlan::new().with_behavior(5, ByzantineBehavior::StuckBeep));
    }

    #[test]
    #[should_panic(expected = "two-channel")]
    fn channel2_liar_rejected_on_single_channel_protocol() {
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan};
        let g = classic::path(2);
        let _ = Simulator::new(&g, Parity, vec![0, 0], 0)
            .with_byzantine(ByzantinePlan::new().with_behavior(0, ByzantineBehavior::Channel2Liar));
    }

    #[test]
    fn checkpoint_restore_covers_churn_and_noise() {
        let g = classic::cycle(6);
        let mut sim = Simulator::new(&g, Parity, vec![0; 6], 13)
            .with_channel(ChannelFault::reliable().with_drop(0.3));
        sim.run(10);
        sim.remove_edge(0, 1).unwrap();
        sim.node_leave(3).unwrap();
        sim.run(5);
        let cp = sim.checkpoint();
        sim.insert_edge(0, 1).unwrap();
        sim.run(20);
        let final_a = sim.states().to_vec();
        let round_a = sim.round();
        // Restore must bring back the churned topology, the active mask and
        // the channel-RNG position, so the replay (with the same later
        // churn) reproduces the continuation exactly.
        sim.restore(&cp).unwrap();
        assert_eq!(sim.round(), 15);
        assert_eq!(sim.graph().degree(3), 0);
        assert!(!sim.is_active(3));
        sim.insert_edge(0, 1).unwrap();
        sim.run(20);
        assert_eq!(sim.states(), final_a.as_slice());
        assert_eq!(sim.round(), round_a);
    }

    /// Claim/retreat probe with absorbing configurations and a
    /// `settled_round` certificate — the lib-test stand-in for Algorithm 1,
    /// used to exercise the frontier engine's skip path. Level 0 claims
    /// (beeps, one confirmation draw per round); hearing a beep pushes the
    /// level up toward 5; silence pulls a non-beeping node down; interior
    /// levels flip a fair coin to beep.
    struct Claimer;
    impl BeepingProtocol for Claimer {
        type State = u64;
        fn channels(&self) -> Channels {
            Channels::One
        }
        fn transmit(&self, _: NodeId, s: &u64, rng: &mut dyn RngCore) -> BeepSignal {
            if *s == 0 {
                let _ = rng.next_u64();
                BeepSignal::channel1()
            } else if *s >= 5 {
                BeepSignal::silent()
            } else if rng.next_u64().is_multiple_of(2) {
                BeepSignal::channel1()
            } else {
                BeepSignal::silent()
            }
        }
        fn receive(
            &self,
            _: NodeId,
            s: &mut u64,
            sent: BeepSignal,
            heard: BeepSignal,
            _: &mut dyn RngCore,
        ) {
            if heard.on_channel1() {
                *s = (*s + 1).min(5);
            } else if !sent.on_channel1() {
                *s = s.saturating_sub(1);
            }
        }
        fn settled_round(&self, _: NodeId, s: &u64, heard: BeepSignal) -> Option<SettledRound> {
            if *s == 0 && !heard.on_channel1() {
                Some(SettledRound { signal: BeepSignal::channel1(), draws: 1 })
            } else if *s >= 5 && heard.on_channel1() {
                Some(SettledRound { signal: BeepSignal::silent(), draws: 0 })
            } else {
                None
            }
        }
    }

    fn claimer_pair(g: &Graph, seed: u64) -> (Simulator<'_, Claimer>, Simulator<'_, Claimer>) {
        let init: Vec<u64> = g.nodes().map(|v| (v as u64) % 6).collect();
        let scalar = Simulator::new(g, Claimer, init.clone(), seed);
        let frontier = Simulator::new(g, Claimer, init, seed).with_engine(EngineMode::Frontier);
        (scalar, frontier)
    }

    #[test]
    fn frontier_fallback_threshold_values() {
        // Small networks never fall back (the floor keeps the whole graph
        // under the cutoff); large ones cut over at n/8 dirty nodes.
        assert_eq!(frontier_fallback_threshold(0), 16);
        assert_eq!(frontier_fallback_threshold(16), 16);
        assert_eq!(frontier_fallback_threshold(128), 16);
        assert_eq!(frontier_fallback_threshold(136), 17);
        assert_eq!(frontier_fallback_threshold(65_536), 8_192);
    }

    #[test]
    fn frontier_matches_scalar_past_stabilization() {
        let g = classic::cycle(12);
        let (mut scalar, mut frontier) = claimer_pair(&g, 11);
        for round in 1..=60 {
            let a = scalar.step();
            let b = frontier.step();
            assert_eq!(a, b, "report diverged at round {round}");
            assert_eq!(scalar.states(), frontier.states(), "states diverged at round {round}");
            assert_eq!(scalar.last_sent(), frontier.last_sent());
            assert_eq!(scalar.last_heard(), frontier.last_heard());
        }
    }

    #[test]
    fn frontier_reseeds_dirty_from_events() {
        // Every disturbance source must push the affected nodes back onto
        // the frontier: point corruption, channel noise install/remove,
        // Byzantine plan swaps, churn, and batched edge diffs. The scalar
        // twin receives the identical script, so any missed re-seeding
        // shows up as a state divergence within a round.
        use crate::byzantine::{ByzantineBehavior, ByzantinePlan, Resurrect};
        let g = classic::cycle(10);
        let (mut scalar, mut frontier) = claimer_pair(&g, 23);
        let lockstep = |scalar: &mut Simulator<'_, Claimer>,
                        frontier: &mut Simulator<'_, Claimer>,
                        rounds: u64| {
            for _ in 0..rounds {
                let a = scalar.step();
                let b = frontier.step();
                assert_eq!(a, b, "report diverged at round {}", scalar.round());
                assert_eq!(
                    scalar.states(),
                    frontier.states(),
                    "states diverged at round {}",
                    scalar.round()
                );
            }
        };
        lockstep(&mut scalar, &mut frontier, 25); // settle
        scalar.corrupt_state(3, 0); // point fault
        frontier.corrupt_state(3, 0);
        lockstep(&mut scalar, &mut frontier, 10);
        let noisy = ChannelFault::reliable().with_drop(0.25);
        scalar.set_channel(noisy.clone()); // noise burst begins
        frontier.set_channel(noisy);
        lockstep(&mut scalar, &mut frontier, 8);
        scalar.set_channel(ChannelFault::reliable()); // burst ends: resync
        frontier.set_channel(ChannelFault::reliable());
        lockstep(&mut scalar, &mut frontier, 10);
        let reboot = || {
            ByzantinePlan::new().with_behavior(
                7,
                ByzantineBehavior::CrashRestart {
                    period: 3,
                    resurrect: Resurrect::new(|_, _, _| 0),
                },
            )
        };
        scalar.set_byzantine(reboot()); // crash-restart radio appears
        frontier.set_byzantine(reboot());
        lockstep(&mut scalar, &mut frontier, 8);
        scalar.set_byzantine(ByzantinePlan::new()); // and is repaired
        frontier.set_byzantine(ByzantinePlan::new());
        lockstep(&mut scalar, &mut frontier, 10);
        scalar.node_leave(5).unwrap(); // churn out…
        frontier.node_leave(5).unwrap();
        lockstep(&mut scalar, &mut frontier, 8);
        scalar.node_join(5, &[4, 6], 2).unwrap(); // …and back in
        frontier.node_join(5, &[4, 6], 2).unwrap();
        lockstep(&mut scalar, &mut frontier, 8);
        // Motion-style batched diff: rewire a chord, drop a cycle edge.
        let added = [(0usize, 5usize)];
        let removed = [(8usize, 9usize)];
        assert_eq!(scalar.apply_edge_diff(&added, &removed).unwrap(), (1, 1));
        assert_eq!(frontier.apply_edge_diff(&added, &removed).unwrap(), (1, 1));
        lockstep(&mut scalar, &mut frontier, 12);
    }

    #[test]
    fn frontier_checkpoint_materializes_pending_draws() {
        // Checkpoint deep in quiescence, when settled claimers hold long
        // lazily-accounted draw backlogs: the snapshot must bake those
        // draws into the captured streams so a restored run (which rebuilds
        // the frontier from scratch) continues bit-identically.
        let g = classic::cycle(12);
        let (mut scalar, mut frontier) = claimer_pair(&g, 31);
        scalar.run(40);
        frontier.run(40);
        assert_eq!(scalar.states(), frontier.states());
        let cp = frontier.checkpoint();
        scalar.run(20);
        frontier.run(20);
        let final_states = frontier.states().to_vec();
        assert_eq!(scalar.states(), final_states.as_slice());
        frontier.restore(&cp).unwrap();
        assert_eq!(frontier.round(), 40);
        frontier.run(20);
        assert_eq!(frontier.states(), final_states.as_slice());
        // A perturbation after the restore still matches the scalar twin —
        // the woken streams resume at the exact post-materialization
        // positions.
        let cp2 = frontier.checkpoint();
        let mut scalar2 = scalar; // same round, same states
        frontier.restore(&cp2).unwrap();
        frontier.corrupt_state(6, 0);
        scalar2.corrupt_state(6, 0);
        for _ in 0..15 {
            let a = scalar2.step();
            let b = frontier.step();
            assert_eq!(a, b);
            assert_eq!(scalar2.states(), frontier.states());
        }
    }
}
