//! The transient-fault model of the paper (§1.1).
//!
//! Node state lives in RAM and can be corrupted arbitrarily by transient
//! faults; the algorithm code lives in ROM and cannot. A self-stabilizing
//! algorithm must converge to a legal configuration from *any* RAM contents
//! within its termination time, counted from the last fault.
//!
//! This module provides the *scheduling* half of fault injection — which
//! nodes are hit, and when. The *payload* half (what a corrupted state looks
//! like) is protocol-specific and supplied by the caller as a closure, since
//! only the protocol crate knows its state type.

use graphs::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// A misconfigured fault target, reported by [`FaultTarget::validate`].
///
/// Validation runs when a plan is *built* (or handed to a runner), so a bad
/// schedule fails before any simulation round executes instead of panicking
/// mid-execution from inside the round loop.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// An explicit target names a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The network size it was checked against.
        n: usize,
    },
    /// A `RandomCount` asks for more distinct victims than the network has.
    CountTooLarge {
        /// The requested victim count.
        count: usize,
        /// The network size it was checked against.
        n: usize,
    },
    /// A `RandomFraction` probability is outside `[0, 1]` (or NaN).
    FractionOutOfRange {
        /// The offending probability.
        p: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::NodeOutOfRange { node, n } => {
                write!(f, "fault target node {node} out of range for n={n}")
            }
            FaultError::CountTooLarge { count, n } => {
                write!(f, "cannot corrupt {count} of {n} nodes")
            }
            FaultError::FractionOutOfRange { p } => {
                write!(f, "fraction must be in [0,1], got {p}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Which nodes a fault event strikes.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTarget {
    /// Every node.
    All,
    /// An explicit set of nodes.
    Nodes(Vec<NodeId>),
    /// `count` distinct nodes chosen uniformly at random.
    RandomCount(usize),
    /// Each node independently with probability `p ∈ [0, 1]`.
    RandomFraction(f64),
}

impl FaultTarget {
    /// Checks the target against an `n`-node network.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] found: an explicit node id `>= n`, a
    /// `RandomCount` greater than `n`, or a `RandomFraction` outside
    /// `[0, 1]`.
    pub fn validate(&self, n: usize) -> Result<(), FaultError> {
        match self {
            FaultTarget::All => Ok(()),
            FaultTarget::Nodes(nodes) => match nodes.iter().find(|&&v| v >= n) {
                Some(&node) => Err(FaultError::NodeOutOfRange { node, n }),
                None => Ok(()),
            },
            FaultTarget::RandomCount(count) => {
                if *count > n {
                    Err(FaultError::CountTooLarge { count: *count, n })
                } else {
                    Ok(())
                }
            }
            FaultTarget::RandomFraction(p) => {
                if (0.0..=1.0).contains(p) {
                    Ok(())
                } else {
                    Err(FaultError::FractionOutOfRange { p: *p })
                }
            }
        }
    }

    /// Resolves the target to a concrete node list for an `n`-node network.
    ///
    /// Infallible: runners [`validate`](FaultTarget::validate) plans before
    /// the first round, so by the time `select` runs inside the round loop a
    /// malformed target cannot abort the execution. If an unvalidated target
    /// reaches it anyway, out-of-range explicit ids are dropped, an
    /// oversized `RandomCount` saturates at `n`, and a `RandomFraction` is
    /// clamped into `[0, 1]`.
    pub fn select(&self, n: usize, rng: &mut Pcg64Mcg) -> Vec<NodeId> {
        match self {
            FaultTarget::All => (0..n).collect(),
            FaultTarget::Nodes(nodes) => {
                // Normalize: every select() variant yields sorted, distinct
                // nodes, so callers corrupt each victim exactly once and in
                // a schedule-independent order.
                let mut nodes: Vec<NodeId> = nodes.iter().copied().filter(|&v| v < n).collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            }
            FaultTarget::RandomCount(count) => {
                let mut all: Vec<NodeId> = (0..n).collect();
                all.shuffle(rng);
                all.truncate((*count).min(n));
                all.sort_unstable();
                all
            }
            FaultTarget::RandomFraction(p) => {
                // One draw per node regardless of `p`, so clamping a bad
                // fraction cannot shift the stream of a valid one.
                let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
                (0..n).filter(|_| rng.gen_bool(p)).collect()
            }
        }
    }
}

/// A single scheduled transient fault.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientFault {
    /// Round *after* which the fault strikes (0 = corrupt the initial
    /// configuration before any round runs).
    pub after_round: u64,
    /// Which nodes are hit.
    pub target: FaultTarget,
}

impl TransientFault {
    /// Creates a fault striking `target` after `after_round` rounds.
    pub fn new(after_round: u64, target: FaultTarget) -> TransientFault {
        TransientFault { after_round, target }
    }

    /// Checks the event's target against an `n`-node network.
    ///
    /// # Errors
    ///
    /// Returns the target's [`FaultError`], if any.
    pub fn validate(&self, n: usize) -> Result<(), FaultError> {
        self.target.validate(n)
    }
}

/// A schedule of transient faults over one execution.
///
/// # Example
///
/// ```
/// use beeping::faults::{FaultPlan, FaultTarget};
///
/// // Corrupt 10% of nodes after round 50, and everyone after round 200.
/// let plan = FaultPlan::new()
///     .with_fault(50, FaultTarget::RandomFraction(0.1))
///     .with_fault(200, FaultTarget::All);
/// assert_eq!(plan.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<TransientFault>,
}

impl FaultPlan {
    /// An empty plan (fault-free execution).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault event (builder style).
    pub fn with_fault(mut self, after_round: u64, target: FaultTarget) -> FaultPlan {
        self.push(TransientFault::new(after_round, target));
        self
    }

    /// Adds a fault event in place, keeping the schedule sorted by round
    /// (stable: events of the same round keep their insertion order).
    pub fn push(&mut self, fault: TransientFault) {
        let pos = self.events.partition_point(|e| e.after_round <= fault.after_round);
        self.events.insert(pos, fault);
    }

    /// The scheduled events, sorted by round (insertion order within a
    /// round).
    pub fn events(&self) -> &[TransientFault] {
        &self.events
    }

    /// `true` if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events scheduled exactly after `round`, in schedule order. A
    /// linear scan, deliberately independent of the storage order.
    pub fn events_after_round(&self, round: u64) -> impl Iterator<Item = &TransientFault> {
        self.events.iter().filter(move |e| e.after_round == round)
    }

    /// The latest scheduled fault round, or `None` for an empty plan.
    pub fn last_fault_round(&self) -> Option<u64> {
        self.events.last().map(|e| e.after_round)
    }

    /// Checks every scheduled event against an `n`-node network.
    ///
    /// Runners call this before the first round so a misconfigured plan
    /// fails at build time; [`FaultTarget::select`] is then infallible
    /// inside the round loop.
    ///
    /// # Errors
    ///
    /// Returns the first scheduled event's [`FaultError`], in round order.
    pub fn validate(&self, n: usize) -> Result<(), FaultError> {
        self.events.iter().try_for_each(|e| e.validate(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::aux_rng;

    #[test]
    fn select_all() {
        let mut rng = aux_rng(0, 0);
        assert_eq!(FaultTarget::All.select(4, &mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_explicit_sorts_and_dedups() {
        let mut rng = aux_rng(0, 0);
        assert_eq!(FaultTarget::Nodes(vec![2, 0, 2, 3, 0]).select(4, &mut rng), vec![0, 2, 3]);
    }

    #[test]
    fn validate_catches_each_misconfiguration() {
        assert_eq!(
            FaultTarget::Nodes(vec![1, 9]).validate(4),
            Err(FaultError::NodeOutOfRange { node: 9, n: 4 })
        );
        assert_eq!(
            FaultTarget::RandomCount(11).validate(10),
            Err(FaultError::CountTooLarge { count: 11, n: 10 })
        );
        assert_eq!(
            FaultTarget::RandomFraction(1.5).validate(10),
            Err(FaultError::FractionOutOfRange { p: 1.5 })
        );
        assert!(FaultTarget::RandomFraction(f64::NAN).validate(10).is_err());
        assert!(FaultTarget::All.validate(0).is_ok());
        assert!(FaultTarget::Nodes(vec![0, 3]).validate(4).is_ok());
        assert!(FaultTarget::RandomCount(10).validate(10).is_ok());
        assert!(FaultTarget::RandomFraction(0.0).validate(10).is_ok());
        assert!(FaultTarget::RandomFraction(1.0).validate(10).is_ok());
    }

    #[test]
    fn fault_error_display_matches_context() {
        let e = FaultError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = FaultError::CountTooLarge { count: 11, n: 10 };
        assert!(e.to_string().contains("cannot corrupt"));
        let e = FaultError::FractionOutOfRange { p: -0.5 };
        assert!(e.to_string().contains("[0,1]"));
    }

    #[test]
    fn select_is_infallible_on_unvalidated_input() {
        // A target that never went through validate() must not abort the
        // round loop: bad ids are dropped, counts saturate, fractions clamp.
        let mut rng = aux_rng(0, 0);
        assert_eq!(FaultTarget::Nodes(vec![9, 1, 9]).select(4, &mut rng), vec![1]);
        assert_eq!(FaultTarget::RandomCount(11).select(10, &mut rng).len(), 10);
        assert_eq!(FaultTarget::RandomFraction(7.5).select(10, &mut rng).len(), 10);
        assert!(FaultTarget::RandomFraction(-3.0).select(10, &mut rng).is_empty());
        assert!(FaultTarget::RandomFraction(f64::NAN).select(10, &mut rng).is_empty());
    }

    #[test]
    fn plan_validate_reports_first_bad_event() {
        let plan = FaultPlan::new()
            .with_fault(10, FaultTarget::RandomCount(99))
            .with_fault(5, FaultTarget::Nodes(vec![7]));
        // Events are round-sorted, so the round-5 explicit target is hit
        // first even though it was inserted second.
        assert_eq!(plan.validate(4), Err(FaultError::NodeOutOfRange { node: 7, n: 4 }));
        assert!(plan.validate(100).is_ok());
        assert!(FaultPlan::new().validate(0).is_ok());
        assert!(TransientFault::new(3, FaultTarget::RandomFraction(2.0)).validate(8).is_err());
    }

    #[test]
    fn select_random_count_distinct() {
        let mut rng = aux_rng(0, 1);
        let picked = FaultTarget::RandomCount(5).select(10, &mut rng);
        assert_eq!(picked.len(), 5);
        let mut dedup = picked.clone();
        dedup.dedup();
        assert_eq!(picked, dedup); // sorted output, so dedup detects repeats
        assert!(picked.iter().all(|&v| v < 10));
    }

    #[test]
    fn select_random_fraction_extremes() {
        let mut rng = aux_rng(0, 2);
        assert!(FaultTarget::RandomFraction(0.0).select(10, &mut rng).is_empty());
        assert_eq!(FaultTarget::RandomFraction(1.0).select(10, &mut rng).len(), 10);
    }

    #[test]
    fn select_random_fraction_rate() {
        let mut rng = aux_rng(0, 3);
        let picked = FaultTarget::RandomFraction(0.3).select(10_000, &mut rng);
        assert!((2_500..3_500).contains(&picked.len()), "picked {}", picked.len());
    }

    #[test]
    fn plan_queries() {
        let plan = FaultPlan::new()
            .with_fault(10, FaultTarget::All)
            .with_fault(5, FaultTarget::RandomCount(1))
            .with_fault(10, FaultTarget::RandomFraction(0.5));
        assert!(!plan.is_empty());
        assert_eq!(plan.last_fault_round(), Some(10));
        assert_eq!(plan.events_after_round(10).count(), 2);
        assert_eq!(plan.events_after_round(5).count(), 1);
        assert_eq!(plan.events_after_round(7).count(), 0);
        assert_eq!(FaultPlan::new().last_fault_round(), None);
    }

    #[test]
    fn plan_sorts_on_insert() {
        // events() promises round-sorted order regardless of insertion
        // order, with stable ordering within a round.
        let plan = FaultPlan::new()
            .with_fault(10, FaultTarget::All)
            .with_fault(5, FaultTarget::RandomCount(1))
            .with_fault(10, FaultTarget::RandomFraction(0.5))
            .with_fault(1, FaultTarget::Nodes(vec![0]));
        let rounds: Vec<u64> = plan.events().iter().map(|e| e.after_round).collect();
        assert_eq!(rounds, vec![1, 5, 10, 10]);
        assert_eq!(plan.events()[2].target, FaultTarget::All);
        assert_eq!(plan.events()[3].target, FaultTarget::RandomFraction(0.5));
    }
}
