//! Dynamic-topology driver: applies per-round mobility edge diffs to a
//! running [`Simulator`] through the batched churn path.
//!
//! [`graphs::motion`] animates a geometric deployment and recomputes the
//! radius graph each round; this module owns the glue that keeps a
//! simulator's copy-on-write topology synchronized with the moving
//! deployment. [`DynamicTopology::advance`] is one round of that glue: it
//! steps the mobility process, then *reconciles* the simulator's edge set
//! against the new radius graph with a single
//! [`Simulator::apply_edge_diff`] batch — no per-edge graph rebuilds.
//!
//! Reconciliation (rather than replaying the raw motion diff) is what makes
//! mobility compose with node churn: a departed node keeps moving but its
//! radio is off, so its radius edges are withheld from the simulator until
//! it rejoins, at which point the next `advance` restores exactly the edges
//! its current position warrants. Under a dynamic topology the motion layer
//! owns the edge set — scheduled `AddEdge`/`RemoveEdge` churn events are
//! overwritten at the next reconciliation, so dynamic runs should restrict
//! churn plans to node leave/join.
//!
//! Determinism: mobility randomness comes from a dedicated
//! [`aux_rng`] purpose stream ([`MOTION_RNG_PURPOSE`]), independent of the
//! per-node protocol streams and of the channel/Byzantine/fault streams, so
//! attaching motion to a run never perturbs the protocol's random choices,
//! and the same master seed replays the same trajectory bit for bit on
//! either round engine, with or without telemetry attached.

use graphs::generators::geometric::random_points;
use graphs::motion::{Motion, MotionModel};
use graphs::{Graph, GraphError, NodeId};
use rand_pcg::Pcg64Mcg;

use crate::protocol::BeepingProtocol;
use crate::rng::{aux_rng, pcg_from_state, pcg_state};
use crate::sim::Simulator;

/// `aux_rng` purpose for the mobility stream (waypoint draws, heading
/// perturbations). Must stay distinct from every other purpose constant in
/// the workspace (lint L4 checks collisions).
pub const MOTION_RNG_PURPOSE: u64 = 0x4D0B_17E5;

/// The declarative description of a moving deployment — everything needed
/// to (re)build the initial topology and trajectory from a master seed.
/// This is configuration, not state: it goes into run configs (and their
/// snapshot fingerprints), while the evolving positions live in
/// [`MotionState`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionSpec {
    /// Seed of the uniform unit-square point cloud
    /// ([`random_points`]); the same seed reproduces the deployment a
    /// static `random_geometric` graph with that seed starts from.
    pub points_seed: u64,
    /// Connection radius of the (moving) geometric graph.
    pub radius: f64,
    /// The mobility model nodes follow.
    pub model: MotionModel,
}

impl MotionSpec {
    /// Spec over the standard uniform deployment `points_seed` with
    /// connection `radius`.
    pub fn new(points_seed: u64, radius: f64, model: MotionModel) -> MotionSpec {
        MotionSpec { points_seed, radius, model }
    }

    /// The radius graph over the initial deployment for `n` nodes — the
    /// graph a run under this spec must start from (it equals
    /// `random_geometric(n, radius, points_seed)`).
    pub fn initial_graph(&self, n: usize) -> Graph {
        graphs::generators::geometric::geometric_from_points(
            &random_points(n, self.points_seed),
            self.radius,
        )
    }
}

/// The serializable mid-flight state of a [`DynamicTopology`]: positions,
/// per-node mobility state and the motion-RNG stream position. Captured by
/// [`DynamicTopology::state`], restored by [`DynamicTopology::from_state`];
/// the radius graph is derived state and is never part of it.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionState {
    /// Current node positions.
    pub positions: Vec<(f64, f64)>,
    /// Random-waypoint targets (empty under drift).
    pub waypoints: Vec<(f64, f64)>,
    /// Remaining pause rounds per node (empty under drift).
    pub pauses: Vec<u64>,
    /// Headings in radians (empty under random waypoint).
    pub headings: Vec<f64>,
    /// Raw motion-RNG stream position (see [`crate::rng::pcg_state`]).
    pub rng_state: u128,
}

/// A mobility process bound to a dedicated RNG stream, ready to keep a
/// [`Simulator`] synchronized with the moving radius graph.
#[derive(Debug, Clone)]
pub struct DynamicTopology {
    motion: Motion,
    rng: Pcg64Mcg,
}

impl DynamicTopology {
    /// Builds the deployment described by `spec` for `n` nodes; the
    /// mobility stream is derived from `master_seed` under
    /// [`MOTION_RNG_PURPOSE`].
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] if the spec's radius or model
    /// parameters are out of range.
    pub fn new(
        n: usize,
        spec: &MotionSpec,
        master_seed: u64,
    ) -> Result<DynamicTopology, GraphError> {
        Self::from_points(random_points(n, spec.points_seed), spec.radius, spec.model, master_seed)
    }

    /// Builds a deployment over explicit `points` (unit-square
    /// coordinates) — the proptest/known-deployment entry point.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] as for [`Motion::new`].
    pub fn from_points(
        points: Vec<(f64, f64)>,
        radius: f64,
        model: MotionModel,
        master_seed: u64,
    ) -> Result<DynamicTopology, GraphError> {
        let mut rng = aux_rng(master_seed, MOTION_RNG_PURPOSE);
        let motion = Motion::new(points, radius, model, &mut rng)?;
        Ok(DynamicTopology { motion, rng })
    }

    /// The radius graph over the current positions — the graph a run over
    /// this deployment starts from (all nodes active).
    pub fn graph(&self) -> &Graph {
        self.motion.graph()
    }

    /// The underlying mobility process (positions, model, radius).
    pub fn motion(&self) -> &Motion {
        &self.motion
    }

    /// One round of topology dynamics: steps the mobility process, then
    /// reconciles `sim`'s edge set against the new radius graph — edges
    /// between two *active* nodes that the radius graph warrants are added,
    /// simulator edges the radius graph no longer warrants (or that touch a
    /// departed node) are removed, all in one batched update. Returns
    /// `(added, removed)` edge counts.
    pub fn advance<P: BeepingProtocol>(&mut self, sim: &mut Simulator<'_, P>) -> (usize, usize) {
        self.motion.step(&mut self.rng);
        let (added, removed) = {
            let desired = self.motion.graph();
            let current = sim.graph();
            debug_assert_eq!(desired.len(), current.len());
            let mut added: Vec<(NodeId, NodeId)> = Vec::new();
            let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
            for u in 0..current.len() {
                let want = if sim.is_active(u) { desired.neighbors(u) } else { &[] };
                let have = current.neighbors(u);
                let (mut wi, mut hi) = (0usize, 0usize);
                while wi < want.len() || hi < have.len() {
                    // Merge the sorted adjacency slices; count each edge
                    // once via the u < v orientation.
                    let take_want = match (want.get(wi), have.get(hi)) {
                        (Some(&w), Some(&h)) => w <= h,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if take_want {
                        let w = want[wi] as usize;
                        wi += 1;
                        if hi < have.len() && have[hi] as usize == w {
                            hi += 1; // present on both sides
                        } else if sim.is_active(w) && u < w {
                            added.push((u, w));
                        }
                        // An inactive endpoint: the edge is withheld until
                        // the node rejoins — neither added nor an error.
                    } else {
                        let h = have[hi] as usize;
                        hi += 1;
                        if u < h {
                            removed.push((u, h));
                        }
                    }
                }
            }
            (added, removed)
        };
        // Endpoints are in range by construction (motion and simulator
        // graphs share n, checked above); a rejected diff leaves the
        // topology unchanged this round rather than panicking the network.
        let applied = sim.apply_edge_diff(&added, &removed);
        debug_assert!(applied.is_ok(), "reconciliation endpoints are in range by construction");
        applied.unwrap_or((0, 0))
    }

    /// The radius neighbors of `v` at its current position, restricted to
    /// nodes `active` marks as participating — the neighbor list a node
    /// rejoining a moving deployment should come back with.
    pub fn join_neighbors(&self, v: NodeId, active: &[bool]) -> Vec<NodeId> {
        self.motion
            .graph()
            .neighbors(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| active[u])
            .collect()
    }

    /// Captures the serializable mid-flight state (see [`MotionState`]).
    pub fn state(&self) -> MotionState {
        MotionState {
            positions: self.motion.positions().to_vec(),
            waypoints: self.motion.waypoints().to_vec(),
            pauses: self.motion.pauses().to_vec(),
            headings: self.motion.headings().to_vec(),
            rng_state: pcg_state(&self.rng),
        }
    }

    /// Rebuilds a mid-flight deployment from a captured [`MotionState`]
    /// under `spec` — the snapshot-resume entry point. Continuations from
    /// the rebuilt value replay the original trajectory bit for bit.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] if the state's vectors do not match
    /// the spec's model or the spec parameters are out of range.
    pub fn from_state(
        spec: &MotionSpec,
        state: &MotionState,
    ) -> Result<DynamicTopology, GraphError> {
        let motion = Motion::from_parts(
            spec.model,
            spec.radius,
            state.positions.clone(),
            state.waypoints.clone(),
            state.pauses.clone(),
            state.headings.clone(),
        )?;
        Ok(DynamicTopology { motion, rng: pcg_from_state(state.rng_state) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{BeepSignal, Channels};
    use rand::RngCore;

    /// Parity protocol: beep iff the counter is even; increment on hearing.
    struct Parity;
    impl BeepingProtocol for Parity {
        type State = u64;
        fn channels(&self) -> Channels {
            Channels::One
        }
        fn transmit(&self, _: NodeId, state: &u64, _: &mut dyn RngCore) -> BeepSignal {
            if state.is_multiple_of(2) {
                BeepSignal::channel1()
            } else {
                BeepSignal::silent()
            }
        }
        fn receive(
            &self,
            _: NodeId,
            state: &mut u64,
            _: BeepSignal,
            heard: BeepSignal,
            _: &mut dyn RngCore,
        ) {
            if heard.on_channel1() {
                *state += 1;
            }
        }
    }

    fn spec(speed: f64) -> MotionSpec {
        MotionSpec::new(0x600D, 0.2, MotionModel::RandomWaypoint { speed, pause: 1 })
    }

    #[test]
    fn advance_keeps_sim_graph_equal_to_radius_graph() {
        let spec = spec(0.05);
        let mut dt = DynamicTopology::new(24, &spec, 42).unwrap();
        let g0 = dt.graph().clone();
        let mut sim = Simulator::new_owned(g0, Parity, vec![0; 24], 42);
        for _ in 0..30 {
            dt.advance(&mut sim);
            assert_eq!(sim.graph(), dt.graph());
            sim.step();
        }
    }

    #[test]
    fn advance_is_deterministic_per_seed() {
        let spec = spec(0.04);
        let mut a = DynamicTopology::new(20, &spec, 7).unwrap();
        let mut b = DynamicTopology::new(20, &spec, 7).unwrap();
        let mut sa = Simulator::new_owned(a.graph().clone(), Parity, vec![0; 20], 7);
        let mut sb = Simulator::new_owned(b.graph().clone(), Parity, vec![0; 20], 7);
        for _ in 0..40 {
            assert_eq!(a.advance(&mut sa), b.advance(&mut sb));
            sa.step();
            sb.step();
            assert_eq!(sa.states(), sb.states());
        }
        // A different master seed yields a different trajectory.
        let mut c = DynamicTopology::new(20, &spec, 8).unwrap();
        let mut sc = Simulator::new_owned(c.graph().clone(), Parity, vec![0; 20], 8);
        let mut diverged = false;
        for _ in 0..40 {
            c.advance(&mut sc);
            a.advance(&mut sa);
            if sc.graph() != sa.graph() {
                diverged = true;
                break;
            }
            sc.step();
            sa.step();
        }
        assert!(diverged, "independent seeds should move nodes differently");
    }

    #[test]
    fn departed_nodes_get_no_edges_until_rejoin() {
        let spec = spec(0.03);
        let mut dt = DynamicTopology::new(16, &spec, 3).unwrap();
        let mut sim = Simulator::new_owned(dt.graph().clone(), Parity, vec![0; 16], 3);
        sim.node_leave(5).unwrap();
        for _ in 0..20 {
            dt.advance(&mut sim);
            assert_eq!(sim.graph().degree(5), 0, "departed node must stay isolated");
            sim.step();
        }
        // Rejoin with the motion-aware neighbor list: the sim graph matches
        // the active-restricted radius graph again.
        let neighbors = dt.join_neighbors(5, sim.active());
        sim.node_join(5, &neighbors, 0).unwrap();
        dt.advance(&mut sim);
        assert_eq!(sim.graph(), dt.graph());
    }

    #[test]
    fn state_round_trip_replays_identically() {
        // Twin runs with the same seed; at round 15 the second driver is
        // torn down and rebuilt from its captured state. The continuations
        // must stay bit-identical.
        let spec = spec(0.05);
        let mut dt = DynamicTopology::new(18, &spec, 11).unwrap();
        let mut twin = DynamicTopology::new(18, &spec, 11).unwrap();
        let mut sim = Simulator::new_owned(dt.graph().clone(), Parity, vec![0; 18], 11);
        let mut sim2 = Simulator::new_owned(twin.graph().clone(), Parity, vec![0; 18], 11);
        for _ in 0..15 {
            dt.advance(&mut sim);
            twin.advance(&mut sim2);
            sim.step();
            sim2.step();
        }
        let captured = twin.state();
        assert_eq!(captured, dt.state());
        let mut resumed = DynamicTopology::from_state(&spec, &captured).unwrap();
        assert_eq!(resumed.graph(), dt.graph());
        for _ in 0..15 {
            assert_eq!(dt.advance(&mut sim), resumed.advance(&mut sim2));
            sim.step();
            sim2.step();
            assert_eq!(sim.states(), sim2.states());
            assert_eq!(sim.graph(), sim2.graph());
        }
    }

    #[test]
    fn from_state_rejects_mismatched_model() {
        let dt = DynamicTopology::new(8, &spec(0.05), 1).unwrap();
        let state = dt.state();
        let drift = MotionSpec::new(0x600D, 0.2, MotionModel::Drift { speed: 0.05, turn: 0.3 });
        assert!(DynamicTopology::from_state(&drift, &state).is_err());
    }
}
