//! Resilient run harness for long experiments: durable checkpoint/resume,
//! supervised budgets, panic isolation and a crash-injection test rig.
//!
//! The paper's experiments (PERF/SCALE sweeps, Byzantine containment
//! scans) can run for hours; before this crate, a crash at round ten
//! million lost everything. The harness closes that gap in three layers:
//!
//! - [`snapshot`] — a versioned, checksummed, two-line JSON file format
//!   for [`mis::resumable::RunCheckpoint`]: every RNG stream position,
//!   the churned topology, the participation bitmap, the channel window,
//!   the event cursor and the accumulated trace. Loading never panics;
//!   every defect is a typed [`snapshot::SnapshotError`]. A configuration
//!   fingerprint refuses to resume a snapshot under different plans.
//! - [`supervisor`] — drives a [`mis::resumable::ResumableRun`] in
//!   checkpoint-aligned chunks under [`std::panic::catch_unwind`], with a
//!   round budget, a [`telemetry::Stopwatch`] wall-clock watchdog,
//!   periodic durable snapshots and bounded retry-with-resume; ends in a
//!   typed [`supervisor::RunOutcome`].
//! - [`crash`] — the test rig: kill a run at an exact round, resume it
//!   from disk, and compare bit-for-bit against an uninterrupted run;
//!   plus file-corruption helpers for the snapshot-integrity suites.
//!
//! ```
//! use graphs::generators::random;
//! use harness::supervisor::{supervise, RunOutcome, SupervisorConfig};
//! use mis::resumable::ResumableConfig;
//! use mis::{Algorithm1, LmaxPolicy};
//!
//! let g = random::gnp(64, 0.1, 3);
//! let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
//! let outcome = supervise(&g, &algo, ResumableConfig::new(3), &SupervisorConfig::new());
//! assert!(matches!(outcome, Ok(RunOutcome::Completed(_))));
//! ```

pub mod crash;
pub mod snapshot;
pub mod supervisor;

pub use crash::{flip_bit, killed_then_resumed, truncate_file, KillReport};
pub use snapshot::{config_fingerprint, SnapshotError};
pub use supervisor::{supervise, supervise_resume, RunOutcome, SupervisorConfig, SupervisorError};
