//! Durable, versioned, checksummed snapshot files for
//! [`mis::resumable::RunCheckpoint`].
//!
//! # File format (version 1)
//!
//! A snapshot is two newline-terminated JSON lines:
//!
//! ```text
//! {"format":"beeping-mis-snapshot","version":1,"payload_bytes":N,"checksum":"<hex>"}
//! {"fingerprint":"<hex>","round":R,"states":[...],"rngs":"<hex...>", ...}
//! ```
//!
//! The bulk vectors use compact encodings, because a snapshot is written
//! every k rounds on the supervisor's critical path: `rngs` is one string
//! of concatenated fixed-width 32-digit hex states, `active` is one string
//! of `0`/`1` digits, and `graph_edges` is a flat `[u,v,u,v,...]` array.
//!
//! The header is self-describing and guards the payload: `payload_bytes` is
//! the exact byte length of the second line (detecting truncation) and
//! `checksum` is [`checksum64`] — a word-wise FNV-1a variant — over those
//! bytes (detecting corruption). The
//! payload captures *everything mutable* about a run — node states, every
//! RNG stream position (per-node, channel, Byzantine, fault), the round
//! counter, last-round signals, the (possibly churned) topology, the
//! participation bitmap, the channel burst window, the event-application
//! cursor and the accumulated trace — so a resumed run is bit-identical to
//! one that never stopped. A moving deployment
//! ([`mis::resumable::ResumableConfig::with_motion`]) additionally writes
//! the `motion_*` fields: node positions, per-model waypoint/pause/heading
//! state and the motion-RNG stream position. Every `f64` travels as its
//! exact `to_bits` value in fixed-width 16-digit hex, so geometry survives
//! the round trip bit-for-bit; the fields are simply absent for motionless
//! runs, which keeps their snapshots byte-identical to earlier builds.
//!
//! Run *configuration* (plans, channel model, engine, algorithm) is
//! deliberately not stored; the caller re-supplies it on resume, and the
//! payload's `fingerprint` field ([`config_fingerprint`]) rejects a resume
//! under a different configuration with [`SnapshotError::ConfigMismatch`].
//!
//! Every integer wider than 53 bits (RNG stream positions are `u128`, the
//! checksum and fingerprint are `u64`) is encoded as a fixed-width
//! lowercase hex *string*, because the JSON layer
//! ([`telemetry::jsonl`]) parses numbers as `f64` and would silently lose
//! low bits past 2⁵³.
//!
//! The load path ([`decode`], [`read_file`]) never panics: every defect —
//! missing file, garbage bytes, truncation, bit flips, version skew,
//! internally inconsistent vectors — surfaces as a typed [`SnapshotError`].

use std::path::{Path, PathBuf};

use beeping::dynamic::MotionState;
use beeping::protocol::BeepSignal;
use beeping::rng::{pcg_from_state, pcg_state};
use beeping::trace::{RoundReport, Trace};
use beeping::{ChannelState, Checkpoint};
use graphs::Graph;
use mis::levels::Level;
use mis::resumable::{ResumableConfig, RunCheckpoint};
use mis::runner::SelfStabilizingMis;
use rand_pcg::Pcg64Mcg;
use telemetry::jsonl::{parse, Value};

/// The magic format string in every snapshot header.
pub const FORMAT: &str = "beeping-mis-snapshot";

/// The snapshot format version this build writes and accepts.
pub const VERSION: u64 = 1;

/// Why a snapshot could not be written or read back. The decode path
/// distinguishes *where* a file went wrong so supervisors and tests can
/// react precisely (e.g. discard a corrupt snapshot but surface an I/O
/// error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error rendered as text.
        message: String,
    },
    /// The bytes before the first newline are not a valid header object.
    MalformedHeader(String),
    /// The header parses but announces a different format magic.
    WrongFormat {
        /// The `format` value found in the header.
        found: String,
    },
    /// The header announces a format version this build does not read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u64,
        /// The version this build supports.
        supported: u64,
    },
    /// The payload is shorter or longer than the header promised — the
    /// classic signature of a crash mid-write or a truncated copy.
    Truncated {
        /// Byte length promised by the header.
        expected_bytes: usize,
        /// Byte length actually present.
        found_bytes: usize,
    },
    /// The payload bytes do not hash to the header's checksum: the file
    /// was corrupted after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The payload passed the checksum but is not the JSON shape this
    /// version writes (only reachable for a file *assembled* by something
    /// other than [`encode`], since the checksum pins the exact bytes).
    MalformedPayload(String),
    /// The snapshot was captured under a different run configuration
    /// (different seed, plans, channel model, engine or algorithm);
    /// resuming it would silently diverge, so it is refused.
    ConfigMismatch {
        /// Fingerprint of the configuration the caller supplied.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, message } => {
                write!(f, "snapshot I/O error on {}: {message}", path.display())
            }
            SnapshotError::MalformedHeader(detail) => {
                write!(f, "malformed snapshot header: {detail}")
            }
            SnapshotError::WrongFormat { found } => {
                write!(f, "not a {FORMAT} file (format says {found:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot version {found} not supported (this build reads {supported})")
            }
            SnapshotError::Truncated { expected_bytes, found_bytes } => write!(
                f,
                "snapshot truncated: header promises {expected_bytes} payload bytes, \
                 found {found_bytes}"
            ),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot corrupted: checksum {actual:016x} does not match header {expected:016x}"
            ),
            SnapshotError::MalformedPayload(detail) => {
                write!(f, "malformed snapshot payload: {detail}")
            }
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different run configuration: \
                 fingerprint {found:016x}, expected {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over `bytes`; the fingerprint and digest hash. Chosen
/// because it is tiny, dependency-free and fully deterministic across
/// platforms — this guards against *accidental* corruption, not attackers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Payload-integrity hash: the FNV-1a update rule fed 8 little-endian
/// bytes at a time, with a final zero-padded tail word and a length step.
/// Every step is invertible (xor, then multiply by an odd constant), so
/// corrupting any single word — a fortiori any single bit — always changes
/// the result. Byte-serial [`fnv1a64`] has the same guarantee but costs
/// more than encoding the payload does at megabyte snapshot sizes; this
/// variant keeps checkpointing cheap enough to leave on for long runs.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(PRIME);
    }
    let mut tail = [0u8; 8];
    for (slot, &b) in tail.iter_mut().zip(chunks.remainder()) {
        *slot = b;
    }
    hash ^= u64::from_le_bytes(tail);
    hash = hash.wrapping_mul(PRIME);
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(PRIME)
}

/// Hashes the *resume-relevant* part of a run configuration, plus the
/// algorithm type, into the fingerprint stored in every snapshot.
///
/// Covered: seed, initial-level rule, fault plan, churn plan, channel
/// model, Byzantine plan, motion spec and engine mode, plus the
/// algorithm's type name.
/// Deliberately *not* covered: `max_rounds` (extending the budget of a
/// `BudgetExhausted` run and resuming is a supported use) and the
/// telemetry handle (observational only). The hash is over the plans'
/// `Debug` rendering, which is a pure function of their fields; a
/// `Resurrect` Byzantine closure renders opaquely, so two configs
/// differing only in closure *behavior* fingerprint alike.
pub fn config_fingerprint<A: SelfStabilizingMis>(config: &ResumableConfig) -> u64 {
    let canonical = format!(
        "algo={};seed={};init={:?};faults={:?};churn={:?};channel={:?};byzantine={:?};\
         engine={:?};motion={:?}",
        std::any::type_name::<A>(),
        config.seed,
        config.init,
        config.faults,
        config.churn,
        config.channel,
        config.byzantine,
        config.engine,
        config.motion,
    );
    fnv1a64(canonical.as_bytes())
}

fn hex_u64(v: u64) -> String {
    format!("{v:016x}")
}

fn hex_u128(v: u128) -> String {
    format!("{v:032x}")
}

fn parse_hex_u64(s: &str, what: &str) -> Result<u64, SnapshotError> {
    if s.len() != 16 {
        return Err(SnapshotError::MalformedPayload(format!("{what}: expected 16 hex digits")));
    }
    u64::from_str_radix(s, 16)
        .map_err(|_| SnapshotError::MalformedPayload(format!("{what}: invalid hex")))
}

fn parse_hex_u128(s: &str, what: &str) -> Result<u128, SnapshotError> {
    if s.len() != 32 {
        return Err(SnapshotError::MalformedPayload(format!("{what}: expected 32 hex digits")));
    }
    u128::from_str_radix(s, 16)
        .map_err(|_| SnapshotError::MalformedPayload(format!("{what}: invalid hex")))
}

fn signal_bits(s: BeepSignal) -> u8 {
    u8::from(s.on_channel1()) | (u8::from(s.on_channel2()) << 1)
}

/// Appends `v` in decimal. Snapshots are re-encoded at every checkpoint
/// cadence, so the per-element paths push raw bytes (no `format!`, no
/// UTF-8 bookkeeping) to keep supervision overhead low.
fn push_u64_dec(out: &mut Vec<u8>, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut len = 0usize;
    for slot in digits.iter_mut() {
        *slot = b'0' + (v % 10) as u8;
        len += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &d in digits.iter().take(len).rev() {
        out.push(d);
    }
}

/// Appends `v` in decimal, with a sign for negative values.
fn push_i64_dec(out: &mut Vec<u8>, v: i64) {
    if v < 0 {
        out.push(b'-');
    }
    push_u64_dec(out, v.unsigned_abs());
}

/// Appends `v` as exactly 32 lowercase hex digits (the RNG-state encoding).
fn push_hex_u128(out: &mut Vec<u8>, v: u128) {
    for shift in (0..32u32).rev() {
        let nibble = ((v >> (shift * 4)) & 0xf) as u8;
        out.push(if nibble < 10 { b'0' + nibble } else { b'a' + nibble - 10 });
    }
}

/// Appends `v` as its `to_bits` value in exactly 16 lowercase hex digits —
/// the motion-geometry encoding. Decimal rendering would round; the bit
/// pattern restores the exact coordinate, NaN payloads and signed zeros
/// included.
fn push_hex_f64(out: &mut Vec<u8>, v: f64) {
    let bits = v.to_bits();
    for shift in (0..16u32).rev() {
        let nibble = ((bits >> (shift * 4)) & 0xf) as u8;
        out.push(if nibble < 10 { b'0' + nibble } else { b'a' + nibble - 10 });
    }
}

/// Parses a concatenation of fixed-width 16-digit hex `f64` bit patterns.
fn parse_f64_list(s: &str, what: &str) -> Result<Vec<f64>, SnapshotError> {
    if !s.len().is_multiple_of(16) {
        return Err(bad(&format!("`{what}` must be a concatenation of 16-digit hex f64 bits")));
    }
    s.as_bytes()
        .chunks_exact(16)
        .map(|chunk| {
            let t = std::str::from_utf8(chunk)
                .map_err(|_| bad(&format!("`{what}` must be ASCII hex digits")))?;
            Ok(f64::from_bits(parse_hex_u64(t, what)?))
        })
        .collect()
}

/// Parses an `(x, y)` point list from the flat hex `f64` encoding.
fn parse_point_list(s: &str, what: &str) -> Result<Vec<(f64, f64)>, SnapshotError> {
    let flat = parse_f64_list(s, what)?;
    if flat.len() % 2 != 0 {
        return Err(bad(&format!("`{what}` must hold an even number of coordinates")));
    }
    let xs = flat.iter().copied().step_by(2);
    let ys = flat.iter().copied().skip(1).step_by(2);
    Ok(xs.zip(ys).collect())
}

/// Serializes `checkpoint` (stamped with `fingerprint`) into the two-line
/// snapshot format. The output always round-trips through [`decode`].
pub fn encode(checkpoint: &RunCheckpoint, fingerprint: u64) -> Vec<u8> {
    let payload = encode_payload(checkpoint, fingerprint);
    let header = format!(
        "{{\"format\":\"{FORMAT}\",\"version\":{VERSION},\
         \"payload_bytes\":{},\"checksum\":\"{}\"}}",
        payload.len(),
        hex_u64(checksum64(&payload)),
    );
    let mut out = Vec::with_capacity(header.len() + payload.len() + 2);
    out.extend_from_slice(header.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&payload);
    out.push(b'\n');
    out
}

fn push_joined<T, F: FnMut(&mut Vec<u8>, &T)>(out: &mut Vec<u8>, items: &[T], mut one: F) {
    out.push(b'[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        one(out, item);
    }
    out.push(b']');
}

fn encode_payload(checkpoint: &RunCheckpoint, fingerprint: u64) -> Vec<u8> {
    let sim = &checkpoint.sim;
    // States + signals + rngs + edges + trace, each a handful of bytes per
    // element; sized generously up front so the hot pushes never realloc.
    let n = sim.states().len();
    let edges: Vec<(usize, usize)> = sim.graph().edges().collect();
    let trace_rows = checkpoint.trace.reports().len();
    let mut s: Vec<u8> = Vec::with_capacity(256 + 48 * n + 14 * edges.len() + 40 * trace_rows);
    s.push(b'{');
    s.extend_from_slice(format!("\"fingerprint\":\"{}\"", hex_u64(fingerprint)).as_bytes());
    s.extend_from_slice(format!(",\"round\":{}", sim.round()).as_bytes());
    s.extend_from_slice(b",\"states\":");
    push_joined(&mut s, sim.states(), |out, &l| push_i64_dec(out, i64::from(l)));
    s.extend_from_slice(b",\"rngs\":\"");
    for r in sim.rngs() {
        push_hex_u128(&mut s, pcg_state(r));
    }
    s.push(b'"');
    s.extend_from_slice(b",\"sent\":");
    push_joined(&mut s, sim.sent(), |out, &b| out.push(b'0' + signal_bits(b)));
    s.extend_from_slice(b",\"heard\":");
    push_joined(&mut s, sim.heard(), |out, &b| out.push(b'0' + signal_bits(b)));
    s.extend_from_slice(format!(",\"graph_n\":{}", sim.graph().len()).as_bytes());
    s.extend_from_slice(b",\"graph_edges\":");
    push_joined(&mut s, &edges, |out, &(u, v)| {
        push_u64_dec(out, u as u64);
        out.push(b',');
        push_u64_dec(out, v as u64);
    });
    s.extend_from_slice(b",\"active\":\"");
    for &a in sim.active() {
        s.push(if a { b'1' } else { b'0' });
    }
    s.push(b'"');
    s.extend_from_slice(
        format!(",\"channel_in_burst\":{}", sim.channel_state().in_burst).as_bytes(),
    );
    s.extend_from_slice(
        format!(",\"channel_rng\":\"{}\"", hex_u128(pcg_state(sim.channel_rng()))).as_bytes(),
    );
    s.extend_from_slice(
        format!(",\"byz_rng\":\"{}\"", hex_u128(pcg_state(sim.byz_rng()))).as_bytes(),
    );
    s.extend_from_slice(
        format!(",\"fault_rng\":\"{}\"", hex_u128(pcg_state(&checkpoint.fault_rng))).as_bytes(),
    );
    match checkpoint.applied_through {
        Some(r) => s.extend_from_slice(format!(",\"applied_through\":{r}").as_bytes()),
        None => s.extend_from_slice(b",\"applied_through\":null"),
    }
    s.extend_from_slice(b",\"trace\":");
    push_joined(&mut s, checkpoint.trace.reports(), |out, r| {
        out.push(b'[');
        push_u64_dec(out, r.round);
        for count in [
            r.beeps_channel1,
            r.beeps_channel2,
            r.hearers_channel1,
            r.hearers_channel2,
            r.lone_beepers,
            r.lone_beepers_channel2,
        ] {
            out.push(b',');
            push_u64_dec(out, count as u64);
        }
        out.push(b']');
    });
    if let Some(motion) = &checkpoint.motion {
        s.extend_from_slice(b",\"motion_positions\":\"");
        for &(x, y) in &motion.positions {
            push_hex_f64(&mut s, x);
            push_hex_f64(&mut s, y);
        }
        s.push(b'"');
        s.extend_from_slice(b",\"motion_waypoints\":\"");
        for &(x, y) in &motion.waypoints {
            push_hex_f64(&mut s, x);
            push_hex_f64(&mut s, y);
        }
        s.push(b'"');
        s.extend_from_slice(b",\"motion_pauses\":");
        push_joined(&mut s, &motion.pauses, |out, &p| push_u64_dec(out, p));
        s.extend_from_slice(b",\"motion_headings\":\"");
        for &h in &motion.headings {
            push_hex_f64(&mut s, h);
        }
        s.push(b'"');
        s.extend_from_slice(
            format!(",\"motion_rng\":\"{}\"", hex_u128(motion.rng_state)).as_bytes(),
        );
    }
    s.push(b'}');
    s
}

fn bad(what: &str) -> SnapshotError {
    SnapshotError::MalformedPayload(what.to_string())
}

fn field<'a>(obj: &'a Value, key: &'static str) -> Result<&'a Value, SnapshotError> {
    obj.get(key).ok_or_else(|| bad(&format!("missing field `{key}`")))
}

fn u64_field(obj: &Value, key: &'static str) -> Result<u64, SnapshotError> {
    field(obj, key)?.as_u64().ok_or_else(|| bad(&format!("`{key}` is not a non-negative integer")))
}

fn str_field<'a>(obj: &'a Value, key: &'static str) -> Result<&'a str, SnapshotError> {
    field(obj, key)?.as_str().ok_or_else(|| bad(&format!("`{key}` is not a string")))
}

fn array_field<'a>(obj: &'a Value, key: &'static str) -> Result<&'a [Value], SnapshotError> {
    field(obj, key)?.as_array().ok_or_else(|| bad(&format!("`{key}` is not an array")))
}

fn rng_field(obj: &Value, key: &'static str) -> Result<Pcg64Mcg, SnapshotError> {
    Ok(pcg_from_state(parse_hex_u128(str_field(obj, key)?, key)?))
}

fn decode_signal(v: &Value, key: &str) -> Result<BeepSignal, SnapshotError> {
    match v.as_u64() {
        Some(bits @ 0..=3) => Ok(BeepSignal::new(bits & 1 != 0, bits & 2 != 0)),
        _ => Err(bad(&format!("`{key}` entries must be integers in 0..=3"))),
    }
}

fn usize_in(v: &Value, key: &str) -> Result<usize, SnapshotError> {
    v.as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| bad(&format!("`{key}` entries must be non-negative integers")))
}

/// Deserializes snapshot `bytes`, verifying the header, the payload length
/// and checksum, and the configuration fingerprint — in that order, so the
/// reported error names the *first* layer that is wrong. Never panics.
pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<RunCheckpoint, SnapshotError> {
    let mut halves = bytes.splitn(2, |&b| b == b'\n');
    let header_bytes = halves.next().unwrap_or_default();
    let rest = halves
        .next()
        .ok_or_else(|| SnapshotError::MalformedHeader("no header line".to_string()))?;
    let header_text = std::str::from_utf8(header_bytes)
        .map_err(|_| SnapshotError::MalformedHeader("header is not UTF-8".to_string()))?;
    let header =
        parse(header_text).map_err(|e| SnapshotError::MalformedHeader(format!("not JSON: {e}")))?;

    let format = header
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| SnapshotError::MalformedHeader("missing `format`".to_string()))?;
    if format != FORMAT {
        return Err(SnapshotError::WrongFormat { found: format.to_string() });
    }
    let version = header
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| SnapshotError::MalformedHeader("missing `version`".to_string()))?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let payload_bytes = header
        .get("payload_bytes")
        .and_then(Value::as_u64)
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| SnapshotError::MalformedHeader("missing `payload_bytes`".to_string()))?;
    let checksum = header
        .get("checksum")
        .and_then(Value::as_str)
        .ok_or_else(|| SnapshotError::MalformedHeader("missing `checksum`".to_string()))
        .and_then(|s| {
            parse_hex_u64(s, "checksum")
                .map_err(|_| SnapshotError::MalformedHeader("bad `checksum` hex".to_string()))
        })?;

    // The payload is everything after the header's newline, minus one
    // optional trailing newline.
    let payload = rest.strip_suffix(b"\n").unwrap_or(rest);
    if payload.len() != payload_bytes {
        return Err(SnapshotError::Truncated {
            expected_bytes: payload_bytes,
            found_bytes: payload.len(),
        });
    }
    let actual = checksum64(payload);
    if actual != checksum {
        return Err(SnapshotError::ChecksumMismatch { expected: checksum, actual });
    }

    let payload_text = std::str::from_utf8(payload)
        .map_err(|_| SnapshotError::MalformedPayload("payload is not UTF-8".to_string()))?;
    let obj = parse(payload_text).map_err(|e| bad(&format!("not JSON: {e}")))?;

    let fingerprint = parse_hex_u64(str_field(&obj, "fingerprint")?, "fingerprint")?;
    if fingerprint != expected_fingerprint {
        return Err(SnapshotError::ConfigMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }

    let round = u64_field(&obj, "round")?;
    let states: Vec<Level> = array_field(&obj, "states")?
        .iter()
        .map(|v| {
            v.as_i64()
                .and_then(|x| Level::try_from(x).ok())
                .ok_or_else(|| bad("`states` entries must be 32-bit integers"))
        })
        .collect::<Result<_, _>>()?;
    let rng_hex = str_field(&obj, "rngs")?;
    if rng_hex.len() % 32 != 0 {
        return Err(bad("`rngs` must be a concatenation of 32-digit hex states"));
    }
    let rngs: Vec<Pcg64Mcg> = rng_hex
        .as_bytes()
        .chunks_exact(32)
        .map(|chunk| {
            // A chunk boundary can split a multi-byte character in a
            // corrupted file; that is a decode error, not a panic.
            let s =
                std::str::from_utf8(chunk).map_err(|_| bad("`rngs` must be ASCII hex digits"))?;
            Ok(pcg_from_state(parse_hex_u128(s, "rngs")?))
        })
        .collect::<Result<_, SnapshotError>>()?;
    let sent: Vec<BeepSignal> = array_field(&obj, "sent")?
        .iter()
        .map(|v| decode_signal(v, "sent"))
        .collect::<Result<_, _>>()?;
    let heard: Vec<BeepSignal> = array_field(&obj, "heard")?
        .iter()
        .map(|v| decode_signal(v, "heard"))
        .collect::<Result<_, _>>()?;

    let graph_n = u64_field(&obj, "graph_n")
        .ok()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| bad("`graph_n` is not a non-negative integer"))?;
    let endpoints = array_field(&obj, "graph_edges")?;
    if endpoints.len() % 2 != 0 {
        return Err(bad("`graph_edges` must hold an even number of endpoints"));
    }
    let edges: Vec<(usize, usize)> = endpoints
        .chunks_exact(2)
        .map(|pair| {
            let [u, w] = pair else {
                return Err(bad("`graph_edges` entries must be pairs"));
            };
            Ok((usize_in(u, "graph_edges")?, usize_in(w, "graph_edges")?))
        })
        .collect::<Result<_, SnapshotError>>()?;
    let graph = Graph::from_edges(graph_n, edges).map_err(|e| bad(&format!("graph: {e}")))?;

    let active: Vec<bool> = str_field(&obj, "active")?
        .bytes()
        .map(|b| match b {
            b'0' => Ok(false),
            b'1' => Ok(true),
            _ => Err(bad("`active` must be a string of 0/1 digits")),
        })
        .collect::<Result<_, _>>()?;
    let in_burst = field(&obj, "channel_in_burst")?
        .as_bool()
        .ok_or_else(|| bad("`channel_in_burst` is not a boolean"))?;
    let channel_rng = rng_field(&obj, "channel_rng")?;
    let byz_rng = rng_field(&obj, "byz_rng")?;
    let fault_rng = rng_field(&obj, "fault_rng")?;
    let applied_through = match field(&obj, "applied_through")? {
        Value::Null => None,
        v => Some(v.as_u64().ok_or_else(|| bad("`applied_through` must be null or an integer"))?),
    };

    let mut trace = Trace::new();
    for row in array_field(&obj, "trace")? {
        let cells = row.as_array().ok_or_else(|| bad("`trace` rows must be arrays"))?;
        let [round, b1, b2, h1, h2, lone, lone2] = cells else {
            return Err(bad("`trace` rows must have 7 entries"));
        };
        trace.push(RoundReport {
            round: round.as_u64().ok_or_else(|| bad("`trace` round must be an integer"))?,
            beeps_channel1: usize_in(b1, "trace")?,
            beeps_channel2: usize_in(b2, "trace")?,
            hearers_channel1: usize_in(h1, "trace")?,
            hearers_channel2: usize_in(h2, "trace")?,
            lone_beepers: usize_in(lone, "trace")?,
            lone_beepers_channel2: usize_in(lone2, "trace")?,
        });
    }

    // The motion fields travel as a block: all five present (a moving
    // deployment) or all five absent (a static one). A file with only some
    // of them was not produced by `encode` and is rejected field-by-field.
    let motion = if obj.get("motion_rng").is_some() {
        let positions = parse_point_list(str_field(&obj, "motion_positions")?, "motion_positions")?;
        let waypoints = parse_point_list(str_field(&obj, "motion_waypoints")?, "motion_waypoints")?;
        let pauses: Vec<u64> = array_field(&obj, "motion_pauses")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| bad("`motion_pauses` entries must be non-negative integers"))
            })
            .collect::<Result<_, _>>()?;
        let headings = parse_f64_list(str_field(&obj, "motion_headings")?, "motion_headings")?;
        let rng_state = parse_hex_u128(str_field(&obj, "motion_rng")?, "motion_rng")?;
        Some(MotionState { positions, waypoints, pauses, headings, rng_state })
    } else {
        None
    };

    Ok(RunCheckpoint {
        sim: Checkpoint::from_parts(
            states,
            rngs,
            round,
            sent,
            heard,
            graph,
            active,
            ChannelState { in_burst },
            channel_rng,
            byz_rng,
        ),
        fault_rng,
        applied_through,
        trace,
        motion,
    })
}

fn io_err(path: &Path, e: std::io::Error) -> SnapshotError {
    SnapshotError::Io { path: path.to_path_buf(), message: e.to_string() }
}

/// Atomically writes `checkpoint` to `path`: the bytes go to a `.tmp`
/// sibling first and are renamed into place, so a crash mid-write leaves
/// either the previous snapshot or none — never a half-written file
/// masquerading as a snapshot.
pub fn write_file(
    path: &Path,
    checkpoint: &RunCheckpoint,
    fingerprint: u64,
) -> Result<(), SnapshotError> {
    let bytes = encode(checkpoint, fingerprint);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Reads and verifies a snapshot from `path`; see [`decode`] for the
/// verification order. Never panics.
pub fn read_file(path: &Path, expected_fingerprint: u64) -> Result<RunCheckpoint, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    decode(&bytes, expected_fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_round_trips() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(parse_hex_u64(&hex_u64(v), "t").unwrap(), v);
        }
        for v in [0u128, 1, u128::MAX, 0x0123_4567_89ab_cdef_u128 << 64] {
            assert_eq!(parse_hex_u128(&hex_u128(v), "t").unwrap(), v);
        }
        assert!(parse_hex_u64("xyz", "t").is_err());
        assert!(parse_hex_u128(&"f".repeat(31), "t").is_err());
    }

    #[test]
    fn manual_pushers_match_format() {
        for v in [0u64, 1, 9, 10, 42, 1023, u64::MAX] {
            let mut s = Vec::new();
            push_u64_dec(&mut s, v);
            assert_eq!(String::from_utf8(s).unwrap(), v.to_string());
        }
        for v in [0i64, -1, 7, -42, i64::MIN, i64::MAX] {
            let mut s = Vec::new();
            push_i64_dec(&mut s, v);
            assert_eq!(String::from_utf8(s).unwrap(), v.to_string());
        }
        for v in [0u128, 1, u128::MAX, 0xdead_beef] {
            let mut s = Vec::new();
            push_hex_u128(&mut s, v);
            assert_eq!(String::from_utf8(s).unwrap(), hex_u128(v));
        }
    }

    #[test]
    fn checksum64_detects_single_bit_flips_and_length() {
        // Invertibility argument made concrete: flip each bit of a couple
        // of payloads (word-aligned and ragged) and require a new hash.
        for base in [&b"0123456789abcdef"[..], &b"ragged tail..."[..]] {
            let reference = checksum64(base);
            for byte in 0..base.len() {
                for bit in 0..8u8 {
                    let mut copy = base.to_vec();
                    if let Some(slot) = copy.get_mut(byte) {
                        *slot ^= 1 << bit;
                    }
                    assert_ne!(checksum64(&copy), reference, "byte {byte} bit {bit}");
                }
            }
        }
        // Zero-padding of the tail word must not collide with real zeros.
        assert_ne!(checksum64(b"abc"), checksum64(b"abc\0"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
    }

    #[test]
    fn f64_hex_round_trips_exact_bits() {
        let values = [
            0.0,
            -0.0,
            1.0,
            0.1,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
        ];
        let mut s = Vec::new();
        for &v in &values {
            push_hex_f64(&mut s, v);
        }
        let back = parse_f64_list(std::str::from_utf8(&s).unwrap(), "t").unwrap();
        assert_eq!(back.len(), values.len());
        for (&v, &b) in values.iter().zip(&back) {
            assert_eq!(v.to_bits(), b.to_bits());
        }
        // NaN payloads survive too.
        let mut s = Vec::new();
        push_hex_f64(&mut s, f64::from_bits(0x7ff8_0000_dead_beef));
        let back = parse_f64_list(std::str::from_utf8(&s).unwrap(), "t").unwrap();
        assert_eq!(back[0].to_bits(), 0x7ff8_0000_dead_beef);
        // Ragged and odd-coordinate inputs are decode errors, not panics.
        assert!(parse_f64_list("abc", "t").is_err());
        assert!(parse_point_list(&"0".repeat(16), "t").is_err());
    }

    #[test]
    fn signal_bits_cover_all_four() {
        for bits in 0u8..4 {
            let s = BeepSignal::new(bits & 1 != 0, bits & 2 != 0);
            assert_eq!(signal_bits(s), bits);
        }
    }
}
