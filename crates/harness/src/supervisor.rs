//! Supervised execution of [`mis::resumable::ResumableRun`]: round budgets,
//! a wall-clock watchdog, periodic durable checkpoints, panic isolation and
//! bounded retry-with-resume.
//!
//! The supervisor drives a run in *chunks* of ticks aligned to the
//! checkpoint cadence. Each chunk executes under
//! [`std::panic::catch_unwind`], so a panic anywhere inside the protocol,
//! the simulator or a fault/churn application is confined to the chunk: the
//! supervisor keeps the last good [`mis::resumable::RunCheckpoint`]
//! (always in memory, and
//! on disk when a checkpoint directory is configured) and can retry from it
//! up to [`SupervisorConfig::max_retries`] times. A deterministic panic
//! therefore re-fires and surfaces as [`RunOutcome::Panicked`]; a transient
//! one (the crash-injection rig's kill, which arms only once) is healed
//! invisibly, with telemetry counters as the audit trail.
//!
//! Durable snapshots are *double-buffered*: at a checkpoint boundary the
//! supervisor clones the run state (cheap, a few memcpys) and hands it to a
//! background thread that encodes and atomically writes it, while the next
//! chunk of rounds executes concurrently. The writer is joined before the
//! next write is spawned (renames land in checkpoint order) and before any
//! outcome is returned (a snapshot the supervisor advertises — including
//! the [`RunOutcome::Panicked`] resume point — is always fully durable).
//! Checkpoint overhead on the critical path is therefore the clone alone,
//! not the encode + I/O.
//!
//! Wall-clock time is measured with [`telemetry::Stopwatch`], the
//! workspace's sanctioned clock (direct `std::time::Instant` use is banned
//! by lint rule L1 outside `crates/telemetry`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use graphs::Graph;
use mis::resumable::{
    PlanError, ResumableConfig, ResumableOutcome, ResumableRun, ResumeError, RunCheckpoint,
    RunStatus,
};
use mis::runner::SelfStabilizingMis;
use telemetry::{Stopwatch, Telemetry};

use crate::snapshot::{self, config_fingerprint, SnapshotError};

/// File name of the (single, atomically overwritten) snapshot inside a
/// checkpoint directory.
pub const SNAPSHOT_FILE: &str = "checkpoint.snap";

/// The snapshot path used by a supervisor configured with `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Default tick-chunk size when no checkpoint cadence is configured: small
/// enough that the wall-clock watchdog stays responsive, large enough that
/// `catch_unwind` overhead vanishes.
const DEFAULT_CHUNK: u64 = 256;

/// Knobs of the supervisor, orthogonal to the run configuration itself.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Write a durable snapshot every this many rounds (and once at round
    /// 0, so a resume point always exists). `None` disables periodic
    /// checkpoints; an in-memory checkpoint is still kept for retries.
    pub checkpoint_every: Option<u64>,
    /// Directory for durable snapshots; must exist. `None` keeps
    /// checkpoints in memory only.
    pub checkpoint_dir: Option<PathBuf>,
    /// Abort (with a final snapshot, if a directory is configured) once
    /// this much wall-clock time has elapsed.
    pub wall_clock_limit_secs: Option<f64>,
    /// How many times a panicked chunk may be retried from the last good
    /// checkpoint before giving up with [`RunOutcome::Panicked`].
    pub max_retries: u32,
    /// Supervisor telemetry (counters `harness.checkpoints_written`,
    /// `harness.panics_caught`, `harness.retries`, `harness.resumes`).
    /// Independent of the run's own telemetry handle.
    pub telemetry: Telemetry,
    /// Crash-injection rig hook: kill the run (by panic) immediately
    /// before it executes this round. Armed only on the *initial* attempt,
    /// never on retries or resumes, so it models a transient process
    /// death. `None` in production use.
    pub kill_at: Option<u64>,
}

impl SupervisorConfig {
    /// No checkpoints, no watchdog, no retries — plain panic isolation.
    pub fn new() -> SupervisorConfig {
        SupervisorConfig {
            checkpoint_every: None,
            checkpoint_dir: None,
            wall_clock_limit_secs: None,
            max_retries: 0,
            telemetry: Telemetry::disabled(),
            kill_at: None,
        }
    }

    /// Sets the durable checkpoint cadence (in rounds).
    pub fn with_checkpoint_every(mut self, rounds: u64) -> SupervisorConfig {
        self.checkpoint_every = Some(rounds.max(1));
        self
    }

    /// Sets the durable checkpoint directory.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> SupervisorConfig {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the wall-clock watchdog limit.
    pub fn with_wall_clock_limit_secs(mut self, secs: f64) -> SupervisorConfig {
        self.wall_clock_limit_secs = Some(secs);
        self
    }

    /// Sets the retry budget for panicked chunks.
    pub fn with_max_retries(mut self, retries: u32) -> SupervisorConfig {
        self.max_retries = retries;
        self
    }

    /// Attaches a supervisor telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> SupervisorConfig {
        self.telemetry = telemetry;
        self
    }

    /// Arms the crash-injection rig; see [`SupervisorConfig::kill_at`].
    pub fn with_kill_at(mut self, round: u64) -> SupervisorConfig {
        self.kill_at = Some(round);
        self
    }
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig::new()
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run stabilized; the full observables are attached.
    Completed(ResumableOutcome),
    /// The run's total round budget ran out; the observables at the budget
    /// boundary are attached (resume with a larger `max_rounds` to
    /// continue).
    BudgetExhausted(ResumableOutcome),
    /// The wall-clock watchdog fired. If a checkpoint directory was
    /// configured, `snapshot` names the durable resume point written at
    /// abort time.
    WallClockExceeded {
        /// Rounds executed when the watchdog fired.
        rounds_run: u64,
        /// The snapshot written at abort time, if any.
        snapshot: Option<PathBuf>,
    },
    /// A chunk panicked and the retry budget is exhausted.
    Panicked {
        /// The panic payload, rendered as text.
        message: String,
        /// The round of the last good checkpoint (where a manual resume
        /// would restart).
        round: u64,
        /// Retries consumed before giving up.
        retries_used: u32,
    },
    /// The snapshot a resume was asked to start from is unusable; the
    /// typed reason is attached.
    CorruptSnapshot {
        /// What was wrong with the snapshot file.
        error: SnapshotError,
    },
}

/// Errors of the supervisor *itself*, as opposed to outcomes of the
/// supervised run: a configuration invalid for the graph, a failed durable
/// write, or an in-memory checkpoint that cannot be rebuilt (a bug, but a
/// typed one).
#[derive(Debug, Clone)]
pub enum SupervisorError {
    /// The run configuration is invalid for the graph.
    Plan(PlanError),
    /// A checkpoint could not be turned back into a live run.
    Resume(ResumeError),
    /// A durable snapshot could not be written.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::Plan(e) => write!(f, "supervisor: {e}"),
            SupervisorError::Resume(e) => write!(f, "supervisor: {e}"),
            SupervisorError::Snapshot(e) => write!(f, "supervisor: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

impl From<PlanError> for SupervisorError {
    fn from(e: PlanError) -> SupervisorError {
        SupervisorError::Plan(e)
    }
}

impl From<ResumeError> for SupervisorError {
    fn from(e: ResumeError) -> SupervisorError {
        SupervisorError::Resume(e)
    }
}

impl From<SnapshotError> for SupervisorError {
    fn from(e: SnapshotError) -> SupervisorError {
        SupervisorError::Snapshot(e)
    }
}

/// Runs `algo` on `graph` under `config`, supervised by `sup`. See the
/// module docs for the execution model.
pub fn supervise<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: ResumableConfig,
    sup: &SupervisorConfig,
) -> Result<RunOutcome, SupervisorError> {
    let mut run = ResumableRun::new(graph, algo, config.clone())?;
    if let Some(round) = sup.kill_at {
        run.set_crash_before_round(Some(round));
    }
    drive(run, algo, &config, sup)
}

/// Resumes a supervised run from the durable snapshot in
/// `sup.checkpoint_dir` (or from `snapshot_file`, if given). An unusable
/// snapshot is an *outcome* ([`RunOutcome::CorruptSnapshot`]), not an
/// error: the file's state is data, not a harness bug.
pub fn supervise_resume<A: SelfStabilizingMis>(
    algo: &A,
    config: ResumableConfig,
    sup: &SupervisorConfig,
    snapshot_file: Option<&Path>,
) -> Result<RunOutcome, SupervisorError> {
    let default_path = sup.checkpoint_dir.as_deref().map(snapshot_path);
    let path = match snapshot_file.or(default_path.as_deref()) {
        Some(p) => p.to_path_buf(),
        None => {
            return Ok(RunOutcome::CorruptSnapshot {
                error: SnapshotError::Io {
                    path: PathBuf::new(),
                    message: "no snapshot path: configure a checkpoint directory or pass a file"
                        .to_string(),
                },
            })
        }
    };
    let fingerprint = config_fingerprint::<A>(&config);
    let checkpoint = match snapshot::read_file(&path, fingerprint) {
        Ok(cp) => cp,
        Err(error) => return Ok(RunOutcome::CorruptSnapshot { error }),
    };
    let run = match ResumableRun::resume(algo, config.clone(), &checkpoint) {
        Ok(run) => run,
        // A checkpoint that decodes but cannot be restored (inconsistent
        // vectors) is equally a property of the snapshot file.
        Err(ResumeError::Restore(e)) => {
            return Ok(RunOutcome::CorruptSnapshot {
                error: SnapshotError::MalformedPayload(e.to_string()),
            })
        }
        Err(e @ ResumeError::Plan(_)) => return Err(SupervisorError::Resume(e)),
    };
    drive(run, algo, &config, sup)
}

/// An in-flight background snapshot write (double-buffered checkpointing:
/// the supervisor overlaps snapshot encoding and I/O with the next chunk of
/// rounds, and joins the writer at the following boundary — by which point
/// a cadence worth of computation has long since hidden the write).
type PendingWrite = std::thread::JoinHandle<Result<(), SnapshotError>>;

/// Hands a checkpoint to a background thread for encoding and durable
/// (atomic tmp-then-rename) writing.
fn spawn_write(path: &Path, checkpoint: &RunCheckpoint, fingerprint: u64) -> PendingWrite {
    let path = path.to_path_buf();
    let cp = checkpoint.clone();
    std::thread::spawn(move || snapshot::write_file(&path, &cp, fingerprint))
}

/// Waits for the in-flight background write, if any, surfacing its result.
/// Writes are strictly serialized: the previous one is always joined before
/// the next is spawned, so renames land in checkpoint order.
fn join_write(pending: &mut Option<PendingWrite>) -> Result<(), SupervisorError> {
    match pending.take() {
        None => Ok(()),
        Some(handle) => match handle.join() {
            Ok(result) => result.map_err(SupervisorError::from),
            Err(_) => Err(SupervisorError::Snapshot(SnapshotError::Io {
                path: PathBuf::new(),
                message: "background snapshot writer panicked".to_string(),
            })),
        },
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

fn drive<A: SelfStabilizingMis>(
    mut run: ResumableRun<A>,
    algo: &A,
    config: &ResumableConfig,
    sup: &SupervisorConfig,
) -> Result<RunOutcome, SupervisorError> {
    let watch = Stopwatch::start();
    let tele = &sup.telemetry;
    let fingerprint = config_fingerprint::<A>(config);
    let file = sup.checkpoint_dir.as_deref().map(snapshot_path);
    let cadence = sup.checkpoint_every.unwrap_or(DEFAULT_CHUNK).max(1);
    let mut retries_used = 0u32;
    let mut pending: Option<PendingWrite> = None;

    let mut last_good = run.checkpoint();
    if sup.checkpoint_every.is_some() {
        if let Some(path) = &file {
            pending = Some(spawn_write(path, &last_good, fingerprint));
            tele.counter_add("harness.checkpoints_written", 1);
        }
    }

    loop {
        if let Some(limit) = sup.wall_clock_limit_secs {
            if watch.elapsed_secs() >= limit {
                join_write(&mut pending)?;
                let final_cp = run.checkpoint();
                let rounds_run = final_cp.sim.round();
                let snapshot = match &file {
                    Some(path) => {
                        snapshot::write_file(path, &final_cp, fingerprint)?;
                        tele.counter_add("harness.checkpoints_written", 1);
                        Some(path.clone())
                    }
                    None => None,
                };
                return Ok(RunOutcome::WallClockExceeded { rounds_run, snapshot });
            }
        }

        // Run up to the next checkpoint boundary under panic isolation.
        let chunk = cadence - (run.round() % cadence);
        let result = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..chunk {
                if run.tick() != RunStatus::Running {
                    break;
                }
            }
        }));

        match result {
            Ok(()) => {
                if run.status() != RunStatus::Running {
                    join_write(&mut pending)?;
                    let outcome = run.outcome().expect("a non-Running run always has an outcome");
                    return Ok(match run.status() {
                        RunStatus::Stabilized => RunOutcome::Completed(outcome),
                        _ => RunOutcome::BudgetExhausted(outcome),
                    });
                }
                last_good = run.checkpoint();
                if sup.checkpoint_every.is_some() {
                    if let Some(path) = &file {
                        join_write(&mut pending)?;
                        pending = Some(spawn_write(path, &last_good, fingerprint));
                        tele.counter_add("harness.checkpoints_written", 1);
                    }
                }
            }
            Err(payload) => {
                tele.counter_add("harness.panics_caught", 1);
                let message = panic_message(payload);
                if retries_used >= sup.max_retries {
                    // The last good snapshot must actually be durable before
                    // we advertise it as the manual resume point.
                    join_write(&mut pending)?;
                    return Ok(RunOutcome::Panicked {
                        message,
                        round: last_good.sim.round(),
                        retries_used,
                    });
                }
                retries_used += 1;
                tele.counter_add("harness.retries", 1);
                // The panicked run may be mid-round and is discarded; the
                // retry restarts from the last good checkpoint. The crash
                // rig's kill is deliberately NOT re-armed here.
                run = ResumableRun::resume(algo, config.clone(), &last_good)?;
                tele.counter_add("harness.resumes", 1);
            }
        }
    }
}
