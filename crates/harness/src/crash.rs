//! Crash-injection test rig: kill a supervised run at an exact round,
//! resume it from its durable snapshot, and hand back the outcome for
//! bit-identity comparison against an uninterrupted run. Also the
//! file-corruption helpers the snapshot-integrity tests use.
//!
//! The rig is test *infrastructure*, not test code: it lives in the
//! library so the proptest suites, the CI smoke binary and ad-hoc
//! experiments all exercise the same kill/resume path.

use std::path::Path;

use graphs::Graph;
use mis::resumable::{ResumableConfig, ResumableOutcome};
use mis::runner::SelfStabilizingMis;

use crate::supervisor::{supervise, supervise_resume, RunOutcome, SupervisorConfig};

/// How a [`killed_then_resumed`] round-trip went.
#[derive(Debug, Clone)]
pub struct KillReport {
    /// `true` if the kill actually fired (the run was still going at the
    /// kill round); `false` if the run finished first.
    pub killed: bool,
    /// The observables of the (possibly resumed) run.
    pub outcome: ResumableOutcome,
}

/// Runs `algo` on `graph` under `config`, killing the process-equivalent
/// (a panic swallowed by the supervisor with zero retries) immediately
/// before round `kill_at`, then resumes from the durable snapshot in
/// `checkpoint_dir` and drives the run to completion.
///
/// The returned outcome must be bit-identical to an uninterrupted run of
/// the same configuration — that is the property the crash proptests pin.
///
/// # Panics
///
/// Panics if the supervised phases end in an unexpected outcome (e.g. the
/// snapshot comes back corrupt); the rig is test infrastructure, and in a
/// test a broken invariant should fail loudly.
pub fn killed_then_resumed<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: ResumableConfig,
    kill_at: u64,
    checkpoint_every: u64,
    checkpoint_dir: &Path,
) -> KillReport {
    let sup = SupervisorConfig::new()
        .with_checkpoint_every(checkpoint_every)
        .with_checkpoint_dir(checkpoint_dir)
        .with_kill_at(kill_at.max(1));
    match supervise(graph, algo, config.clone(), &sup).expect("rig: valid plans") {
        RunOutcome::Completed(outcome) | RunOutcome::BudgetExhausted(outcome) => {
            // The run ended before the armed round; nothing to resume.
            KillReport { killed: false, outcome }
        }
        RunOutcome::Panicked { message, .. } => {
            assert!(message.contains("crash injection"), "unexpected panic: {message}");
            let resume_sup = SupervisorConfig::new()
                .with_checkpoint_every(checkpoint_every)
                .with_checkpoint_dir(checkpoint_dir);
            match supervise_resume(algo, config, &resume_sup, None).expect("rig: resumable") {
                RunOutcome::Completed(outcome) | RunOutcome::BudgetExhausted(outcome) => {
                    KillReport { killed: true, outcome }
                }
                other => panic!("rig: resume ended unexpectedly: {other:?}"),
            }
        }
        other => panic!("rig: initial run ended unexpectedly: {other:?}"),
    }
}

/// Flips bit `bit` (0..8) of byte `byte_index` in the file at `path`.
/// Returns `false` (leaving the file untouched) if the index is past the
/// end of the file.
pub fn flip_bit(path: &Path, byte_index: usize, bit: u8) -> std::io::Result<bool> {
    let mut bytes = std::fs::read(path)?;
    match bytes.get_mut(byte_index) {
        Some(b) => {
            *b ^= 1 << (bit % 8);
            std::fs::write(path, &bytes)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Truncates the file at `path` to its first `keep` bytes (no-op if it is
/// already shorter).
pub fn truncate_file(path: &Path, keep: usize) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    bytes.truncate(keep);
    std::fs::write(path, &bytes)
}
