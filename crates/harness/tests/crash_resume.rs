//! Crash-injection differential tests: a run that is killed at an
//! arbitrary round and resumed from its durable snapshot must be
//! bit-identical — same rounds, levels, MIS, participation bitmap and
//! per-round trace — to a run that was never interrupted, across graph
//! families, all four delivery engines and composed fault/churn/noise plans.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use beeping::byzantine::{ByzantineBehavior, ByzantinePlan};
use beeping::channel::ChannelFault;
use beeping::churn::{ChurnAction, ChurnPlan};
use beeping::faults::{FaultPlan, FaultTarget};
use beeping::EngineMode;
use graphs::generators::{classic, random};
use graphs::Graph;
use harness::crash::killed_then_resumed;
use harness::supervisor::{supervise, RunOutcome, SupervisorConfig};
use mis::resumable::{ResumableConfig, ResumableOutcome, ResumableRun};
use mis::{Algorithm1, Algorithm2, LmaxPolicy};
use proptest::prelude::*;
use telemetry::{Config as TelemetryConfig, Telemetry};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("crash-{}-{tag}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn family_graph(family: u8, n: usize, seed: u64) -> Graph {
    match family % 4 {
        0 => random::gnp(n, 0.15, seed),
        1 => classic::cycle(n),
        2 => classic::path(n),
        _ => classic::complete(n.min(16)),
    }
}

/// The composed worst-case configuration: channel noise, a mid-run RAM
/// corruption wave, node churn and a Byzantine babbler — every axis the
/// snapshot must capture.
fn composed_config(seed: u64, n: usize, engine: EngineMode, with_events: bool) -> ResumableConfig {
    let mut config = ResumableConfig::new(seed)
        .with_max_rounds(30_000)
        .with_engine(engine)
        .with_channel(ChannelFault::reliable().with_drop(0.02));
    if with_events && n > 6 {
        config = config
            .with_faults(FaultPlan::new().with_fault(25, FaultTarget::RandomFraction(0.4)))
            .with_churn(
                ChurnPlan::new()
                    .with_event(40, ChurnAction::NodeLeave(1))
                    .with_event(60, ChurnAction::NodeJoin(1, vec![0, 2])),
            )
            .with_byzantine(
                ByzantinePlan::new().with_behavior(2, ByzantineBehavior::Babbler(0.25)),
            );
    }
    config
}

fn assert_outcomes_identical(a: &ResumableOutcome, b: &ResumableOutcome, context: &str) {
    assert_eq!(a.stabilized, b.stabilized, "{context}: stabilized");
    assert_eq!(a.rounds_run, b.rounds_run, "{context}: rounds_run");
    assert_eq!(a.stabilization_round, b.stabilization_round, "{context}: stabilization_round");
    assert_eq!(a.levels, b.levels, "{context}: levels");
    assert_eq!(a.mis, b.mis, "{context}: mis");
    assert_eq!(a.active, b.active, "{context}: active");
    assert_eq!(a.trace.reports(), b.trace.reports(), "{context}: trace");
}

fn uninterrupted(g: &Graph, algo: &Algorithm1, config: ResumableConfig) -> ResumableOutcome {
    let mut run = ResumableRun::new(g, algo, config).unwrap();
    run.run_to_completion();
    run.outcome().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: kill anywhere, resume from disk, get the
    /// exact same run — across families, engines and composed fault plans.
    #[test]
    fn killed_and_resumed_runs_are_bit_identical(
        family in 0u8..4,
        n in 8usize..28,
        seed in any::<u64>(),
        engine_sel in 0usize..4,
        with_events in any::<bool>(),
        kill_at in 1u64..120,
        checkpoint_every in 1u64..24,
    ) {
        let g = family_graph(family, n, seed);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let engine = [
            EngineMode::Scalar,
            EngineMode::Scatter,
            EngineMode::Frontier,
            EngineMode::ParScatter { threads: 2 },
        ][engine_sel];
        let config = composed_config(seed, g.len(), engine, with_events);

        let reference = uninterrupted(&g, &algo, config.clone());

        let dir = scratch_dir("prop");
        let report = killed_then_resumed(&g, &algo, config, kill_at, checkpoint_every, &dir);
        std::fs::remove_dir_all(&dir).ok();

        let context = format!(
            "family={family} n={n} seed={seed} engine={engine:?} events={with_events} \
             kill_at={kill_at} every={checkpoint_every} killed={}",
            report.killed
        );
        assert_outcomes_identical(&report.outcome, &reference, &context);
    }
}

#[test]
fn kill_every_round_of_one_run_is_covered() {
    // Exhaustive over kill rounds for one fixed composed configuration:
    // the proptest samples; this pins *every* kill point of a short run,
    // including boundaries exactly on and just off the checkpoint cadence.
    let g = random::gnp(16, 0.2, 42);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = composed_config(42, g.len(), EngineMode::Scatter, true);
    let reference = uninterrupted(&g, &algo, config.clone());

    for kill_at in 1..=reference.rounds_run + 2 {
        let dir = scratch_dir("every");
        let report = killed_then_resumed(&g, &algo, config.clone(), kill_at, 8, &dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.killed, kill_at <= reference.rounds_run, "kill_at={kill_at}");
        assert_outcomes_identical(&report.outcome, &reference, &format!("kill_at={kill_at}"));
    }
}

#[test]
fn parallel_scatter_fast_path_survives_kills() {
    // The composed proptest config carries channel noise, which sends
    // ParScatter down the phased fallback; this test runs a *reliable*
    // channel so every round goes through the parallel kernel proper, and
    // pins that checkpoint/restore stays engine-agnostic: a run killed
    // mid-flight and resumed (worker ranges and thread-local accumulators
    // rebuilt from scratch, never snapshotted) matches an uninterrupted
    // run, and an uninterrupted *scalar* run, bit for bit.
    let g = random::gnp(24, 0.15, 9);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = ResumableConfig::new(9)
        .with_engine(EngineMode::ParScatter { threads: 2 })
        .with_faults(FaultPlan::new().with_fault(25, FaultTarget::RandomFraction(0.4)));
    let reference = uninterrupted(&g, &algo, config.clone());
    let scalar = uninterrupted(&g, &algo, config.clone().with_engine(EngineMode::Scalar));
    assert_outcomes_identical(&reference, &scalar, "par(2) vs scalar");

    for kill_at in [1u64, 8, 24, 25, 26, 57] {
        let dir = scratch_dir("par");
        let report = killed_then_resumed(&g, &algo, config.clone(), kill_at, 5, &dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_outcomes_identical(&report.outcome, &reference, &format!("kill_at={kill_at}"));
    }
}

#[test]
fn two_channel_algorithm_survives_kills() {
    // Runs under the frontier engine: Algorithm 2's settled configurations
    // (ℓ = 0 announcing, ℓ = ℓmax dominated) are skipped post-stabilization
    // and the kill/resume cycle must reconstruct that lazily-accounted
    // state from the snapshot alone.
    let g = random::gnp(18, 0.2, 7);
    let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let config = ResumableConfig::new(7)
        .with_engine(EngineMode::Frontier)
        .with_faults(FaultPlan::new().with_fault(20, FaultTarget::RandomFraction(0.5)));

    let mut straight = ResumableRun::new(&g, &algo, config.clone()).unwrap();
    straight.run_to_completion();
    let reference = straight.outcome().unwrap();

    for kill_at in [1, 5, 21] {
        let dir = scratch_dir("alg2");
        let report = killed_then_resumed(&g, &algo, config.clone(), kill_at, 4, &dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.outcome.levels, reference.levels, "kill_at={kill_at}");
        assert_eq!(report.outcome.trace.reports(), reference.trace.reports(), "kill_at={kill_at}");
    }
}

#[test]
fn moving_deployment_survives_kills_bit_identically() {
    // Acceptance criterion for the mobility layer: a run over a *moving*
    // geometric deployment, composed with noise, churn and a Byzantine
    // babbler, killed at an arbitrary round and resumed from its durable
    // snapshot, must be bit-identical to one that was never interrupted.
    // The babbler keeps the run from stabilizing under sustained motion,
    // so the budget is small and exhaustion is the expected terminal state.
    use beeping::dynamic::MotionSpec;
    use graphs::motion::MotionModel;
    let spec = MotionSpec::new(
        0xD00D,
        graphs::generators::geometric::radius_for_expected_degree(24, 6.0),
        MotionModel::RandomWaypoint { speed: 0.025, pause: 3 },
    );
    let g = spec.initial_graph(24);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = ResumableConfig::new(17)
        .with_max_rounds(150)
        .with_motion(spec)
        .with_channel(ChannelFault::reliable().with_drop(0.02))
        .with_churn(
            ChurnPlan::new()
                .with_event(40, ChurnAction::NodeLeave(1))
                .with_event(60, ChurnAction::NodeJoin(1, vec![])),
        )
        .with_byzantine(ByzantinePlan::new().with_behavior(2, ByzantineBehavior::Babbler(0.25)));

    let reference = uninterrupted(&g, &algo, config.clone());

    for kill_at in [1u64, 7, 40, 41, 60, 99] {
        let dir = scratch_dir("motion");
        let report = killed_then_resumed(&g, &algo, config.clone(), kill_at, 8, &dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_outcomes_identical(&report.outcome, &reference, &format!("kill_at={kill_at}"));
    }

    // And end-to-end through the supervisor's in-process self-healing.
    let sup = SupervisorConfig::new().with_max_retries(1).with_kill_at(33);
    let outcome = supervise(&g, &algo, config, &sup).expect("valid plans");
    match outcome {
        RunOutcome::BudgetExhausted(outcome) => {
            assert_outcomes_identical(&outcome, &reference, "supervised self-heal")
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn supervisor_self_heals_with_retry_budget() {
    // With a retry budget the supervisor absorbs the kill in-process: the
    // caller sees a plain Completed outcome, bit-identical to an
    // undisturbed run, plus audit counters.
    let g = random::gnp(20, 0.15, 13);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = composed_config(13, g.len(), EngineMode::Scalar, true);
    let reference = uninterrupted(&g, &algo, config.clone());

    let tele = Telemetry::enabled(TelemetryConfig { level_stride: 0 });
    let sup = SupervisorConfig::new().with_max_retries(1).with_kill_at(30).with_telemetry(tele);
    let outcome = supervise(&g, &algo, config, &sup).expect("valid plans");
    match outcome {
        RunOutcome::Completed(outcome) => {
            assert_outcomes_identical(&outcome, &reference, "self-heal")
        }
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn supervisor_reports_panic_when_retries_exhausted() {
    let g = classic::cycle(12);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let sup = SupervisorConfig::new().with_kill_at(2); // max_retries = 0
    let outcome = supervise(&g, &algo, ResumableConfig::new(0), &sup).expect("valid plans");
    match outcome {
        RunOutcome::Panicked { message, round, retries_used } => {
            assert!(message.contains("crash injection"), "{message}");
            assert_eq!(retries_used, 0);
            assert!(round < 2);
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
}

#[test]
fn budget_exhaustion_can_be_resumed_with_a_larger_budget() {
    // Run out of budget, snapshot at the boundary, resume with a larger
    // budget: the continuation must match a straight run under the larger
    // budget (the fingerprint deliberately ignores max_rounds).
    let g = random::gnp(24, 0.12, 5);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let small = ResumableConfig::new(5).with_max_rounds(10);
    let large = ResumableConfig::new(5).with_max_rounds(30_000);

    let reference = uninterrupted(&g, &algo, large.clone());
    assert!(reference.stabilized, "fixture: must stabilize under the large budget");

    let dir = scratch_dir("budget");
    let sup = SupervisorConfig::new().with_checkpoint_every(1).with_checkpoint_dir(&dir);
    let first = supervise(&g, &algo, small, &sup).expect("valid plans");
    assert!(matches!(first, RunOutcome::BudgetExhausted(_)), "{first:?}");

    let resumed =
        harness::supervisor::supervise_resume(&algo, large, &sup, None).expect("resumable");
    std::fs::remove_dir_all(&dir).ok();
    match resumed {
        RunOutcome::Completed(outcome) => {
            assert_eq!(outcome.rounds_run, reference.rounds_run);
            assert_eq!(outcome.levels, reference.levels);
            assert_eq!(outcome.trace.reports(), reference.trace.reports());
        }
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn corrupt_snapshot_is_an_outcome_not_a_panic() {
    let g = classic::cycle(10);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = ResumableConfig::new(3);
    let dir = scratch_dir("corrupt");
    let sup =
        SupervisorConfig::new().with_checkpoint_every(2).with_checkpoint_dir(&dir).with_kill_at(4);
    let first = supervise(&g, &algo, config.clone(), &sup).expect("valid plans");
    assert!(matches!(first, RunOutcome::Panicked { .. }), "{first:?}");

    // Flip one payload byte in the snapshot on disk.
    let snap = harness::supervisor::snapshot_path(&dir);
    let header_len = std::fs::read(&snap).unwrap().iter().position(|&b| b == b'\n').unwrap() + 1;
    assert!(harness::flip_bit(&snap, header_len + 5, 0).unwrap());

    let resumed =
        harness::supervisor::supervise_resume(&algo, config, &sup, None).expect("no harness error");
    std::fs::remove_dir_all(&dir).ok();
    match resumed {
        RunOutcome::CorruptSnapshot { error } => {
            assert!(matches!(error, harness::SnapshotError::ChecksumMismatch { .. }), "{error}");
        }
        other => panic!("expected CorruptSnapshot, got {other:?}"),
    }
}

#[test]
fn wall_clock_watchdog_fires_and_leaves_a_resume_point() {
    let g = random::gnp(30, 0.1, 8);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    // A budget the run cannot finish instantly, plus a zero-second limit:
    // the watchdog must fire on the first check and write a snapshot.
    let config = ResumableConfig::new(8).with_max_rounds(1_000_000);
    let dir = scratch_dir("watchdog");
    let sup = SupervisorConfig::new()
        .with_checkpoint_every(64)
        .with_checkpoint_dir(&dir)
        .with_wall_clock_limit_secs(0.0);
    let outcome = supervise(&g, &algo, config.clone(), &sup).expect("valid plans");
    match outcome {
        RunOutcome::WallClockExceeded { rounds_run, snapshot } => {
            assert_eq!(rounds_run, 0, "zero-second limit fires before any chunk");
            let path = snapshot.expect("snapshot written on abort");
            assert!(path.exists());
            // And the snapshot is a usable resume point.
            let relaxed =
                SupervisorConfig::new().with_checkpoint_every(64).with_checkpoint_dir(&dir);
            let resumed = harness::supervisor::supervise_resume(&algo, config, &relaxed, None)
                .expect("resumable");
            assert!(matches!(resumed, RunOutcome::Completed(_)), "{resumed:?}");
        }
        other => panic!("expected WallClockExceeded, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
