//! Snapshot file-format integrity: round-trips are exact, and every class
//! of file damage — truncation, bit flips, version skew, wrong magic,
//! configuration mismatch, plain garbage — is rejected with the right
//! typed error, never a panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use beeping::channel::ChannelFault;
use beeping::churn::{ChurnAction, ChurnPlan};
use beeping::dynamic::MotionSpec;
use beeping::faults::{FaultPlan, FaultTarget};
use beeping::rng::pcg_state;
use graphs::generators::geometric::radius_for_expected_degree;
use graphs::generators::random;
use graphs::motion::MotionModel;
use harness::snapshot::{config_fingerprint, decode, encode, read_file, write_file, SnapshotError};
use mis::resumable::{ResumableConfig, ResumableRun, RunCheckpoint, RunStatus};
use mis::{Algorithm1, LmaxPolicy};
use proptest::prelude::*;

/// A process-unique scratch directory under the build tree (no tempfile
/// dependency, and no writes outside the workspace).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("harness-{}-{tag}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A mid-run checkpoint with every axis populated: noise, faults, churn,
/// a non-empty trace and a pending event cursor.
fn busy_checkpoint() -> (RunCheckpoint, u64) {
    let g = random::gnp(24, 0.15, 3);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = ResumableConfig::new(3)
        .with_channel(ChannelFault::reliable().with_drop(0.05))
        .with_faults(FaultPlan::new().with_fault(10, FaultTarget::RandomFraction(0.5)))
        .with_churn(ChurnPlan::new().with_event(15, ChurnAction::NodeLeave(2)));
    let fingerprint = config_fingerprint::<Algorithm1>(&config);
    let mut run = ResumableRun::new(&g, &algo, config).unwrap();
    for _ in 0..20 {
        if run.tick() != RunStatus::Running {
            break;
        }
    }
    (run.checkpoint(), fingerprint)
}

/// A mid-run checkpoint of a *moving* deployment: the motion fields are
/// populated mid-flight (positions away from their spawn points, a pause
/// countdown possibly running, the motion RNG advanced).
fn moving_checkpoint(model: MotionModel) -> (RunCheckpoint, ResumableConfig, u64) {
    let spec = MotionSpec::new(0x5EED, radius_for_expected_degree(20, 5.0), model);
    let g = spec.initial_graph(20);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = ResumableConfig::new(7)
        .with_motion(spec)
        .with_channel(ChannelFault::reliable().with_drop(0.02))
        .with_churn(ChurnPlan::new().with_event(5, ChurnAction::NodeLeave(3)));
    let fingerprint = config_fingerprint::<Algorithm1>(&config);
    let mut run = ResumableRun::new(&g, &algo, config.clone()).unwrap();
    for _ in 0..12 {
        if run.tick() != RunStatus::Running {
            break;
        }
    }
    let cp = run.checkpoint();
    assert!(cp.motion.is_some(), "test fixture: motion state must be populated");
    (cp, config, fingerprint)
}

fn assert_motion_equal(a: &RunCheckpoint, b: &RunCheckpoint) {
    // Geometry must survive bit-for-bit, so compare bit patterns: `f64`
    // equality would wave through -0.0 vs 0.0 and choke on NaN.
    let point_bits =
        |ps: &[(f64, f64)]| ps.iter().map(|&(x, y)| (x.to_bits(), y.to_bits())).collect::<Vec<_>>();
    let f64_bits = |hs: &[f64]| hs.iter().map(|h| h.to_bits()).collect::<Vec<_>>();
    match (&a.motion, &b.motion) {
        (None, None) => {}
        (Some(ma), Some(mb)) => {
            assert_eq!(point_bits(&ma.positions), point_bits(&mb.positions));
            assert_eq!(point_bits(&ma.waypoints), point_bits(&mb.waypoints));
            assert_eq!(ma.pauses, mb.pauses);
            assert_eq!(f64_bits(&ma.headings), f64_bits(&mb.headings));
            assert_eq!(ma.rng_state, mb.rng_state);
        }
        (a, b) => panic!("motion presence differs: {:?} vs {:?}", a.is_some(), b.is_some()),
    }
}

fn assert_checkpoints_equal(a: &RunCheckpoint, b: &RunCheckpoint) {
    assert_eq!(a.sim.round(), b.sim.round());
    assert_eq!(a.sim.states(), b.sim.states());
    let rng_states = |cp: &RunCheckpoint| cp.sim.rngs().iter().map(pcg_state).collect::<Vec<_>>();
    assert_eq!(rng_states(a), rng_states(b));
    assert_eq!(a.sim.sent(), b.sim.sent());
    assert_eq!(a.sim.heard(), b.sim.heard());
    assert_eq!(a.sim.graph().len(), b.sim.graph().len());
    assert_eq!(
        a.sim.graph().edges().collect::<Vec<_>>(),
        b.sim.graph().edges().collect::<Vec<_>>()
    );
    assert_eq!(a.sim.active(), b.sim.active());
    assert_eq!(a.sim.channel_state().in_burst, b.sim.channel_state().in_burst);
    assert_eq!(pcg_state(a.sim.channel_rng()), pcg_state(b.sim.channel_rng()));
    assert_eq!(pcg_state(a.sim.byz_rng()), pcg_state(b.sim.byz_rng()));
    assert_eq!(pcg_state(&a.fault_rng), pcg_state(&b.fault_rng));
    assert_eq!(a.applied_through, b.applied_through);
    assert_eq!(a.trace.reports(), b.trace.reports());
    assert_motion_equal(a, b);
}

#[test]
fn round_trip_is_field_exact() {
    let (cp, fp) = busy_checkpoint();
    let decoded = decode(&encode(&cp, fp), fp).expect("round trip");
    assert_checkpoints_equal(&cp, &decoded);
}

#[test]
fn file_round_trip_via_atomic_write() {
    let dir = scratch_dir("roundtrip");
    let path = dir.join("cp.snap");
    let (cp, fp) = busy_checkpoint();
    write_file(&path, &cp, fp).expect("write");
    // The temp sibling must not survive a successful write.
    assert!(!dir.join("cp.snap.tmp").exists());
    let decoded = read_file(&path, fp).expect("read");
    assert_checkpoints_equal(&cp, &decoded);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn motion_round_trip_is_field_exact_and_resumable() {
    for model in [
        MotionModel::RandomWaypoint { speed: 0.03, pause: 2 },
        MotionModel::Drift { speed: 0.02, turn: 0.5 },
    ] {
        let (cp, config, fp) = moving_checkpoint(model);
        let decoded = decode(&encode(&cp, fp), fp).expect("round trip");
        assert_checkpoints_equal(&cp, &decoded);
        // The decoded state must actually drive a resume, and the resumed
        // run must match one resumed from the in-memory checkpoint.
        let spec = config.motion.unwrap();
        let g = spec.initial_graph(20);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let mut from_memory = ResumableRun::resume(&algo, config.clone(), &cp).unwrap();
        let mut from_disk = ResumableRun::resume(&algo, config.clone(), &decoded).unwrap();
        for _ in 0..10 {
            from_memory.tick();
            from_disk.tick();
        }
        assert_checkpoints_equal(&from_memory.checkpoint(), &from_disk.checkpoint());
    }
}

#[test]
fn motionless_snapshots_omit_motion_fields() {
    // Static runs must keep writing byte-identical snapshots to earlier
    // builds: the motion fields only appear for moving deployments.
    let (cp, fp) = busy_checkpoint();
    assert!(cp.motion.is_none());
    let text = String::from_utf8(encode(&cp, fp)).unwrap();
    assert!(!text.contains("motion_"), "static snapshot leaked motion fields");
    assert!(decode(&encode(&cp, fp), fp).unwrap().motion.is_none());
}

#[test]
fn missing_file_is_io_error() {
    let err = read_file(&PathBuf::from("/nonexistent/nowhere.snap"), 0).unwrap_err();
    assert!(matches!(err, SnapshotError::Io { .. }), "{err}");
}

#[test]
fn garbage_is_malformed_header() {
    assert!(matches!(decode(b"not json at all\n{}", 0), Err(SnapshotError::MalformedHeader(_))));
    assert!(matches!(decode(b"", 0), Err(SnapshotError::MalformedHeader(_))));
    assert!(matches!(decode(&[0xFF, 0xFE, b'\n'], 0), Err(SnapshotError::MalformedHeader(_))));
}

#[test]
fn wrong_magic_and_version_skew_are_typed() {
    let (cp, fp) = busy_checkpoint();
    let text = String::from_utf8(encode(&cp, fp)).unwrap();

    let wrong_magic = text.replace("beeping-mis-snapshot", "some-other-format!!");
    assert!(matches!(
        decode(wrong_magic.as_bytes(), fp),
        Err(SnapshotError::WrongFormat { found }) if found == "some-other-format!!"
    ));

    let skewed = text.replace("\"version\":1", "\"version\":99");
    assert!(matches!(
        decode(skewed.as_bytes(), fp),
        Err(SnapshotError::UnsupportedVersion { found: 99, supported: 1 })
    ));
}

#[test]
fn truncation_is_detected() {
    let (cp, fp) = busy_checkpoint();
    let bytes = encode(&cp, fp);
    // Cut the payload short at several depths; all must be Truncated (the
    // header itself stays intact).
    let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    for keep in [header_len, header_len + 1, bytes.len() - 2, bytes.len() - 10] {
        let err = decode(&bytes[..keep], fp).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }), "keep={keep}: {err}");
    }
}

#[test]
fn payload_bit_flip_is_checksum_mismatch() {
    let (cp, fp) = busy_checkpoint();
    let bytes = encode(&cp, fp);
    let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    for offset in [0usize, 7, 100] {
        let mut damaged = bytes.clone();
        let idx = header_len + offset;
        damaged[idx] ^= 0x01;
        let err = decode(&damaged, fp).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }), "offset={offset}: {err}");
    }
}

#[test]
fn different_config_is_refused() {
    let (cp, fp) = busy_checkpoint();
    let bytes = encode(&cp, fp);
    let other = config_fingerprint::<Algorithm1>(&ResumableConfig::new(999));
    assert_ne!(fp, other);
    let err = decode(&bytes, other).unwrap_err();
    assert_eq!(err, SnapshotError::ConfigMismatch { expected: other, found: fp });
}

#[test]
fn fingerprint_ignores_budget_and_telemetry_but_not_plans() {
    let base = ResumableConfig::new(5);
    let fp = config_fingerprint::<Algorithm1>(&base);
    // Budget extension must keep the fingerprint (resuming an exhausted
    // run with a larger budget is supported).
    assert_eq!(fp, config_fingerprint::<Algorithm1>(&ResumableConfig::new(5).with_max_rounds(7)),);
    // Any plan difference must change it.
    assert_ne!(fp, config_fingerprint::<Algorithm1>(&ResumableConfig::new(6)));
    assert_ne!(
        fp,
        config_fingerprint::<Algorithm1>(
            &ResumableConfig::new(5).with_faults(FaultPlan::new().with_fault(1, FaultTarget::All))
        ),
    );
    assert_ne!(
        fp,
        config_fingerprint::<Algorithm1>(
            &ResumableConfig::new(5).with_channel(ChannelFault::reliable().with_drop(0.1))
        ),
    );
    // A different algorithm type must change it too.
    assert_ne!(fp, config_fingerprint::<mis::Algorithm2>(&ResumableConfig::new(5)));
    // Attaching a motion spec — or altering any of its parameters — must
    // change it: a moving run's topology history is part of the run.
    let moving = |speed| {
        ResumableConfig::new(5).with_motion(MotionSpec::new(
            0x5EED,
            0.25,
            MotionModel::RandomWaypoint { speed, pause: 1 },
        ))
    };
    assert_ne!(fp, config_fingerprint::<Algorithm1>(&moving(0.02)));
    assert_ne!(
        config_fingerprint::<Algorithm1>(&moving(0.02)),
        config_fingerprint::<Algorithm1>(&moving(0.03)),
    );
}

#[test]
fn inconsistent_payload_is_typed_not_panic() {
    // A snapshot whose vectors disagree decodes fine (the codec does not
    // cross-check) but must be refused by the resume path with a typed
    // error, not a panic.
    let g = random::gnp(10, 0.3, 1);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = ResumableConfig::new(1);
    let fp = config_fingerprint::<Algorithm1>(&config);
    let mut run = ResumableRun::new(&g, &algo, config.clone()).unwrap();
    run.tick();
    let cp = run.checkpoint();
    let text = String::from_utf8(encode(&cp, fp)).unwrap();

    // Drop one digit from `active` so it covers 9 nodes instead of 10.
    let damaged = text.replacen("\"active\":\"1", "\"active\":\"", 1);
    assert_ne!(damaged, text, "test fixture: expected an all-active prefix");
    // Re-stamp length and checksum so only the *semantic* damage remains.
    let payload = damaged.lines().nth(1).unwrap();
    let reheadered = format!(
        "{{\"format\":\"beeping-mis-snapshot\",\"version\":1,\
         \"payload_bytes\":{},\"checksum\":\"{:016x}\"}}\n{payload}\n",
        payload.len(),
        harness::snapshot::checksum64(payload.as_bytes()),
    );
    let decoded = decode(reheadered.as_bytes(), fp).expect("shape still decodes");
    let err = ResumableRun::resume(&algo, config, &decoded).unwrap_err();
    assert!(err.to_string().contains("inconsistent"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corruption robustness: flip any single bit anywhere in a snapshot
    /// file. The decoder must never panic, and must either reject the file
    /// with a typed error or (if the flip is immaterial — impossible for
    /// the payload, conceivable only in header whitespace we do not emit)
    /// produce the identical checkpoint.
    #[test]
    fn any_single_bit_flip_is_rejected_or_harmless(
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (cp, fp) = busy_checkpoint();
        let bytes = encode(&cp, fp);
        let idx = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut damaged = bytes.clone();
        damaged[idx] ^= 1 << bit;

        match decode(&damaged, fp) {
            Err(_) => {} // any typed rejection is correct
            Ok(decoded) => {
                // The flip must have been semantically invisible; the
                // decoded checkpoint must then be byte-for-byte re-encodable
                // to the original.
                prop_assert_eq!(encode(&decoded, fp), bytes);
            }
        }
    }

    /// Truncation robustness at every possible length.
    #[test]
    fn any_truncation_is_rejected(keep_frac in 0.0f64..1.0) {
        let (cp, fp) = busy_checkpoint();
        let bytes = encode(&cp, fp);
        let keep = ((keep_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        prop_assert!(decode(&bytes[..keep], fp).is_err());
    }
}
