//! Lint fixture with no violations: sanctioned idioms only. This file is
//! test data for `tests/fixtures.rs`; it is never compiled.

use std::collections::BTreeMap;

pub fn deterministic_histogram(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn halved(levels: &[i32]) -> Vec<i32> {
    levels.iter().map(|&v| v.min(0)).collect()
}
