//! Lint fixture: a deliberate L6 (cast-audit) violation — a truncating
//! narrowing cast; the widening cast below it must stay clean. This file is
//! test data for `tests/fixtures.rs`; it is never compiled.

pub fn compact_id(v: usize) -> u32 {
    v as u32
}

pub fn widened(v: u32) -> u64 {
    v as u64
}
