//! Lint fixture: a deliberate L4 (rng-discipline) violation — ad-hoc
//! seeding instead of the beeping::rng purpose streams. This file is test
//! data for `tests/fixtures.rs`; it is never compiled.

pub fn shuffled_order(seed: u64) -> u64 {
    let rng = rand_pcg::Pcg64Mcg::seed_from_u64(seed);
    seed ^ rng_marker(rng)
}
