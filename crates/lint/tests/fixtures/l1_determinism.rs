//! Lint fixture: a deliberate L1 (determinism) violation. This file is test
//! data for `tests/fixtures.rs`; it is never compiled.

pub fn histogram_order(xs: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}
