//! Lint fixture with no violations: the panicking helper is only reachable
//! through a `#[cfg(test)]` definition, which the call graph does not
//! traverse. This file is test data for `tests/fixtures.rs`; it is never
//! compiled.

pub fn step(budget: u64) -> u64 {
    budget.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    pub fn settle(budget: u64) {
        drain(budget);
    }

    pub fn drain(budget: u64) {
        if budget == 0 {
            panic!("budget exhausted");
        }
    }
}
