//! Lint fixture: a deliberate L2 (level-arithmetic) violation. This file is
//! test data for `tests/fixtures.rs`; it is never compiled.

pub fn bump(level: i32) -> i32 {
    level + 1
}
