//! Lint fixture: a deliberate L4 purpose-stream collision — two unrelated
//! call sites derive aux generators from the same literal purpose, so their
//! streams are identical. This file is test data for `tests/fixtures.rs`;
//! it is never compiled.

pub fn churn_rng(seed: u64) -> Rng {
    beeping::rng::aux_rng(seed, 0xC0FFEE)
}

pub fn fault_rng(seed: u64) -> Rng {
    beeping::rng::aux_rng(seed, 0xC0FFEE)
}
