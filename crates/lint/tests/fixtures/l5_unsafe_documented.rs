//! Lint fixture with no violations: the `unsafe` block carries the required
//! `// SAFETY:` comment. This file is test data for `tests/fixtures.rs`;
//! it is never compiled.

pub fn read_first(buf: &[u8]) -> u8 {
    assert!(!buf.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *buf.get_unchecked(0) }
}
