//! Lint fixture: a deliberate L3 (panic-freedom) violation. This file is
//! test data for `tests/fixtures.rs`; it is never compiled.

pub fn receive(observation: Option<u32>) -> u32 {
    observation.unwrap()
}
