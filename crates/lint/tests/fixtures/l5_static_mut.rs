//! Lint fixture: a deliberate L5 (concurrency-discipline) violation —
//! `static mut` shared state. This file is test data for
//! `tests/fixtures.rs`; it is never compiled.

static mut ROUND_COUNTER: u64 = 0;
