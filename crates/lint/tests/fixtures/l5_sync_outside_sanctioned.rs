//! Lint fixture: a deliberate L5 violation — a sync primitive outside the
//! sanctioned supervisor module. This file is test data for
//! `tests/fixtures.rs`; it is never compiled.

pub fn round_barrier_count(lock: &std::sync::Mutex<usize>) -> usize {
    lock.lock().map_or(0, |g| *g)
}
