//! Lint fixture: a deliberate transitive L3 violation — the panic sits two
//! call edges below the hot-path root `step`. This file is test data for
//! `tests/fixtures.rs`; it is never compiled.

pub fn step(budget: u64) {
    settle(budget);
}

fn settle(budget: u64) {
    drain(budget);
}

fn drain(budget: u64) {
    if budget == 0 {
        panic!("budget exhausted");
    }
}
