//! Lint fixture: a deliberate L5 violation — an `unsafe` block without a
//! `// SAFETY:` comment on the preceding line. This file is test data for
//! `tests/fixtures.rs`; it is never compiled.

pub fn read_slot(buf: &[u8]) -> u8 {
    unsafe { *buf.get_unchecked(0) }
}
