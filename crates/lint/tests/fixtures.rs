//! Self-tests of the lint rules against checked-in fixture files, each
//! containing exactly one deliberate violation (plus clean negatives).
//! Asserts the right rule fires at the right span and the run exits
//! nonzero — the contract CI relies on.

use std::path::{Path, PathBuf};

use lint::{lint_files_all_rules, RuleId};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Lints one fixture and asserts it produces exactly one finding with the
/// expected rule, span and snippet, and a failing exit code.
fn assert_single_finding(name: &str, rule: RuleId, line: u32, col: u32, snippet: &str) {
    let report = lint_files_all_rules(&root(), &[fixture(name)]).expect("fixture readable");
    assert_eq!(report.exit_code(), 1, "{name} must fail the lint");
    assert_eq!(report.findings.len(), 1, "{name}: {:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, rule, "{name}");
    assert_eq!((f.line, f.col), (line, col), "{name}: wrong span: {f:?}");
    assert!(f.snippet.contains(snippet), "{name}: snippet {:?}", f.snippet);
}

/// Lints one fixture and asserts it is completely clean.
fn assert_clean(name: &str) {
    let report = lint_files_all_rules(&root(), &[fixture(name)]).expect("fixture readable");
    assert_eq!(report.exit_code(), 0, "{name}: {:?}", report.findings);
    assert!(report.findings.is_empty(), "{name}: {:?}", report.findings);
}

#[test]
fn l1_fires_on_hash_collections() {
    assert_single_finding("l1_determinism.rs", RuleId::L1, 5, 38, "HashSet");
}

#[test]
fn l2_fires_on_raw_level_arithmetic() {
    assert_single_finding("l2_level_arithmetic.rs", RuleId::L2, 5, 11, "level + 1");
}

#[test]
fn l3_fires_on_unwrap_in_hot_path() {
    assert_single_finding("l3_panic_freedom.rs", RuleId::L3, 5, 17, "observation.unwrap()");
}

/// Acceptance criterion: a panic **two call edges** below the hot-path root
/// `step` is caught, and the finding's message names the full chain.
#[test]
fn l3_transitive_catches_panic_two_edges_below_step() {
    assert_single_finding("l3_transitive.rs", RuleId::L3, 15, 9, "panic!");
    let report =
        lint_files_all_rules(&root(), &[fixture("l3_transitive.rs")]).expect("fixture readable");
    let f = &report.findings[0];
    assert!(
        f.message.contains("step → settle → drain"),
        "message must name the call chain: {:?}",
        f.message
    );
}

#[test]
fn l3_transitive_does_not_traverse_test_definitions() {
    // The same panic shape under `#[cfg(test)]` is invisible to the graph.
    assert_clean("l3_transitive_test_only.rs");
}

#[test]
fn l4_fires_on_ad_hoc_seeding() {
    assert_single_finding("l4_rng_discipline.rs", RuleId::L4, 6, 35, "seed_from_u64");
}

/// Acceptance criterion: two `aux_rng` call sites sharing one literal
/// purpose collide, and **both** sites are reported.
#[test]
fn l4_fires_on_duplicate_purpose_streams() {
    let report = lint_files_all_rules(&root(), &[fixture("l4_purpose_collision.rs")])
        .expect("fixture readable");
    assert_eq!(report.exit_code(), 1);
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    for f in &report.findings {
        assert_eq!(f.rule, RuleId::L4);
        assert!(f.message.contains("collide"), "{:?}", f.message);
    }
    assert_eq!(
        report.findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![7, 11],
        "both colliding sites must be reported"
    );
}

#[test]
fn l5_fires_on_static_mut() {
    assert_single_finding("l5_static_mut.rs", RuleId::L5, 5, 1, "static mut ROUND_COUNTER");
}

#[test]
fn l5_fires_on_undocumented_unsafe() {
    assert_single_finding("l5_unsafe_no_safety.rs", RuleId::L5, 6, 5, "unsafe");
}

#[test]
fn l5_accepts_unsafe_with_safety_comment() {
    assert_clean("l5_unsafe_documented.rs");
}

#[test]
fn l5_fires_on_sync_primitive_outside_sanctioned_modules() {
    assert_single_finding("l5_sync_outside_sanctioned.rs", RuleId::L5, 5, 46, "Mutex");
}

#[test]
fn l6_fires_on_narrowing_cast_not_widening() {
    assert_single_finding("l6_cast.rs", RuleId::L6, 6, 7, "v as u32");
}

#[test]
fn clean_fixture_passes() {
    assert_clean("clean.rs");
}

#[test]
fn all_fixtures_together_exit_nonzero() {
    let files: Vec<PathBuf> = [
        "l1_determinism.rs",
        "l2_level_arithmetic.rs",
        "l3_panic_freedom.rs",
        "l3_transitive.rs",
        "l4_rng_discipline.rs",
        "l5_static_mut.rs",
        "l6_cast.rs",
        "clean.rs",
    ]
    .iter()
    .map(|n| fixture(n))
    .collect();
    let report = lint_files_all_rules(&root(), &files).expect("fixtures readable");
    assert_eq!(report.exit_code(), 1);
    // At least one finding per rule family across the corpus.
    for rule in RuleId::all() {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "{rule:?} produced no finding: {:?}",
            report.findings
        );
    }
}

/// The linter holds itself to its own bar: `crates/lint/src` must pass every
/// rule with no allowlist at all.
#[test]
fn lint_crate_passes_its_own_rules() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let files = lint::collect_rs_files(&src_dir).expect("lint sources readable");
    assert!(!files.is_empty());
    let report = lint_files_all_rules(&root(), &files).expect("lint sources lintable");
    assert_eq!(report.exit_code(), 0, "self-lint findings: {:#?}", report.findings);
}

/// The workspace itself must lint clean under the checked-in allowlist —
/// the same invocation CI runs via `cargo run -p lint -- --strict`.
#[test]
fn workspace_lints_clean_with_allowlist_strict() {
    let root = root();
    let allowlist_text =
        std::fs::read_to_string(root.join("lint-allow.txt")).expect("lint-allow.txt present");
    let allowlist = lint::parse_allowlist(&allowlist_text).expect("allowlist well-formed");
    let report = lint::lint_workspace(&root, &allowlist, true).expect("workspace readable");
    assert_eq!(report.exit_code(), 0, "workspace findings: {:#?}", report.findings);
    assert!(report.unused_allows.is_empty(), "stale allowlist: {:?}", report.unused_allows);
}

/// Strict mode turns a stale allowlist entry into a failing exit code;
/// non-strict reports it as a warning only.
#[test]
fn strict_mode_fails_on_stale_allowlist_entries() {
    let stale = "# justification: exercises the stale-entry path in this test\n\
                 L6 crates/nonexistent/src/ghost.rs x as u8\n";
    let allowlist = lint::parse_allowlist(stale).expect("stale entry parses");
    let report = lint::lint_workspace(&root(), &allowlist, false).expect("workspace readable");
    assert_eq!(report.unused_allows.len(), 1);
    let strict = lint::lint_workspace(&root(), &allowlist, true).expect("workspace readable");
    assert_eq!(strict.unused_allows.len(), 1);
    assert_ne!(strict.exit_code(), 0, "strict must fail on a stale entry");
}
