//! Self-tests of the lint rules against checked-in fixture files, each
//! containing exactly one deliberate violation (plus one clean fixture).
//! Asserts the right rule fires at the right span and the run exits
//! nonzero — the contract CI relies on.

use std::path::{Path, PathBuf};

use lint::{lint_files_all_rules, RuleId};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Lints one fixture and asserts it produces exactly one finding with the
/// expected rule, span and snippet, and a failing exit code.
fn assert_single_finding(name: &str, rule: RuleId, line: u32, col: u32, snippet: &str) {
    let report = lint_files_all_rules(&root(), &[fixture(name)]).expect("fixture readable");
    assert_eq!(report.exit_code(), 1, "{name} must fail the lint");
    assert_eq!(report.findings.len(), 1, "{name}: {:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, rule, "{name}");
    assert_eq!((f.line, f.col), (line, col), "{name}: wrong span: {f:?}");
    assert!(f.snippet.contains(snippet), "{name}: snippet {:?}", f.snippet);
}

#[test]
fn l1_fires_on_hash_collections() {
    assert_single_finding("l1_determinism.rs", RuleId::L1, 5, 38, "HashSet");
}

#[test]
fn l2_fires_on_raw_level_arithmetic() {
    assert_single_finding("l2_level_arithmetic.rs", RuleId::L2, 5, 11, "level + 1");
}

#[test]
fn l3_fires_on_unwrap_in_hot_path() {
    assert_single_finding("l3_panic_freedom.rs", RuleId::L3, 5, 17, "observation.unwrap()");
}

#[test]
fn clean_fixture_passes() {
    let report = lint_files_all_rules(&root(), &[fixture("clean.rs")]).expect("fixture readable");
    assert_eq!(report.exit_code(), 0, "{:?}", report.findings);
    assert!(report.findings.is_empty());
}

#[test]
fn all_fixtures_together_exit_nonzero() {
    let files: Vec<PathBuf> =
        ["l1_determinism.rs", "l2_level_arithmetic.rs", "l3_panic_freedom.rs", "clean.rs"]
            .iter()
            .map(|n| fixture(n))
            .collect();
    let report = lint_files_all_rules(&root(), &files).expect("fixtures readable");
    assert_eq!(report.findings.len(), 3);
    assert_eq!(report.exit_code(), 1);
    // One finding per rule.
    for rule in RuleId::all() {
        assert_eq!(report.findings.iter().filter(|f| f.rule == rule).count(), 1, "{rule:?}");
    }
}

/// The workspace itself must lint clean under the checked-in allowlist —
/// the same invocation CI runs via `cargo run -p lint`.
#[test]
fn workspace_lints_clean_with_allowlist() {
    let root = root();
    let allowlist_text =
        std::fs::read_to_string(root.join("lint-allow.txt")).expect("lint-allow.txt present");
    let allowlist = lint::parse_allowlist(&allowlist_text).expect("allowlist well-formed");
    let report = lint::lint_workspace(&root, &allowlist).expect("workspace readable");
    assert_eq!(report.exit_code(), 0, "workspace findings: {:#?}", report.findings);
    assert!(report.unused_allows.is_empty(), "stale allowlist: {:?}", report.unused_allows);
}
