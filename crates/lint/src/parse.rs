//! A lightweight structural parser over the token stream: item boundaries
//! (functions, `impl` blocks), `#[cfg(test)]` regions, call-site extraction,
//! `const` purpose tables, and `aux_rng` call arguments.
//!
//! This is deliberately **not** a full Rust parser. It recovers just enough
//! structure for the workspace rules in [`crate::rules`]:
//!
//! - every `fn` item with its name, body token range, and (when defined
//!   directly inside an `impl` block) its `Type::name` qualified form;
//! - every call site inside a function body, classified as qualified
//!   (`Type::name(…)` / `module::name(…)`), method (`.name(…)`) or bare
//!   (`name(…)`);
//! - whether each token sits inside a `#[cfg(test)]` / `#[test]` item;
//! - `const NAME: u64 = <literal>;` definitions (the RNG purpose tables);
//! - the second argument of every `aux_rng(…)` call (RNG stream purposes).
//!
//! Known approximations, documented in DESIGN.md §7.1: trait dispatch is not
//! resolved (a method call matches every workspace method of that name),
//! macro bodies are opaque, and const-generic braces in return types can
//! confuse body-range detection. All of these over- or under-approximate in
//! ways the rules tolerate (over-approximation surfaces extra candidates
//! that either contain no violations or go through the allowlist).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};

/// How a call site names its callee; determines resolution in
/// [`crate::callgraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `seg::name(…)` — `seg` is the immediately preceding path segment,
    /// with `Self` already rewritten to the enclosing impl type.
    Qualified(String),
    /// `.name(…)` — receiver type unknown (no trait/type resolution).
    Method,
    /// `name(…)` — a free-function call.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Qualification of the call.
    pub kind: CallKind,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's bare name.
    pub bare: String,
    /// `Type::name` when defined directly inside an `impl Type` block.
    pub qualified: Option<String>,
    /// 1-based line/col of the name token (for diagnostics).
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Token-index range of the body `{ … }`, inclusive; `None` for
    /// body-less trait signatures.
    pub body: Option<(usize, usize)>,
    /// Defined inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
}

/// The second argument of an `aux_rng(…)` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PurposeArg {
    /// An integer literal purpose (`aux_rng(seed, 0xADA)`).
    Literal(u64),
    /// A named constant purpose (`aux_rng(seed, FAULT_RNG_PURPOSE)`).
    Named(String),
    /// Anything more complex — not analyzable, skipped by the rule.
    Opaque,
}

/// One `aux_rng(…)` call site.
#[derive(Debug, Clone)]
pub struct AuxCall {
    /// The purpose (second) argument.
    pub arg: PurposeArg,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
    /// The call sits inside a test region.
    pub in_test: bool,
}

/// Structural index of one source file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
    /// For each token, the index into `fns` of the innermost enclosing
    /// function body, if any.
    pub enclosing: Vec<Option<usize>>,
    /// For each token, whether it sits inside a test region.
    pub in_test: Vec<bool>,
    /// Type names with an `impl` block in this file.
    pub impl_types: BTreeSet<String>,
    /// `const NAME: u64 = <int literal>;` definitions.
    pub consts: BTreeMap<String, u64>,
    /// `aux_rng(…)` call sites.
    pub aux_calls: Vec<AuxCall>,
}

/// Keywords and tuple-variant constructors that look like calls but are not
/// function calls the graph should follow.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "as", "in", "use", "pub", "mod", "struct", "enum", "trait", "impl", "where", "unsafe", "dyn",
    "break", "continue", "crate", "super", "self", "Self", "static", "const", "type", "box",
    "async", "await", "yield", "Some", "Ok", "Err", "None",
];

/// Parses an integer literal token (`0xFA17`, `1_000`, `42u64`) as `u64`.
/// Returns `None` for floats, strings, or out-of-range values.
pub fn parse_int_literal(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = match cleaned.strip_prefix("0x").or_else(|| cleaned.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => match cleaned.strip_prefix("0b") {
            Some(bin) => (bin, 2),
            None => match cleaned.strip_prefix("0o") {
                Some(oct) => (oct, 8),
                None => (cleaned.as_str(), 10),
            },
        },
    };
    // Strip a trailing type suffix (`u64`, `usize`, …): keep the leading
    // digit run of the radix.
    let end = digits.find(|c: char| !c.is_digit(radix)).unwrap_or(digits.len());
    let digits = &digits[..end];
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(digits, radix).ok()
}

/// Marks test regions: an attribute containing the ident `test` (but not
/// `cfg(not(test))`) exempts the item it precedes, through the matching
/// close brace or terminating semicolon.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut in_test = vec![false; n];
    let mut i = 0;
    while i < n {
        if tokens[i].is_punct("#") && i + 1 < n && tokens[i + 1].is_punct("[") {
            let mut j = i + 2;
            let mut bracket_depth = 1usize;
            let mut mentions_test = false;
            while j < n && bracket_depth > 0 {
                if tokens[j].is_punct("[") {
                    bracket_depth += 1;
                } else if tokens[j].is_punct("]") {
                    bracket_depth -= 1;
                } else if tokens[j].is_ident("test") {
                    // `#[cfg(not(test))]` guards *production* code.
                    let negated =
                        j >= 2 && tokens[j - 1].is_punct("(") && tokens[j - 2].is_ident("not");
                    if !negated {
                        mentions_test = true;
                    }
                }
                j += 1;
            }
            if mentions_test {
                let start = i;
                let mut k = j;
                let mut brace_depth = 0usize;
                while k < n {
                    if tokens[k].is_punct("{") {
                        brace_depth += 1;
                    } else if tokens[k].is_punct("}") {
                        brace_depth -= 1;
                        if brace_depth == 0 {
                            break;
                        }
                    } else if tokens[k].is_punct(";") && brace_depth == 0 {
                        break;
                    }
                    k += 1;
                }
                for slot in in_test.iter_mut().take((k + 1).min(n)).skip(start) {
                    *slot = true;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Extracts the implemented type name from an `impl` header starting at
/// `tokens[i]` (the `impl` ident): the first type ident after `for` when a
/// trait is implemented, otherwise the first type ident after the optional
/// generic parameter list. Returns `(type_name, index_of_open_brace)`.
fn parse_impl_header(tokens: &[Token], i: usize) -> (Option<String>, usize) {
    let n = tokens.len();
    let mut j = i + 1;
    let mut angle: i64 = 0;
    let mut after_for = false;
    let mut first_at_top: Option<String> = None;
    let mut for_type: Option<String> = None;
    while j < n {
        let t = &tokens[j];
        if t.is_punct("{") && angle <= 0 {
            break;
        }
        if t.is_punct(";") && angle <= 0 {
            break; // malformed / not actually an impl block
        }
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => angle += 1,
            ">" if t.kind == TokenKind::Punct => angle -= 1,
            ">>" if t.kind == TokenKind::Punct => angle -= 2,
            "where" if t.kind == TokenKind::Ident && angle <= 0 => {
                // The implemented type is fully named before `where`.
                while j < n && !tokens[j].is_punct("{") {
                    j += 1;
                }
                break;
            }
            "for" if t.kind == TokenKind::Ident && angle <= 0 => after_for = true,
            _ if t.kind == TokenKind::Ident && angle <= 0 => {
                let skip = matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe");
                if !skip {
                    if after_for && for_type.is_none() {
                        for_type = Some(t.text.clone());
                    } else if !after_for
                        && (first_at_top.is_none()
                            // Within a path `a::b::Type`, keep the last segment.
                            || tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct("::")))
                    {
                        first_at_top = Some(t.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (for_type.or(first_at_top), j)
}

/// Scans the argument list opening at `tokens[open]` (a `(`), returning the
/// token ranges of each top-level comma-separated argument.
fn split_args(tokens: &[Token], open: usize) -> Vec<(usize, usize)> {
    let n = tokens.len();
    let mut args = Vec::new();
    let mut depth = 1usize;
    let mut start = open + 1;
    let mut j = open + 1;
    while j < n && depth > 0 {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                if j > start {
                    args.push((start, j));
                }
                break;
            }
        } else if t.is_punct(",") && depth == 1 {
            if j > start {
                args.push((start, j));
            }
            start = j + 1;
        }
        j += 1;
    }
    args
}

/// Builds the structural index for one file's token stream.
pub fn index_file(tokens: &[Token]) -> FileIndex {
    let n = tokens.len();
    let in_test = mark_test_regions(tokens);
    let mut fns: Vec<FnDef> = Vec::new();
    let mut enclosing: Vec<Option<usize>> = vec![None; n];
    let mut impl_types = BTreeSet::new();
    let mut consts = BTreeMap::new();
    let mut aux_calls = Vec::new();

    let mut depth = 0usize;
    // (fn index, depth at which its body opened)
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // (impl type name, depth at which its body opened)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut pending_impl: Option<String> = None;
    // Attribute regions (`#[…]`) are skipped for call extraction: `derive(…)`
    // is not a call.
    let mut attr_until: usize = 0;

    let mut i = 0;
    while i < n {
        let tok = &tokens[i];
        if i >= attr_until
            && tok.is_punct("#")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut j = i + 2;
            let mut bracket = 1usize;
            while j < n && bracket > 0 {
                if tokens[j].is_punct("[") {
                    bracket += 1;
                } else if tokens[j].is_punct("]") {
                    bracket -= 1;
                }
                j += 1;
            }
            attr_until = j;
        }
        enclosing[i] = fn_stack.last().map(|&(idx, _)| idx);
        if tok.is_punct("{") {
            if let Some(fn_idx) = pending_fn.take() {
                fns[fn_idx].body = Some((i, i)); // end patched on close
                fn_stack.push((fn_idx, depth));
            } else if let Some(ty) = pending_impl.take() {
                impl_stack.push((ty, depth));
            }
            depth += 1;
        } else if tok.is_punct("}") {
            depth = depth.saturating_sub(1);
            if let Some(&(fn_idx, d)) = fn_stack.last() {
                if depth == d {
                    if let Some(body) = fns[fn_idx].body.as_mut() {
                        body.1 = i;
                    }
                    fn_stack.pop();
                }
            }
            if let Some(&(_, d)) = impl_stack.last() {
                if depth == d {
                    impl_stack.pop();
                }
            }
        } else if tok.is_punct(";") {
            // A `;` before a body's `{` ends a trait-method signature or a
            // malformed impl header.
            pending_fn = None;
            pending_impl = None;
        } else if tok.is_ident("impl") && pending_fn.is_none() {
            let (ty, _) = parse_impl_header(tokens, i);
            if let Some(ty) = ty {
                impl_types.insert(ty.clone());
                pending_impl = Some(ty);
            }
        } else if tok.is_ident("fn") {
            if let Some(next) = tokens.get(i + 1) {
                if next.kind == TokenKind::Ident {
                    // Directly inside an impl body ⇒ qualified method name.
                    let qualified = impl_stack
                        .last()
                        .filter(|&&(_, d)| d + 1 == depth)
                        .filter(|_| fn_stack.iter().all(|&(_, d)| d + 1 != depth))
                        .map(|(ty, _)| format!("{ty}::{}", next.text));
                    fns.push(FnDef {
                        bare: next.text.clone(),
                        qualified,
                        line: next.line,
                        col: next.col,
                        body: None,
                        in_test: in_test[i],
                        calls: Vec::new(),
                    });
                    pending_fn = Some(fns.len() - 1);
                }
            }
        } else if tok.is_ident("const") {
            // `const NAME: u64 = <int literal>;` — the purpose-table shape.
            if let (Some(name), Some(colon), Some(ty), Some(eq), Some(lit)) = (
                tokens.get(i + 1),
                tokens.get(i + 2),
                tokens.get(i + 3),
                tokens.get(i + 4),
                tokens.get(i + 5),
            ) {
                if name.kind == TokenKind::Ident
                    && colon.is_punct(":")
                    && ty.is_ident("u64")
                    && eq.is_punct("=")
                    && lit.kind == TokenKind::Literal
                    && tokens.get(i + 6).is_some_and(|t| t.is_punct(";"))
                {
                    if let Some(v) = parse_int_literal(&lit.text) {
                        consts.insert(name.text.clone(), v);
                    }
                }
            }
        }

        // Call-site extraction (inside function bodies, outside attributes).
        if i >= attr_until
            && tok.kind == TokenKind::Ident
            && !NON_CALL_IDENTS.contains(&tok.text.as_str())
            && !tokens.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn"))
        {
            let open = call_open_paren(tokens, i);
            if let Some(open) = open {
                let kind = if tokens.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(i.wrapping_sub(2)).is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    let mut seg = tokens[i - 2].text.clone();
                    if seg == "Self" {
                        if let Some((ty, _)) = impl_stack.last() {
                            seg = ty.clone();
                        }
                    }
                    CallKind::Qualified(seg)
                } else if tokens.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(".")) {
                    // `self.name(…)` inside an impl block is an exact call on
                    // the impl type; other receivers stay unresolved methods.
                    match impl_stack.last() {
                        Some((ty, _))
                            if tokens
                                .get(i.wrapping_sub(2))
                                .is_some_and(|t| t.is_ident("self")) =>
                        {
                            CallKind::Qualified(ty.clone())
                        }
                        _ => CallKind::Method,
                    }
                } else {
                    CallKind::Bare
                };
                if tok.text == "aux_rng" {
                    let args = split_args(tokens, open);
                    let arg = match args.get(1) {
                        Some(&(s, e)) if e == s + 1 => match tokens[s].kind {
                            TokenKind::Literal => parse_int_literal(&tokens[s].text)
                                .map_or(PurposeArg::Opaque, PurposeArg::Literal),
                            TokenKind::Ident => PurposeArg::Named(tokens[s].text.clone()),
                            _ => PurposeArg::Opaque,
                        },
                        _ => PurposeArg::Opaque,
                    };
                    aux_calls.push(AuxCall {
                        arg,
                        line: tok.line,
                        col: tok.col,
                        in_test: in_test[i],
                    });
                }
                if let Some(&(fn_idx, _)) = fn_stack.last() {
                    fns[fn_idx].calls.push(Call { name: tok.text.clone(), kind });
                }
            }
        }
        i += 1;
    }
    FileIndex { fns, enclosing, in_test, impl_types, consts, aux_calls }
}

/// If `tokens[i]` begins a call — `name(`, or turbofish `name::<…>(` —
/// returns the index of the opening parenthesis.
fn call_open_paren(tokens: &[Token], i: usize) -> Option<usize> {
    let next = tokens.get(i + 1)?;
    if next.is_punct("(") {
        return Some(i + 1);
    }
    // Turbofish: `name::<T, U>(…)`. `>>` closes two angle levels.
    if next.is_punct("::") && tokens.get(i + 2).is_some_and(|t| t.is_punct("<")) {
        let mut angle: i64 = 1;
        let mut j = i + 3;
        while j < tokens.len() && angle > 0 {
            match tokens[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
        }
        if angle <= 0 && tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn index(src: &str) -> FileIndex {
        index_file(&tokenize(src))
    }

    #[test]
    fn fn_items_and_bodies() {
        let ix = index("fn a() { b(); }\nfn c() {}\n");
        assert_eq!(ix.fns.len(), 2);
        assert_eq!(ix.fns[0].bare, "a");
        assert_eq!(ix.fns[0].calls.len(), 1);
        assert_eq!(ix.fns[0].calls[0].name, "b");
        assert_eq!(ix.fns[0].calls[0].kind, CallKind::Bare);
        assert!(ix.fns[1].calls.is_empty());
    }

    #[test]
    fn impl_methods_are_qualified() {
        let ix = index("impl Foo { fn make() -> Foo { Foo::helper() } fn helper() {} }");
        assert_eq!(ix.fns[0].qualified.as_deref(), Some("Foo::make"));
        assert_eq!(ix.fns[1].qualified.as_deref(), Some("Foo::helper"));
        assert_eq!(ix.fns[0].calls[0].kind, CallKind::Qualified("Foo".into()));
        assert!(ix.impl_types.contains("Foo"));
    }

    #[test]
    fn trait_impls_use_the_self_type() {
        let ix = index("impl<T: Clone> Display for Wrapper<T> { fn fmt(&self) {} }");
        assert_eq!(ix.fns[0].qualified.as_deref(), Some("Wrapper::fmt"));
        assert!(ix.impl_types.contains("Wrapper"));
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let ix = index("impl Foo { fn a(&self) { Self::b(); self.c(); other.d(); } }");
        assert_eq!(ix.fns[0].calls[0].kind, CallKind::Qualified("Foo".into()));
        assert_eq!(ix.fns[0].calls[1].kind, CallKind::Qualified("Foo".into()));
        assert_eq!(ix.fns[0].calls[2].kind, CallKind::Method);
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_innermost() {
        let ix = index("fn outer() { fn inner() { a(); } b(); }");
        assert_eq!(ix.fns[0].bare, "outer");
        assert_eq!(ix.fns[1].bare, "inner");
        let outer_calls: Vec<&str> = ix.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_calls, ["b"]);
        assert_eq!(ix.fns[1].calls[0].name, "a");
    }

    #[test]
    fn macros_patterns_attrs_are_not_calls() {
        let ix =
            index("#[derive(Debug)]\nfn f(x: Option<u8>) { panic!(\"x\"); if let Some(y) = x {} }");
        // `Some(y)` and `derive(Debug)` and `panic!` are all excluded.
        assert!(ix.fns[0].calls.is_empty(), "{:?}", ix.fns[0].calls);
    }

    #[test]
    fn turbofish_calls_are_detected() {
        let ix = index("fn f() { parse::<Vec<u32>>(x); }");
        assert_eq!(ix.fns[0].calls.len(), 1);
        assert_eq!(ix.fns[0].calls[0].name, "parse");
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let ix = index("trait T { fn sig(&self); fn with_default(&self) { sig(); } }");
        assert_eq!(ix.fns[0].bare, "sig");
        assert!(ix.fns[0].body.is_none());
        assert!(ix.fns[1].body.is_some());
    }

    #[test]
    fn const_purpose_table() {
        let ix =
            index("const FAULT: u64 = 0xFA17;\nconst OTHER: u64 = 1_000;\nconst F: f64 = 1.0;");
        assert_eq!(ix.consts.get("FAULT"), Some(&0xFA17));
        assert_eq!(ix.consts.get("OTHER"), Some(&1000));
        assert!(!ix.consts.contains_key("F"));
    }

    #[test]
    fn aux_rng_purposes() {
        let ix = index(
            "fn a() { let r = aux_rng(seed, 0xADA); }\nfn b() { let r = aux_rng(seed, FAULT); }\n\
             fn c() { let r = aux_rng(seed, base + 1); }",
        );
        assert_eq!(ix.aux_calls.len(), 3);
        assert_eq!(ix.aux_calls[0].arg, PurposeArg::Literal(0xADA));
        assert_eq!(ix.aux_calls[1].arg, PurposeArg::Named("FAULT".into()));
        assert_eq!(ix.aux_calls[2].arg, PurposeArg::Opaque);
    }

    #[test]
    fn test_regions_cover_defs_and_calls() {
        let ix = index("#[cfg(test)]\nmod tests { fn helper() { aux_rng(0, 7); } }\nfn live() {}");
        assert!(ix.fns[0].in_test);
        assert!(!ix.fns[1].in_test);
        assert!(ix.aux_calls[0].in_test);
    }

    #[test]
    fn int_literal_forms() {
        assert_eq!(parse_int_literal("0xFA17"), Some(0xFA17));
        assert_eq!(parse_int_literal("1_000u64"), Some(1000));
        assert_eq!(parse_int_literal("0b101"), Some(5));
        assert_eq!(parse_int_literal("0o17"), Some(15));
        assert_eq!(parse_int_literal("12"), Some(12));
        assert_eq!(parse_int_literal("1.5"), Some(1)); // prefix digits only
        assert_eq!(parse_int_literal("\"s\""), None);
    }
}
