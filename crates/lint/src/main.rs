//! CLI entry point: `cargo run -p lint [-- OPTIONS] [FILES…]`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::{lint_files_all_rules, lint_workspace, parse_allowlist, AllowEntry};

const USAGE: &str = "\
Usage: lint [OPTIONS] [FILES...]

Lints the workspace for determinism (L1), level-arithmetic (L2), transitive
panic-freedom (L3), rng-discipline (L4), concurrency-discipline (L5) and
cast-audit (L6) violations. With FILES, lints exactly those files with every
rule enabled (fixture/self-test mode).

Options:
  --root DIR        workspace root (default: auto-detected)
  --allowlist FILE  allowlist path (default: <root>/lint-allow.txt)
  --strict          stale allowlist entries are failures (CI mode)
  --json            machine-readable output
  -h, --help        this help
";

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: bool,
    strict: bool,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { root: None, allowlist: None, json: false, strict: false, files: Vec::new() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--root" => {
                opts.root =
                    Some(PathBuf::from(it.next().ok_or("--root needs a directory argument")?))
            }
            "--allowlist" => {
                opts.allowlist =
                    Some(PathBuf::from(it.next().ok_or("--allowlist needs a file argument")?))
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first one that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`), falling back to
/// this crate's grandparent (`crates/lint/../..`).
fn detect_root() -> PathBuf {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    Path::new(option_env!("CARGO_MANIFEST_DIR").unwrap_or(".")).join("../..")
}

fn load_allowlist(path: &Path, explicit: bool) -> Result<Vec<AllowEntry>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_allowlist(&text),
        // A missing default allowlist just means "nothing is allowed".
        Err(_) if !explicit => Ok(Vec::new()),
        Err(e) => Err(format!("cannot read allowlist {}: {e}", path.display())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = opts.root.clone().unwrap_or_else(detect_root);
    let result = if opts.files.is_empty() {
        let allow_path = opts.allowlist.clone().unwrap_or_else(|| root.join("lint-allow.txt"));
        load_allowlist(&allow_path, opts.allowlist.is_some())
            .and_then(|allowlist| lint_workspace(&root, &allowlist, opts.strict))
    } else {
        lint_files_all_rules(&root, &opts.files)
    };
    match result {
        Ok(report) => {
            if opts.json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            ExitCode::from(report.exit_code())
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
