//! The lint catalog: repo-specific rules the compiler cannot express.
//!
//! | Rule | Name                   | Guards                                                  |
//! |------|------------------------|---------------------------------------------------------|
//! | L1   | determinism            | no wall-clock or entropy sources, no hash-ordered maps   |
//! | L2   | level-arithmetic       | no raw `+`/`-`/`as` on level values outside `mis::levels`|
//! | L3   | panic-freedom          | no `unwrap`/`expect`/`panic!`/indexing in protocol paths, the snapshot codec, and everything they transitively call |
//! | L4   | rng-discipline         | all entropy flows through `beeping::rng`; no duplicate `aux_rng` purpose streams |
//! | L5   | concurrency-discipline | no `static mut`; sync primitives only in sanctioned modules; `unsafe` requires `// SAFETY:` |
//! | L6   | cast-audit             | no truncating `as` casts to narrow integer types         |
//!
//! Rules run on token streams ([`crate::lexer`]) with structural context
//! from [`crate::parse`]: `#[cfg(test)]`/`#[test]` regions are exempt
//! (tests may use whatever they like). L3 seeds from the protocol hot-path
//! roots (`transmit`, `receive`, `step`, the `resumable` tick path, and
//! every function of the harness snapshot codec — its decoder consumes
//! untrusted bytes and must return typed errors, never panic) and
//! propagates through the workspace call graph ([`crate::callgraph`]), so a
//! panic two calls below `step` is still a finding.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, DefId};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::parse::{index_file, FileIndex, PurposeArg};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// Determinism: forbid entropy/time sources and hash-ordered containers.
    L1,
    /// Level arithmetic: forbid raw arithmetic on level values.
    L2,
    /// Panic-freedom: forbid panicking constructs in protocol hot paths and
    /// everything reachable from them.
    L3,
    /// RNG discipline: all entropy through `beeping::rng`; unique purposes.
    L4,
    /// Concurrency discipline: sanctioned sync primitives only; `// SAFETY:`.
    L5,
    /// Cast audit: no truncating `as` casts to narrow integer types.
    L6,
}

impl RuleId {
    /// Short machine name (`L1`…).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
            RuleId::L6 => "L6",
        }
    }

    /// Human-readable rule title.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::L1 => "determinism",
            RuleId::L2 => "level-arithmetic",
            RuleId::L3 => "panic-freedom",
            RuleId::L4 => "rng-discipline",
            RuleId::L5 => "concurrency-discipline",
            RuleId::L6 => "cast-audit",
        }
    }

    /// Every rule, in catalog order.
    pub fn all() -> [RuleId; 6] {
        [RuleId::L1, RuleId::L2, RuleId::L3, RuleId::L4, RuleId::L5, RuleId::L6]
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What is wrong and what to use instead.
    pub message: String,
    /// The trimmed source line, for display and allowlist matching.
    pub snippet: String,
}

/// One source file queued for a workspace lint pass.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw source text.
    pub source: String,
    /// Rules in scope for this file (usually [`rules_for`]).
    pub rules: Vec<RuleId>,
}

/// Which rules apply to a workspace-relative path (forward slashes).
///
/// The scope is part of the lint contract (documented in DESIGN.md §7):
///
/// - **L1** covers the crates whose behavior must be a pure function of the
///   seed: `beeping`, `mis`, `baselines` and the graph generators get the
///   full catalog (entropy, wall clocks, hash containers). Every *other*
///   crate's `src/` gets the wall-clock subset only (`Instant`/`SystemTime`)
///   — timing goes through `telemetry::Stopwatch`, so the `telemetry` crate
///   itself is the single sanctioned home of wall clocks and is exempt.
/// - **L2** covers the crates that manipulate levels; `mis/src/levels.rs`
///   *is* the sanctioned arithmetic and is exempt.
/// - **L3** covers every crate that implements protocol hot paths, plus the
///   harness snapshot codec: a crashed run's only way back is its snapshot,
///   so loading one — arbitrary bytes after disk corruption — must produce
///   a typed `SnapshotError`, never a panic. Reachable callees are checked
///   wherever they live, even in crates outside this scope.
/// - **L4/L5/L6** cover every crate's `src/` tree: RNG, concurrency and
///   cast discipline are workspace-wide. `beeping/src/rng.rs` and the
///   graph-generator seeding chokepoint are the sanctioned homes of RNG
///   construction and are exempt from L4.
pub fn rules_for(path: &str) -> Vec<RuleId> {
    let mut rules = Vec::new();
    let protocol_crate = path.starts_with("crates/beeping/src/")
        || path.starts_with("crates/mis/src/")
        || path.starts_with("crates/baselines/src/");
    if protocol_crate
        || path.starts_with("crates/graphs/src/generators/")
        || wall_clock_scope_only(path)
    {
        rules.push(RuleId::L1);
    }
    if (path.starts_with("crates/mis/src/") || path.starts_with("crates/baselines/src/"))
        && path != "crates/mis/src/levels.rs"
    {
        rules.push(RuleId::L2);
    }
    if protocol_crate || is_snapshot_codec(path) {
        rules.push(RuleId::L3);
    }
    if workspace_src(path) {
        if !l4_sanctioned(path) {
            rules.push(RuleId::L4);
        }
        rules.push(RuleId::L5);
        rules.push(RuleId::L6);
    }
    rules
}

/// Any crate's `src/` tree — the scope of the workspace-wide disciplines
/// (L4/L5/L6). Test and fixture trees stay out of scope.
fn workspace_src(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// The sanctioned homes of RNG construction: `beeping::rng` (the seeding
/// vocabulary itself) and the graph generators' `rng_from_seed` chokepoint
/// (`graphs` sits below `beeping` in the dependency order, so it cannot
/// call into it).
fn l4_sanctioned(path: &str) -> bool {
    path == "crates/beeping/src/rng.rs" || path == "crates/graphs/src/generators/mod.rs"
}

/// Modules sanctioned to own sync primitives (threads, locks, atomics):
///
/// - `harness::supervisor` — the watchdog thread around a supervised run;
/// - `beeping::par` — the sharded-scatter kernel (ROADMAP item 1). Its
///   parallelism is pure data decomposition over `std::thread::scope` with
///   word-aligned disjoint `&mut` splits — no locks, no atomics — and its
///   bit-identity to the sequential engines is pinned by the
///   `engine_differential` proptests at several thread counts.
fn l5_sync_sanctioned(path: &str) -> bool {
    path == "crates/harness/src/supervisor.rs" || path == "crates/beeping/src/par.rs"
}

/// The harness snapshot codec, where *every* function is an L3 hot path:
/// the decoder is handed whatever bytes survived a crash, so `unwrap`,
/// panicking macros and unchecked indexing are all banned throughout (use
/// slice patterns and `.get()`; see `harness::snapshot`).
fn is_snapshot_codec(path: &str) -> bool {
    path == "crates/harness/src/snapshot.rs"
}

/// Paths where L1 enforces only its wall-clock subset (`Instant`,
/// `SystemTime`): crate sources outside the full-determinism scope of
/// [`rules_for`]. The `telemetry` crate is exempt — it wraps the wall clock
/// behind `Stopwatch`/`PhaseTimer` precisely so nothing else has to touch
/// `std::time` — and fixture/test trees (no `/src/` segment) stay out of
/// scope entirely.
fn wall_clock_scope_only(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.starts_with("crates/telemetry/src/")
        && !path.starts_with("crates/beeping/src/")
        && !path.starts_with("crates/mis/src/")
        && !path.starts_with("crates/baselines/src/")
        && !path.starts_with("crates/graphs/src/generators/")
}

/// One file, tokenized and structurally indexed, ready for rule passes.
struct Prepared<'a> {
    path: &'a str,
    rules: &'a [RuleId],
    tokens: Vec<Token>,
    lines: Vec<&'a str>,
    index: FileIndex,
}

/// Runs every in-scope rule over `files`, including the workspace-level
/// passes (transitive L3 panic-freedom, L4 purpose-collision detection)
/// that need all files at once. Findings come back sorted by
/// (file, line, col, rule).
pub fn check_workspace(files: &[SourceFile]) -> Vec<Finding> {
    let prepared: Vec<Prepared> = files
        .iter()
        .map(|f| {
            let tokens = tokenize(&f.source);
            let index = index_file(&tokens);
            Prepared {
                path: &f.path,
                rules: &f.rules,
                tokens,
                lines: f.source.lines().collect(),
                index,
            }
        })
        .collect();
    let mut findings = Vec::new();
    for p in &prepared {
        for &rule in p.rules {
            match rule {
                RuleId::L1 => check_determinism(p, &mut findings),
                RuleId::L2 => check_level_arithmetic(p, &mut findings),
                RuleId::L3 => {} // workspace pass below
                RuleId::L4 => check_rng_discipline(p, &mut findings),
                RuleId::L5 => check_concurrency_discipline(p, &mut findings),
                RuleId::L6 => check_cast_audit(p, &mut findings),
            }
        }
    }
    check_panic_freedom(&prepared, &mut findings);
    check_purpose_collisions(&prepared, &mut findings);
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    findings
}

fn snippet(lines: &[&str], line: u32) -> String {
    lines.get(line as usize - 1).map_or(String::new(), |l| l.trim().to_string())
}

fn push(
    findings: &mut Vec<Finding>,
    rule: RuleId,
    file: &str,
    tok: &Token,
    lines: &[&str],
    message: String,
) {
    findings.push(Finding {
        rule,
        file: file.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: snippet(lines, tok.line),
    });
}

/// L1: sources of nondeterminism. `HashMap`/`HashSet` are banned outright
/// (not merely their iteration): std's hasher is randomly keyed per
/// instance, so any escape of their order — iteration, debug printing,
/// `extend` — silently breaks bit-reproducibility per seed. Use `BTreeMap`/
/// `BTreeSet` or sorted `Vec`s.
///
/// On [`wall_clock_scope_only`] paths (driver crates like `experiments` or
/// `analysis`) only the wall-clock bans apply: those crates may keep hash
/// containers for reporting, but raw `Instant`/`SystemTime` must be replaced
/// with `telemetry::Stopwatch` so timing stays observational.
fn check_determinism(p: &Prepared, findings: &mut Vec<Finding>) {
    const WALL_CLOCK: &[(&str, &str)] = &[
        ("Instant", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
        ("SystemTime", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
    ];
    const BANNED: &[(&str, &str)] = &[
        ("thread_rng", "seed a Pcg64Mcg via beeping::rng instead of OS entropy"),
        ("from_entropy", "seed a Pcg64Mcg via beeping::rng instead of OS entropy"),
        ("OsRng", "seed a Pcg64Mcg via beeping::rng instead of OS entropy"),
        ("Instant", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
        ("SystemTime", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
        ("HashMap", "hash order is randomly keyed per process; use BTreeMap or a sorted Vec"),
        ("HashSet", "hash order is randomly keyed per process; use BTreeSet or a sorted Vec"),
    ];
    let banned: &[(&str, &str)] = if wall_clock_scope_only(p.path) { WALL_CLOCK } else { BANNED };
    for (i, tok) in p.tokens.iter().enumerate() {
        if p.index.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, why)) = banned.iter().find(|(name, _)| tok.text == *name) {
            push(findings, RuleId::L1, p.path, tok, &p.lines, format!("use of `{name}`: {why}"));
        }
        // `rand::random` draws from the thread-local entropy RNG.
        if !wall_clock_scope_only(p.path)
            && tok.is_ident("rand")
            && p.tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && p.tokens.get(i + 2).is_some_and(|t| t.is_ident("random"))
        {
            push(
                findings,
                RuleId::L1,
                p.path,
                tok,
                &p.lines,
                "use of `rand::random`: draws from thread-local OS entropy; \
                 use the simulation's seeded streams"
                    .to_string(),
            );
        }
    }
}

/// Identifiers treated as level values by L2.
fn is_level_ident(t: &Token) -> bool {
    t.kind == TokenKind::Ident
        && (t.text == "level"
            || t.text == "lmax"
            || t.text == "ell"
            || t.text == "l"
            || t.text.ends_with("_level")
            || t.text.ends_with("_lmax"))
}

const ARITH: &[&str] = &["+", "-", "+=", "-="];

/// L2: raw arithmetic on level values. Every `ℓ` transition must go through
/// the saturating helpers in `mis::levels` so the state space `[-ℓmax, ℓmax]`
/// can never be left; a bare `level + 1` reintroduces exactly the overflow
/// the paper's fault model excludes.
fn check_level_arithmetic(p: &Prepared, findings: &mut Vec<Finding>) {
    let mut reported: Option<(u32, u32)> = None;
    for (i, tok) in p.tokens.iter().enumerate() {
        if p.index.in_test[i] {
            continue;
        }
        let fires = if tok.kind == TokenKind::Punct && ARITH.contains(&tok.text.as_str()) {
            // `level + …`, `… - lmax`, unary `-lmax`.
            p.tokens.get(i.wrapping_sub(1)).is_some_and(is_level_ident)
                || p.tokens.get(i + 1).is_some_and(is_level_ident)
        } else if tok.is_ident("as") {
            // `lmax as i64` — casts silently truncate corrupted values
            // instead of clamping them.
            p.tokens.get(i.wrapping_sub(1)).is_some_and(is_level_ident)
        } else {
            false
        };
        if fires && reported != Some((tok.line, tok.col)) {
            reported = Some((tok.line, tok.col));
            push(
                findings,
                RuleId::L2,
                p.path,
                tok,
                &p.lines,
                format!(
                    "raw `{}` on a level value: route transitions through the \
                     saturating helpers in mis::levels (update_level, clamp_level, …)",
                    tok.text
                ),
            );
        }
    }
}

/// Names that make a non-test `fn` an L3 root in any L3-scoped file.
fn is_hot_name(name: &str) -> bool {
    matches!(name, "transmit" | "receive" | "step")
}

/// Marks tokens inside `assert!`/`debug_assert!`-family macro arguments.
/// The assert family is L3-exempt wholesale — it documents model violations
/// — so an `.unwrap()` inside `debug_assert_eq!(…)` arguments is exempt
/// with it (it evaluates under the same debug-only, programming-error
/// regime as the assertion itself).
fn mark_assert_regions(tokens: &[Token]) -> Vec<bool> {
    const ASSERT_MACROS: &[&str] =
        &["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];
    let n = tokens.len();
    let mut in_assert = vec![false; n];
    let mut i = 0;
    while i < n {
        if tokens[i].kind == TokenKind::Ident
            && ASSERT_MACROS.contains(&tokens[i].text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct("(") || t.is_punct("["))
        {
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < n {
                if tokens[j].is_punct("(") || tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct(")") || tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                in_assert[j] = true;
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_assert
}

/// L3 (workspace pass): panic-freedom, transitively. A panic inside
/// `transmit`/`receive`/`step` — or anything they call — takes down the
/// whole simulated network on a single node's bad state, the opposite of
/// self-stabilization, where arbitrary state must be *recovered from*.
///
/// Roots: every non-test `fn` named `transmit`/`receive`/`step` in an
/// L3-scoped file, the `resumable` run's `tick` (the supervised hot loop),
/// and every function of the snapshot codec. The call graph then propagates
/// hotness into every reachable callee, wherever it lives; transitive
/// findings carry the call chain from the root.
///
/// `assert!`/`debug_assert!` stay allowed: they document model violations
/// (programming errors), not state corruption. Slice indexing is checked
/// only at the roots where the index can come from untrusted data:
/// `transmit`/`receive` (per-node paths) and the snapshot codec (arbitrary
/// bytes after a crash); the simulator's `step` owns its index ranges, and
/// transitive callees are covered for panics, not indexing.
fn check_panic_freedom(prepared: &[Prepared], findings: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let indexes: Vec<&FileIndex> = prepared.iter().map(|p| &p.index).collect();
    let graph = CallGraph::build(&indexes);
    let mut roots: Vec<DefId> = Vec::new();
    for (fi, p) in prepared.iter().enumerate() {
        if !p.rules.contains(&RuleId::L3) {
            continue;
        }
        let codec = is_snapshot_codec(p.path);
        for (di, def) in p.index.fns.iter().enumerate() {
            if def.in_test {
                continue;
            }
            let hot = codec
                || is_hot_name(&def.bare)
                || (def.bare == "tick" && p.path == "crates/mis/src/resumable.rs");
            if hot {
                roots.push((fi, di));
            }
        }
    }
    let reach = graph.reachable(&indexes, &roots);
    for (fi, p) in prepared.iter().enumerate() {
        let in_assert = mark_assert_regions(&p.tokens);
        for (i, tok) in p.tokens.iter().enumerate() {
            if p.index.in_test[i] || in_assert[i] {
                continue;
            }
            let Some(di) = p.index.enclosing[i] else { continue };
            let Some(chain) = reach.get(&(fi, di)) else { continue };
            let def = &p.index.fns[di];
            let is_root = chain.len() == 1;
            let via = || {
                if is_root {
                    format!("protocol hot path `{}`", def.bare)
                } else {
                    format!("`{}`, reachable from hot path via `{}`", def.bare, chain.join(" → "))
                }
            };
            // `self.expect(…)` calling a method the enclosing impl type
            // defines is a domain helper, not `Option::expect` — the graph
            // pulls its body into the hot set instead of flagging the call.
            let own_method_call =
                || {
                    p.tokens.get(i.wrapping_sub(2)).is_some_and(|t| t.is_ident("self"))
                        && def.qualified.as_deref().and_then(|q| q.split_once("::")).is_some_and(
                            |(ty, _)| graph.has_qualified(&format!("{ty}::{}", tok.text)),
                        )
                };
            if (tok.is_ident("unwrap") || tok.is_ident("expect"))
                && p.tokens.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct("."))
                && p.tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
                && !own_method_call()
            {
                push(
                    findings,
                    RuleId::L3,
                    p.path,
                    tok,
                    &p.lines,
                    format!(
                        "`.{}()` in {}: a corrupted state must not panic the \
                         network; handle the None/Err arm explicitly",
                        tok.text,
                        via()
                    ),
                );
            }
            if tok.kind == TokenKind::Ident
                && PANIC_MACROS.contains(&tok.text.as_str())
                && p.tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
            {
                push(
                    findings,
                    RuleId::L3,
                    p.path,
                    tok,
                    &p.lines,
                    format!(
                        "`{}!` in {}: self-stabilization requires recovering \
                         from arbitrary state, not panicking on it",
                        tok.text,
                        via()
                    ),
                );
            }
            let untrusted_index_path = is_root
                && (is_snapshot_codec(p.path)
                    || matches!(def.bare.as_str(), "transmit" | "receive"));
            if untrusted_index_path
                && tok.is_punct("[")
                && p.tokens.get(i.wrapping_sub(1)).is_some_and(|t| {
                    // `let [a, b] = …` is a slice *pattern* (compile-checked,
                    // cannot panic) and `for x in [..]` iterates an array
                    // literal — neither is an index expression.
                    (t.kind == TokenKind::Ident && !t.is_ident("let") && !t.is_ident("in"))
                        || t.is_punct("]")
                        || t.is_punct(")")
                })
            {
                push(
                    findings,
                    RuleId::L3,
                    p.path,
                    tok,
                    &p.lines,
                    "slice indexing in a per-node protocol path can panic on a \
                     corrupted index; use `.get()` or iterate"
                        .to_string(),
                );
            }
        }
    }
}

/// L4 (per-file half): ad-hoc RNG construction outside `beeping::rng`.
/// Every generator in the workspace derives from the master seed through
/// the purpose-separated SplitMix64 streams in `beeping::rng`; a stray
/// `seed_from_u64(42)` forks an unregistered stream whose draws silently
/// correlate with (or diverge from) the recorded trajectory.
fn check_rng_discipline(p: &Prepared, findings: &mut Vec<Finding>) {
    const BANNED: &[&str] =
        &["seed_from_u64", "from_seed", "from_rng", "SeedableRng", "StdRng", "SmallRng"];
    for (i, tok) in p.tokens.iter().enumerate() {
        if p.index.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if BANNED.contains(&tok.text.as_str()) {
            push(
                findings,
                RuleId::L4,
                p.path,
                tok,
                &p.lines,
                format!(
                    "use of `{}` outside beeping::rng: all entropy must flow through \
                     beeping::rng::{{node_rng, node_rngs, aux_rng, pcg_from_state}}",
                    tok.text
                ),
            );
        }
        // Direct generator construction: `Pcg64Mcg::new(…)` /
        // `Pcg64Mcg::from_state(…)` (the latter is also caught above when
        // written as a bare associated call).
        if tok.is_ident("Pcg64Mcg")
            && p.tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && p.tokens.get(i + 2).is_some_and(|t| t.is_ident("new") || t.is_ident("from_state"))
            && p.tokens.get(i + 3).is_some_and(|t| t.is_punct("(") || t.is_punct("::"))
        {
            push(
                findings,
                RuleId::L4,
                p.path,
                tok,
                &p.lines,
                "direct `Pcg64Mcg` construction: derive generators from the master \
                 seed via beeping::rng (node_rng, aux_rng, pcg_from_state)"
                    .to_string(),
            );
        }
    }
}

/// L4 (workspace half): duplicate `aux_rng` purpose streams. `aux_rng(seed,
/// purpose)` keys an independent SplitMix64 stream by `purpose`; two call
/// sites using the same value under *different* purpose constants (or raw
/// literals) believe they own independent randomness but draw the same
/// sequence — a silent cross-contamination of fault/churn/adversary streams.
/// Named constants are resolved through the workspace `const NAME: u64`
/// table, so one shared constant used from several files is (correctly) a
/// single purpose.
fn check_purpose_collisions(prepared: &[Prepared], findings: &mut Vec<Finding>) {
    let mut consts: BTreeMap<&str, u64> = BTreeMap::new();
    for p in prepared {
        for (name, &value) in &p.index.consts {
            consts.insert(name, value);
        }
    }
    // value → purpose key → first site per key (file idx, line, col).
    #[allow(clippy::type_complexity)]
    let mut by_value: BTreeMap<u64, BTreeMap<String, Vec<(usize, u32, u32)>>> = BTreeMap::new();
    for (fi, p) in prepared.iter().enumerate() {
        if !p.rules.contains(&RuleId::L4) {
            continue;
        }
        for call in &p.index.aux_calls {
            if call.in_test {
                continue;
            }
            let (value, key) = match &call.arg {
                PurposeArg::Literal(v) => (*v, format!("literal at {}:{}", p.path, call.line)),
                PurposeArg::Named(name) => match consts.get(name.as_str()) {
                    Some(&v) => (v, format!("const {name}")),
                    None => continue, // not in the u64 const table: unresolvable
                },
                PurposeArg::Opaque => continue,
            };
            by_value
                .entry(value)
                .or_default()
                .entry(key)
                .or_default()
                .push((fi, call.line, call.col));
        }
    }
    for (value, keys) in &by_value {
        if keys.len() < 2 {
            continue;
        }
        let names: Vec<&str> = keys.keys().map(String::as_str).collect();
        for (key, sites) in keys {
            let others: Vec<&str> = names.iter().filter(|&&n| n != key).copied().collect();
            for &(fi, line, col) in sites {
                let p = &prepared[fi];
                findings.push(Finding {
                    rule: RuleId::L4,
                    file: p.path.to_string(),
                    line,
                    col,
                    message: format!(
                        "aux_rng purpose {value:#x} ({key}) collides with {}: colliding \
                         purposes draw the *same* stream; give each purpose a unique \
                         constant in a shared table",
                        others.join(", ")
                    ),
                    snippet: snippet(&p.lines, line),
                });
            }
        }
    }
}

/// L5: concurrency discipline, ahead of the parallel scatter engine.
/// `static mut` is flagged unconditionally (tests included — it is UB-prone
/// everywhere). Sync primitives are confined to sanctioned modules
/// ([`l5_sync_sanctioned`]) so determinism-bearing code cannot grow ad-hoc
/// threading; and every `unsafe` must carry a `// SAFETY:` comment on the
/// preceding line (the lexer drops comments, so this check reads the raw
/// source lines).
fn check_concurrency_discipline(p: &Prepared, findings: &mut Vec<Finding>) {
    const SYNC: &[&str] = &[
        "Mutex",
        "RwLock",
        "Condvar",
        "Barrier",
        "OnceLock",
        "LazyLock",
        "JoinHandle",
        "mpsc",
        "AtomicBool",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI8",
        "AtomicI16",
        "AtomicI32",
        "AtomicI64",
        "AtomicIsize",
        "AtomicPtr",
        "rayon",
        "crossbeam",
    ];
    let sanctioned = l5_sync_sanctioned(p.path);
    for (i, tok) in p.tokens.iter().enumerate() {
        if tok.is_ident("static") && p.tokens.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
            push(
                findings,
                RuleId::L5,
                p.path,
                tok,
                &p.lines,
                "`static mut` is unsynchronized shared state — instant UB under the \
                 parallel engine; use an atomic in a sanctioned module or pass state \
                 explicitly"
                    .to_string(),
            );
            continue;
        }
        if p.index.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if !sanctioned
            && (SYNC.contains(&tok.text.as_str())
                || (tok.is_ident("thread")
                    && p.tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && p.tokens.get(i + 2).is_some_and(|t| {
                        t.is_ident("spawn") || t.is_ident("scope") || t.is_ident("Builder")
                    })))
        {
            push(
                findings,
                RuleId::L5,
                p.path,
                tok,
                &p.lines,
                format!(
                    "use of `{}` outside sanctioned concurrency modules \
                     (harness::supervisor, beeping::par): threads and shared-state \
                     primitives may only live behind an audited boundary so the \
                     EngineMode bit-identity contract survives parallelism",
                    tok.text
                ),
            );
        }
        if tok.is_ident("unsafe") {
            let prev_line = (tok.line as usize).checked_sub(2).and_then(|ix| p.lines.get(ix));
            if !prev_line.is_some_and(|l| l.contains("SAFETY:")) {
                push(
                    findings,
                    RuleId::L5,
                    p.path,
                    tok,
                    &p.lines,
                    "`unsafe` without a `// SAFETY:` comment on the preceding line: \
                     every unsafe block must state the invariant that makes it sound"
                        .to_string(),
                );
            }
        }
    }
}

/// L6: truncating `as` casts. On the supported 64-bit targets, casts *to*
/// `u64`/`i64`/`u128`/`usize` from the workspace's integer vocabulary are
/// value-preserving, so only the narrow targets are flagged — a token-level
/// analyzer cannot see the source type, and this asymmetric policy keeps
/// the rule useful without type inference (documented in DESIGN.md §7.1).
/// Use `T::try_from` with explicit overflow handling, `T::from` where the
/// source is provably narrower, or an allowlist entry with a bounds
/// justification.
fn check_cast_audit(p: &Prepared, findings: &mut Vec<Finding>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (i, tok) in p.tokens.iter().enumerate() {
        if p.index.in_test[i] || !tok.is_ident("as") {
            continue;
        }
        let Some(target) = p.tokens.get(i + 1) else { continue };
        if target.kind == TokenKind::Ident && NARROW.contains(&target.text.as_str()) {
            push(
                findings,
                RuleId::L6,
                p.path,
                tok,
                &p.lines,
                format!(
                    "`as {}` can silently truncate: use `{}::try_from` with explicit \
                     overflow handling (or `{}::from` when the source is provably \
                     narrower), or allowlist with a bounds justification",
                    target.text, target.text, target.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str, rules: &[RuleId]) -> Vec<Finding> {
        check_workspace(&[SourceFile {
            path: path.to_string(),
            source: src.to_string(),
            rules: rules.to_vec(),
        }])
    }

    fn run2(files: &[(&str, &str, &[RuleId])]) -> Vec<Finding> {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(path, src, rules)| SourceFile {
                path: path.to_string(),
                source: src.to_string(),
                rules: rules.to_vec(),
            })
            .collect();
        check_workspace(&files)
    }

    #[test]
    fn scope_mapping() {
        assert_eq!(
            rules_for("crates/mis/src/algorithm1.rs"),
            vec![RuleId::L1, RuleId::L2, RuleId::L3, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        assert_eq!(
            rules_for("crates/mis/src/levels.rs"),
            vec![RuleId::L1, RuleId::L3, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        assert_eq!(
            rules_for("crates/graphs/src/generators/random.rs"),
            vec![RuleId::L1, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        // The generator seeding chokepoint is L4-sanctioned; so is rng.rs.
        assert_eq!(
            rules_for("crates/graphs/src/generators/mod.rs"),
            vec![RuleId::L1, RuleId::L5, RuleId::L6]
        );
        assert_eq!(
            rules_for("crates/beeping/src/rng.rs"),
            vec![RuleId::L1, RuleId::L3, RuleId::L5, RuleId::L6]
        );
        // Driver/analysis crates get the wall-clock-only L1 subset plus the
        // workspace-wide disciplines.
        assert_eq!(
            rules_for("crates/graphs/src/graph.rs"),
            vec![RuleId::L1, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        assert_eq!(
            rules_for("crates/experiments/src/scale.rs"),
            vec![RuleId::L1, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        assert_eq!(
            rules_for("crates/beeping/src/sim.rs"),
            vec![RuleId::L1, RuleId::L3, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        // Telemetry is the sanctioned wall-clock home (no L1) but still gets
        // the workspace disciplines; tests/fixtures are out of scope.
        assert_eq!(
            rules_for("crates/telemetry/src/lib.rs"),
            vec![RuleId::L4, RuleId::L5, RuleId::L6]
        );
        assert_eq!(rules_for("crates/lint/tests/fixtures/l1_determinism.rs"), Vec::<RuleId>::new());
        // The snapshot codec gets panic-freedom on top of the wall-clock
        // subset; the rest of the harness crate is a driver.
        assert_eq!(
            rules_for("crates/harness/src/snapshot.rs"),
            vec![RuleId::L1, RuleId::L3, RuleId::L4, RuleId::L5, RuleId::L6]
        );
        assert_eq!(
            rules_for("crates/harness/src/supervisor.rs"),
            vec![RuleId::L1, RuleId::L4, RuleId::L5, RuleId::L6]
        );
    }

    #[test]
    fn l3_covers_every_fn_of_the_snapshot_codec() {
        let codec = "crates/harness/src/snapshot.rs";
        // Any function in the codec is a hot path — helper names included.
        let f = run(codec, "fn parse_header(x: Option<u8>) -> u8 { x.unwrap() }", &[RuleId::L3]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("parse_header"));
        // Indexing fires too: decode input is whatever survived the crash.
        assert_eq!(run(codec, "fn decode(b: &[u8]) -> u8 { b[0] }", &[RuleId::L3]).len(), 1);
        // But the same helpers outside the codec stay cold.
        let cold = run("crates/harness/src/supervisor.rs", "fn f() { x.unwrap(); }", &[RuleId::L3]);
        assert!(cold.is_empty());
    }

    #[test]
    fn l3_slice_patterns_are_not_indexing() {
        let codec = "crates/harness/src/snapshot.rs";
        let src = "fn decode(pair: &[u8]) -> u8 { let [a, b] = pair else { return 0 }; *a }";
        assert!(run(codec, src, &[RuleId::L3]).is_empty());
        let arr = "fn decode() -> u8 { let mut t = 0; for x in [1, 2] { t += x; } t }";
        assert!(run(codec, arr, &[RuleId::L3]).is_empty());
        // An actual index expression right after a `let` binding still fires.
        let idx = "fn decode(pair: &[u8]) -> u8 { let a = pair[0]; a }";
        assert_eq!(run(codec, idx, &[RuleId::L3]).len(), 1);
    }

    #[test]
    fn wall_clock_subset_outside_core_scope() {
        let clock = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        // Driver crate: Instant flagged (twice — use + call), hash maps not.
        let f = run("crates/experiments/src/perf.rs", clock, &[RuleId::L1]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("telemetry::Stopwatch"));
        let hash = "fn f() { let m = std::collections::HashMap::new(); }";
        assert!(run("crates/experiments/src/perf.rs", hash, &[RuleId::L1]).is_empty());
        // Telemetry is never handed L1 by rules_for; core scope still bans
        // the full catalog elsewhere.
        assert!(!rules_for("crates/telemetry/src/lib.rs").contains(&RuleId::L1));
        assert_eq!(run("crates/beeping/src/sim.rs", hash, &[RuleId::L1]).len(), 1);
    }

    #[test]
    fn l1_flags_hash_containers_and_entropy() {
        let src = "use std::collections::HashMap;\nfn f() { let r = thread_rng(); }\n";
        let f = run("x.rs", src, &[RuleId::L1]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("HashMap"));
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn l1_ignores_tests_comments_strings() {
        let src = "// HashMap is fine here\nfn f() { let s = \"HashSet\"; }\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(run("x.rs", src, &[RuleId::L1]).is_empty());
    }

    #[test]
    fn l2_flags_raw_level_arithmetic() {
        let src = "fn f(level: i32, lmax: i32) -> i32 { level + 1 }\n";
        let f = run("x.rs", src, &[RuleId::L2]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("saturating helpers"));
    }

    #[test]
    fn l2_flags_casts_and_unary_minus() {
        assert_eq!(run("x.rs", "fn f() { g(lmax as i64); }", &[RuleId::L2]).len(), 1);
        assert_eq!(run("x.rs", "fn f() { g(-lmax); }", &[RuleId::L2]).len(), 1);
    }

    #[test]
    fn l2_allows_comparisons_and_other_idents() {
        assert!(run("x.rs", "fn f() { if l < lmax { g(count + 1); } }", &[RuleId::L2]).is_empty());
    }

    #[test]
    fn l3_fires_only_in_hot_paths() {
        let hot = "fn receive(&self) { x.unwrap(); }";
        let cold = "fn helper() { x.unwrap(); }";
        assert_eq!(run("x.rs", hot, &[RuleId::L3]).len(), 1);
        assert!(run("x.rs", cold, &[RuleId::L3]).is_empty());
    }

    #[test]
    fn l3_flags_panics_and_indexing() {
        let src = "fn transmit(&self) { panic!(\"boom\"); let y = xs[i]; }";
        let f = run("x.rs", src, &[RuleId::L3]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn l3_allows_asserts_and_array_literals() {
        let src = "fn step(&mut self) { assert!(ok, \"bad\"); let a = [0; 4]; }";
        assert!(run("x.rs", src, &[RuleId::L3]).is_empty());
    }

    #[test]
    fn l3_nested_fn_scoping() {
        // A hot-path name nested in a cold fn is a root of its own; the cold
        // outer fn stays cold (it never calls the inner one).
        let src = "fn outer() { fn receive() { a.unwrap(); } b.unwrap(); }";
        let f = run("x.rs", src, &[RuleId::L3]);
        assert_eq!(f.len(), 1);
        assert!(f[0].snippet.contains("a.unwrap"));
    }

    #[test]
    fn test_attribute_exempts_following_fn() {
        let src = "#[test]\nfn step() { x.unwrap(); }\nfn receive() { y.unwrap(); }";
        let f = run("x.rs", src, &[RuleId::L3]);
        assert_eq!(f.len(), 1);
        assert!(f[0].snippet.contains("y.unwrap"));
    }

    #[test]
    fn l3_transitive_through_the_call_graph() {
        // The panic sits two edges below `step`, in a *different file*.
        let f = run2(&[
            ("a.rs", "fn step() { helper_a(); }", &[RuleId::L3]),
            ("b.rs", "fn helper_a() { helper_b(); }\nfn helper_b() { x.unwrap(); }", &[RuleId::L3]),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "b.rs");
        assert!(f[0].message.contains("step → helper_a → helper_b"), "{}", f[0].message);
    }

    #[test]
    fn l3_transitive_ignores_test_callees_and_uncalled_fns() {
        let f = run2(&[
            ("a.rs", "fn step() { helper(); }", &[RuleId::L3]),
            (
                "b.rs",
                "fn helper() {}\nfn lonely() { x.unwrap(); }\n\
                 #[cfg(test)]\nmod t { fn helper2() { y.unwrap(); } }",
                &[RuleId::L3],
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l3_transitive_skips_indexing_in_callees() {
        // Indexing is a root-only check: callees own their index ranges.
        let f = run2(&[
            ("a.rs", "fn step() { helper(); }", &[RuleId::L3]),
            ("b.rs", "fn helper(xs: &[u8]) -> u8 { xs[0] }", &[RuleId::L3]),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l3_tick_is_a_root_only_in_resumable() {
        let hot = run("crates/mis/src/resumable.rs", "fn tick() { x.unwrap(); }", &[RuleId::L3]);
        assert_eq!(hot.len(), 1);
        let cold = run("crates/mis/src/runner.rs", "fn tick() { x.unwrap(); }", &[RuleId::L3]);
        assert!(cold.is_empty());
    }

    #[test]
    fn l4_flags_adhoc_seeding() {
        let src = "fn f(seed: u64) { let r = Pcg64Mcg::seed_from_u64(seed); }";
        let f = run("crates/experiments/src/x.rs", src, &[RuleId::L4]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("beeping::rng"));
        let direct = "fn f() { let r = Pcg64Mcg::new(1, 2); }";
        assert_eq!(run("crates/experiments/src/x.rs", direct, &[RuleId::L4]).len(), 1);
        // Tests may seed however they like.
        let test = "#[cfg(test)]\nmod t { fn f() { Pcg64Mcg::seed_from_u64(7); } }";
        assert!(run("crates/experiments/src/x.rs", test, &[RuleId::L4]).is_empty());
    }

    #[test]
    fn l4_flags_duplicate_literal_purposes() {
        let src = "fn a(s: u64) { aux_rng(s, 0xADA); }\nfn b(s: u64) { aux_rng(s, 0xADA); }";
        let f = run("crates/mis/src/x.rs", src, &[RuleId::L4]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("collide"));
    }

    #[test]
    fn l4_shared_const_is_one_purpose() {
        // One constant used from two files is a single stream — no collision.
        let f = run2(&[
            (
                "a.rs",
                "pub const FAULT_RNG_PURPOSE: u64 = 0xFA17;\n\
                 fn a(s: u64) { aux_rng(s, FAULT_RNG_PURPOSE); }",
                &[RuleId::L4],
            ),
            ("b.rs", "fn b(s: u64) { aux_rng(s, FAULT_RNG_PURPOSE); }", &[RuleId::L4]),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l4_two_consts_same_value_collide() {
        let src = "const A: u64 = 7;\nconst B: u64 = 7;\n\
                   fn a(s: u64) { aux_rng(s, A); }\nfn b(s: u64) { aux_rng(s, B); }";
        let f = run("crates/mis/src/x.rs", src, &[RuleId::L4]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("const A") || f[0].message.contains("const B"));
    }

    #[test]
    fn l5_flags_static_mut_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod t { static mut COUNT: u32 = 0; }";
        assert_eq!(run("crates/mis/src/x.rs", src, &[RuleId::L5]).len(), 1);
    }

    #[test]
    fn l5_sync_primitives_only_in_sanctioned_modules() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }";
        let f = run("crates/mis/src/x.rs", src, &[RuleId::L5]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(run("crates/harness/src/supervisor.rs", src, &[RuleId::L5]).is_empty());
        assert!(run("crates/beeping/src/par.rs", src, &[RuleId::L5]).is_empty());
    }

    #[test]
    fn l5_scoped_threads_count_as_threading() {
        // `thread::scope` is how the parallel engine spawns — unsanctioned
        // modules must not get a pass just because they avoid `spawn`.
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let f = run("crates/mis/src/x.rs", src, &[RuleId::L5]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("thread"));
        assert!(run("crates/beeping/src/par.rs", src, &[RuleId::L5]).is_empty());
    }

    #[test]
    fn l5_unsafe_requires_safety_comment() {
        let bare = "fn f() {\n    unsafe { core() }\n}";
        let f = run("crates/mis/src/x.rs", bare, &[RuleId::L5]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SAFETY"));
        let documented =
            "fn f() {\n    // SAFETY: core() has no preconditions here.\n    unsafe { core() }\n}";
        assert!(run("crates/mis/src/x.rs", documented, &[RuleId::L5]).is_empty());
    }

    #[test]
    fn l6_flags_narrowing_casts_only() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        let f = run("crates/graphs/src/x.rs", src, &[RuleId::L6]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("try_from"));
        // Widening/same-width casts on 64-bit targets are not flagged.
        let wide = "fn f(x: u32) -> u64 { x as u64 + (x as usize as u64) }";
        assert!(run("crates/graphs/src/x.rs", wide, &[RuleId::L6]).is_empty());
        // Tests are exempt.
        let test = "#[test]\nfn t() { let x = 7u64 as u32; }";
        assert!(run("crates/graphs/src/x.rs", test, &[RuleId::L6]).is_empty());
    }
}
