//! The lint catalog: repo-specific rules the compiler cannot express.
//!
//! | Rule | Name            | Guards                                                  |
//! |------|-----------------|---------------------------------------------------------|
//! | L1   | determinism     | no wall-clock or entropy sources, no hash-ordered maps   |
//! | L2   | level-arithmetic| no raw `+`/`-`/`as` on level values outside `mis::levels`|
//! | L3   | panic-freedom   | no `unwrap`/`expect`/`panic!`/indexing in protocol paths and the snapshot codec |
//!
//! Rules run on token streams ([`crate::lexer`]) with light structural
//! context: `#[cfg(test)]`/`#[test]` regions are exempt (tests may use
//! whatever they like), and L3 only applies inside the protocol hot-path
//! functions (`transmit`, `receive`, `step`) plus the harness snapshot
//! codec (`crates/harness/src/snapshot.rs`), whose decoder consumes
//! untrusted bytes and must return typed errors, never panic.

use crate::lexer::{Token, TokenKind};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// Determinism: forbid entropy/time sources and hash-ordered containers.
    L1,
    /// Level arithmetic: forbid raw arithmetic on level values.
    L2,
    /// Panic-freedom: forbid panicking constructs in protocol hot paths.
    L3,
}

impl RuleId {
    /// Short machine name (`L1`…).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
        }
    }

    /// Human-readable rule title.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::L1 => "determinism",
            RuleId::L2 => "level-arithmetic",
            RuleId::L3 => "panic-freedom",
        }
    }

    /// Every rule, in catalog order.
    pub fn all() -> [RuleId; 3] {
        [RuleId::L1, RuleId::L2, RuleId::L3]
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What is wrong and what to use instead.
    pub message: String,
    /// The trimmed source line, for display and allowlist matching.
    pub snippet: String,
}

/// Which rules apply to a workspace-relative path (forward slashes).
///
/// The scope is part of the lint contract (documented in DESIGN.md):
///
/// - **L1** covers the crates whose behavior must be a pure function of the
///   seed: `beeping`, `mis`, `baselines` and the graph generators get the
///   full catalog (entropy, wall clocks, hash containers). Every *other*
///   crate's `src/` gets the wall-clock subset only (`Instant`/`SystemTime`)
///   — timing goes through `telemetry::Stopwatch`, so the `telemetry` crate
///   itself is the single sanctioned home of wall clocks and is exempt.
/// - **L2** covers the crates that manipulate levels; `mis/src/levels.rs`
///   *is* the sanctioned arithmetic and is exempt.
/// - **L3** covers every crate that implements protocol hot paths, plus the
///   harness snapshot codec: a crashed run's only way back is its snapshot,
///   so loading one — arbitrary bytes after disk corruption — must produce
///   a typed `SnapshotError`, never a panic.
pub fn rules_for(path: &str) -> Vec<RuleId> {
    let mut rules = Vec::new();
    let protocol_crate = path.starts_with("crates/beeping/src/")
        || path.starts_with("crates/mis/src/")
        || path.starts_with("crates/baselines/src/");
    if protocol_crate
        || path.starts_with("crates/graphs/src/generators/")
        || wall_clock_scope_only(path)
    {
        rules.push(RuleId::L1);
    }
    if (path.starts_with("crates/mis/src/") || path.starts_with("crates/baselines/src/"))
        && path != "crates/mis/src/levels.rs"
    {
        rules.push(RuleId::L2);
    }
    if protocol_crate || is_snapshot_codec(path) {
        rules.push(RuleId::L3);
    }
    rules
}

/// The harness snapshot codec, where *every* function is an L3 hot path:
/// the decoder is handed whatever bytes survived a crash, so `unwrap`,
/// panicking macros and unchecked indexing are all banned throughout (use
/// slice patterns and `.get()`; see `harness::snapshot`).
fn is_snapshot_codec(path: &str) -> bool {
    path == "crates/harness/src/snapshot.rs"
}

/// Paths where L1 enforces only its wall-clock subset (`Instant`,
/// `SystemTime`): crate sources outside the full-determinism scope of
/// [`rules_for`]. The `telemetry` crate is exempt — it wraps the wall clock
/// behind `Stopwatch`/`PhaseTimer` precisely so nothing else has to touch
/// `std::time` — and fixture/test trees (no `/src/` segment) stay out of
/// scope entirely.
fn wall_clock_scope_only(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.starts_with("crates/telemetry/src/")
        && !path.starts_with("crates/beeping/src/")
        && !path.starts_with("crates/mis/src/")
        && !path.starts_with("crates/baselines/src/")
        && !path.starts_with("crates/graphs/src/generators/")
}

/// Per-token structural context, computed in one pass.
struct Context {
    /// Token is inside a `#[cfg(test)]` / `#[test]` item.
    in_test: Vec<bool>,
    /// Name of the innermost enclosing `fn`, if any.
    enclosing_fn: Vec<Option<String>>,
}

fn build_context(tokens: &[Token]) -> Context {
    let n = tokens.len();
    let mut in_test = vec![false; n];
    let mut enclosing_fn: Vec<Option<String>> = vec![None; n];
    // Pass 1: mark test regions. An attribute containing the ident `test`
    // exempts the item it precedes, up to the matching close brace (or the
    // terminating semicolon for brace-less items).
    let mut i = 0;
    while i < n {
        if tokens[i].is_punct("#") && i + 1 < n && tokens[i + 1].is_punct("[") {
            let mut j = i + 2;
            let mut bracket_depth = 1usize;
            let mut mentions_test = false;
            while j < n && bracket_depth > 0 {
                if tokens[j].is_punct("[") {
                    bracket_depth += 1;
                } else if tokens[j].is_punct("]") {
                    bracket_depth -= 1;
                } else if tokens[j].is_ident("test") {
                    // `#[cfg(not(test))]` guards *production* code.
                    let negated =
                        j >= 2 && tokens[j - 1].is_punct("(") && tokens[j - 2].is_ident("not");
                    if !negated {
                        mentions_test = true;
                    }
                }
                j += 1;
            }
            if mentions_test {
                // Mark from the attribute through the end of the next item.
                let start = i;
                let mut k = j;
                let mut brace_depth = 0usize;
                while k < n {
                    if tokens[k].is_punct("{") {
                        brace_depth += 1;
                    } else if tokens[k].is_punct("}") {
                        brace_depth -= 1;
                        if brace_depth == 0 {
                            break;
                        }
                    } else if tokens[k].is_punct(";") && brace_depth == 0 {
                        break;
                    }
                    k += 1;
                }
                for slot in in_test.iter_mut().take((k + 1).min(n)).skip(start) {
                    *slot = true;
                }
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Pass 2: enclosing-function names via a (name, entry-depth) stack.
    let mut depth = 0usize;
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    for (idx, tok) in tokens.iter().enumerate() {
        if tok.is_punct("{") {
            if let Some(name) = pending_fn.take() {
                stack.push((name, depth));
            }
            depth += 1;
        } else if tok.is_punct("}") {
            depth = depth.saturating_sub(1);
            if let Some(&(_, d)) = stack.last() {
                if depth == d {
                    stack.pop();
                }
            }
        } else if tok.is_punct(";") {
            // A `;` before the body's `{` means a trait-method signature.
            pending_fn = None;
        } else if tok.is_ident("fn") {
            if let Some(next) = tokens.get(idx + 1) {
                if next.kind == TokenKind::Ident {
                    pending_fn = Some(next.text.clone());
                }
            }
        }
        enclosing_fn[idx] = stack.last().map(|(name, _)| name.clone());
    }
    Context { in_test, enclosing_fn }
}

/// Runs `rules` over one file; `file` is the workspace-relative path and
/// `lines` the raw source split by line (for snippets).
pub fn check_file(file: &str, tokens: &[Token], lines: &[&str], rules: &[RuleId]) -> Vec<Finding> {
    let ctx = build_context(tokens);
    let mut findings = Vec::new();
    for &rule in rules {
        match rule {
            RuleId::L1 => check_determinism(file, tokens, lines, &ctx, &mut findings),
            RuleId::L2 => check_level_arithmetic(file, tokens, lines, &ctx, &mut findings),
            RuleId::L3 => check_panic_freedom(file, tokens, lines, &ctx, &mut findings),
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

fn snippet(lines: &[&str], line: u32) -> String {
    lines.get(line as usize - 1).map_or(String::new(), |l| l.trim().to_string())
}

fn push(
    findings: &mut Vec<Finding>,
    rule: RuleId,
    file: &str,
    tok: &Token,
    lines: &[&str],
    message: String,
) {
    findings.push(Finding {
        rule,
        file: file.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: snippet(lines, tok.line),
    });
}

/// L1: sources of nondeterminism. `HashMap`/`HashSet` are banned outright
/// (not merely their iteration): std's hasher is randomly keyed per
/// instance, so any escape of their order — iteration, debug printing,
/// `extend` — silently breaks bit-reproducibility per seed. Use `BTreeMap`/
/// `BTreeSet` or sorted `Vec`s.
///
/// On [`wall_clock_scope_only`] paths (driver crates like `experiments` or
/// `analysis`) only the wall-clock bans apply: those crates may keep hash
/// containers for reporting, but raw `Instant`/`SystemTime` must be replaced
/// with `telemetry::Stopwatch` so timing stays observational.
fn check_determinism(
    file: &str,
    tokens: &[Token],
    lines: &[&str],
    ctx: &Context,
    findings: &mut Vec<Finding>,
) {
    const WALL_CLOCK: &[(&str, &str)] = &[
        ("Instant", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
        ("SystemTime", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
    ];
    const BANNED: &[(&str, &str)] = &[
        ("thread_rng", "seed a Pcg64Mcg via beeping::rng instead of OS entropy"),
        ("from_entropy", "seed a Pcg64Mcg via beeping::rng instead of OS entropy"),
        ("OsRng", "seed a Pcg64Mcg via beeping::rng instead of OS entropy"),
        ("Instant", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
        ("SystemTime", "wall clocks are nondeterministic; use telemetry::Stopwatch or rounds"),
        ("HashMap", "hash order is randomly keyed per process; use BTreeMap or a sorted Vec"),
        ("HashSet", "hash order is randomly keyed per process; use BTreeSet or a sorted Vec"),
    ];
    let banned: &[(&str, &str)] = if wall_clock_scope_only(file) { WALL_CLOCK } else { BANNED };
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, why)) = banned.iter().find(|(name, _)| tok.text == *name) {
            push(findings, RuleId::L1, file, tok, lines, format!("use of `{name}`: {why}"));
        }
        // `rand::random` draws from the thread-local entropy RNG.
        if !wall_clock_scope_only(file)
            && tok.is_ident("rand")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("random"))
        {
            push(
                findings,
                RuleId::L1,
                file,
                tok,
                lines,
                "use of `rand::random`: draws from thread-local OS entropy; \
                 use the simulation's seeded streams"
                    .to_string(),
            );
        }
    }
}

/// Identifiers treated as level values by L2.
fn is_level_ident(t: &Token) -> bool {
    t.kind == TokenKind::Ident
        && (t.text == "level"
            || t.text == "lmax"
            || t.text == "ell"
            || t.text == "l"
            || t.text.ends_with("_level")
            || t.text.ends_with("_lmax"))
}

const ARITH: &[&str] = &["+", "-", "+=", "-="];

/// L2: raw arithmetic on level values. Every `ℓ` transition must go through
/// the saturating helpers in `mis::levels` so the state space `[-ℓmax, ℓmax]`
/// can never be left; a bare `level + 1` reintroduces exactly the overflow
/// the paper's fault model excludes.
fn check_level_arithmetic(
    file: &str,
    tokens: &[Token],
    lines: &[&str],
    ctx: &Context,
    findings: &mut Vec<Finding>,
) {
    let mut reported: Option<(u32, u32)> = None;
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let fires = if tok.kind == TokenKind::Punct && ARITH.contains(&tok.text.as_str()) {
            // `level + …`, `… - lmax`, unary `-lmax`.
            tokens.get(i.wrapping_sub(1)).is_some_and(is_level_ident)
                || tokens.get(i + 1).is_some_and(is_level_ident)
        } else if tok.is_ident("as") {
            // `lmax as i64` — casts silently truncate corrupted values
            // instead of clamping them.
            tokens.get(i.wrapping_sub(1)).is_some_and(is_level_ident)
        } else {
            false
        };
        if fires && reported != Some((tok.line, tok.col)) {
            reported = Some((tok.line, tok.col));
            push(
                findings,
                RuleId::L2,
                file,
                tok,
                lines,
                format!(
                    "raw `{}` on a level value: route transitions through the \
                     saturating helpers in mis::levels (update_level, clamp_level, …)",
                    tok.text
                ),
            );
        }
    }
}

/// Functions L3 treats as protocol hot paths. In the snapshot codec every
/// function is hot: the whole module sits between raw disk bytes and a
/// restored run.
fn is_hot_path(file: &str, name: Option<&String>) -> bool {
    if is_snapshot_codec(file) {
        return name.is_some();
    }
    matches!(name.map(String::as_str), Some("transmit") | Some("receive") | Some("step"))
}

/// L3: panicking constructs in protocol hot paths. A panic inside
/// `transmit`/`receive`/`step` takes down the whole simulated network on a
/// single node's bad state — the opposite of self-stabilization, where
/// arbitrary state must be *recovered from*. `assert!`/`debug_assert!` stay
/// allowed: they document model violations (programming errors), not state
/// corruption. Slice indexing is checked where the index can come from
/// untrusted data: `transmit`/`receive` (the per-node paths, where every
/// access must be via checked helpers) and the snapshot codec (where the
/// bytes on disk are arbitrary after a crash); the simulator's `step` owns
/// its index ranges.
fn check_panic_freedom(
    file: &str,
    tokens: &[Token],
    lines: &[&str],
    ctx: &Context,
    findings: &mut Vec<Finding>,
) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.in_test[i] || !is_hot_path(file, ctx.enclosing_fn[i].as_ref()) {
            continue;
        }
        let untrusted_index_path = is_snapshot_codec(file)
            || matches!(ctx.enclosing_fn[i].as_deref(), Some("transmit") | Some("receive"));
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && tokens.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct("."))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            push(
                findings,
                RuleId::L3,
                file,
                tok,
                lines,
                format!(
                    "`.{}()` in protocol hot path `{}`: a corrupted state must not \
                     panic the network; handle the None/Err arm explicitly",
                    tok.text,
                    ctx.enclosing_fn[i].as_deref().unwrap_or("?")
                ),
            );
        }
        if tok.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&tok.text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            push(
                findings,
                RuleId::L3,
                file,
                tok,
                lines,
                format!(
                    "`{}!` in protocol hot path `{}`: self-stabilization requires \
                     recovering from arbitrary state, not panicking on it",
                    tok.text,
                    ctx.enclosing_fn[i].as_deref().unwrap_or("?")
                ),
            );
        }
        if untrusted_index_path
            && tok.is_punct("[")
            && tokens.get(i.wrapping_sub(1)).is_some_and(|t| {
                // `let [a, b] = …` is a slice *pattern* (compile-checked,
                // cannot panic) and `for x in [..]` iterates an array
                // literal — neither is an index expression.
                (t.kind == TokenKind::Ident && !t.is_ident("let") && !t.is_ident("in"))
                    || t.is_punct("]")
                    || t.is_punct(")")
            })
        {
            push(
                findings,
                RuleId::L3,
                file,
                tok,
                lines,
                "slice indexing in a per-node protocol path can panic on a \
                 corrupted index; use `.get()` or iterate"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(path: &str, src: &str, rules: &[RuleId]) -> Vec<Finding> {
        let tokens = tokenize(src);
        let lines: Vec<&str> = src.lines().collect();
        check_file(path, &tokens, &lines, rules)
    }

    #[test]
    fn scope_mapping() {
        assert_eq!(
            rules_for("crates/mis/src/algorithm1.rs"),
            vec![RuleId::L1, RuleId::L2, RuleId::L3]
        );
        assert_eq!(rules_for("crates/mis/src/levels.rs"), vec![RuleId::L1, RuleId::L3]);
        assert_eq!(rules_for("crates/graphs/src/generators/random.rs"), vec![RuleId::L1]);
        // Driver/analysis crates get the wall-clock-only L1 subset.
        assert_eq!(rules_for("crates/graphs/src/graph.rs"), vec![RuleId::L1]);
        assert_eq!(rules_for("crates/experiments/src/scale.rs"), vec![RuleId::L1]);
        assert_eq!(rules_for("crates/beeping/src/sim.rs"), vec![RuleId::L1, RuleId::L3]);
        // Telemetry is the sanctioned wall-clock home; tests/fixtures are
        // out of scope entirely.
        assert_eq!(rules_for("crates/telemetry/src/lib.rs"), Vec::<RuleId>::new());
        assert_eq!(rules_for("crates/lint/tests/fixtures/l1_determinism.rs"), Vec::<RuleId>::new());
        // The snapshot codec gets panic-freedom on top of the wall-clock
        // subset; the rest of the harness crate is a driver.
        assert_eq!(rules_for("crates/harness/src/snapshot.rs"), vec![RuleId::L1, RuleId::L3]);
        assert_eq!(rules_for("crates/harness/src/supervisor.rs"), vec![RuleId::L1]);
    }

    #[test]
    fn l3_covers_every_fn_of_the_snapshot_codec() {
        let codec = "crates/harness/src/snapshot.rs";
        // Any function in the codec is a hot path — helper names included.
        let f = run(codec, "fn parse_header(x: Option<u8>) -> u8 { x.unwrap() }", &[RuleId::L3]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("parse_header"));
        // Indexing fires too: decode input is whatever survived the crash.
        assert_eq!(run(codec, "fn decode(b: &[u8]) -> u8 { b[0] }", &[RuleId::L3]).len(), 1);
        // But the same helpers outside the codec stay cold.
        let cold = run("crates/harness/src/supervisor.rs", "fn f() { x.unwrap(); }", &[RuleId::L3]);
        assert!(cold.is_empty());
    }

    #[test]
    fn l3_slice_patterns_are_not_indexing() {
        let codec = "crates/harness/src/snapshot.rs";
        let src = "fn decode(pair: &[u8]) -> u8 { let [a, b] = pair else { return 0 }; *a }";
        assert!(run(codec, src, &[RuleId::L3]).is_empty());
        let arr = "fn decode() -> u8 { let mut t = 0; for x in [1, 2] { t += x; } t }";
        assert!(run(codec, arr, &[RuleId::L3]).is_empty());
        // An actual index expression right after a `let` binding still fires.
        let idx = "fn decode(pair: &[u8]) -> u8 { let a = pair[0]; a }";
        assert_eq!(run(codec, idx, &[RuleId::L3]).len(), 1);
    }

    #[test]
    fn wall_clock_subset_outside_core_scope() {
        let clock = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        // Driver crate: Instant flagged (twice — use + call), hash maps not.
        let f = run("crates/experiments/src/perf.rs", clock, &[RuleId::L1]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("telemetry::Stopwatch"));
        let hash = "fn f() { let m = std::collections::HashMap::new(); }";
        assert!(run("crates/experiments/src/perf.rs", hash, &[RuleId::L1]).is_empty());
        // Telemetry itself is never handed L1 by rules_for; even if it were,
        // core scope still bans the full catalog elsewhere.
        assert!(rules_for("crates/telemetry/src/lib.rs").is_empty());
        assert_eq!(run("crates/beeping/src/sim.rs", hash, &[RuleId::L1]).len(), 1);
    }

    #[test]
    fn l1_flags_hash_containers_and_entropy() {
        let src = "use std::collections::HashMap;\nfn f() { let r = thread_rng(); }\n";
        let f = run("x.rs", src, &[RuleId::L1]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("HashMap"));
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn l1_ignores_tests_comments_strings() {
        let src = "// HashMap is fine here\nfn f() { let s = \"HashSet\"; }\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(run("x.rs", src, &[RuleId::L1]).is_empty());
    }

    #[test]
    fn l2_flags_raw_level_arithmetic() {
        let src = "fn f(level: i32, lmax: i32) -> i32 { level + 1 }\n";
        let f = run("x.rs", src, &[RuleId::L2]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("saturating helpers"));
    }

    #[test]
    fn l2_flags_casts_and_unary_minus() {
        assert_eq!(run("x.rs", "fn f() { g(lmax as i64); }", &[RuleId::L2]).len(), 1);
        assert_eq!(run("x.rs", "fn f() { g(-lmax); }", &[RuleId::L2]).len(), 1);
    }

    #[test]
    fn l2_allows_comparisons_and_other_idents() {
        assert!(run("x.rs", "fn f() { if l < lmax { g(count + 1); } }", &[RuleId::L2]).is_empty());
    }

    #[test]
    fn l3_fires_only_in_hot_paths() {
        let hot = "fn receive(&self) { x.unwrap(); }";
        let cold = "fn helper() { x.unwrap(); }";
        assert_eq!(run("x.rs", hot, &[RuleId::L3]).len(), 1);
        assert!(run("x.rs", cold, &[RuleId::L3]).is_empty());
    }

    #[test]
    fn l3_flags_panics_and_indexing() {
        let src = "fn transmit(&self) { panic!(\"boom\"); let y = xs[i]; }";
        let f = run("x.rs", src, &[RuleId::L3]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn l3_allows_asserts_and_array_literals() {
        let src = "fn step(&mut self) { assert!(ok, \"bad\"); let a = [0; 4]; }";
        assert!(run("x.rs", src, &[RuleId::L3]).is_empty());
    }

    #[test]
    fn l3_nested_fn_scoping() {
        // A helper closure/fn defined inside a hot path is still hot-path
        // code lexically, but a hot-path name nested in a cold fn is not
        // misattributed once the inner fn closes.
        let src = "fn outer() { fn receive() { a.unwrap(); } b.unwrap(); }";
        let f = run("x.rs", src, &[RuleId::L3]);
        assert_eq!(f.len(), 1);
        assert!(f[0].snippet.contains("a.unwrap"));
    }

    #[test]
    fn test_attribute_exempts_following_fn() {
        let src = "#[test]\nfn step() { x.unwrap(); }\nfn receive() { y.unwrap(); }";
        let f = run("x.rs", src, &[RuleId::L3]);
        assert_eq!(f.len(), 1);
        assert!(f[0].snippet.contains("y.unwrap"));
    }
}
