//! Deterministic workspace call graph over the [`crate::parse`] indexes.
//!
//! Nodes are `fn` items; edges come from call-site name resolution:
//!
//! - `Type::name(…)` where `Type` has an `impl` block somewhere in the
//!   workspace resolves to exactly the methods qualified `Type::name`
//!   (including `Self::name(…)`, rewritten by the parser);
//! - `module::name(…)` (lowercase segment, or `crate`/`self`/`super`)
//!   resolves to every free function named `name`;
//! - `.name(…)` method calls resolve to **every** workspace method named
//!   `name` — no receiver-type or trait-dispatch resolution, a documented
//!   over-approximation (DESIGN.md §7.1);
//! - bare `name(…)` resolves to every free function named `name`;
//! - any other qualified segment (`Vec::`, `u64::`, external types) is
//!   treated as a call out of the workspace and dropped.
//!
//! Everything is keyed and ordered with `BTreeMap`/`BTreeSet`, so traversal
//! order — and therefore finding order — is stable across runs and
//! platforms, the same bit-determinism bar the simulator holds itself to.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{CallKind, FileIndex};

/// Stable identifier of a function definition: (file index, fn index).
pub type DefId = (usize, usize);

/// Method names the resolver refuses to follow: the std prelude/iterator/
/// container surface. A workspace `fn collect` does exist (metrics), but a
/// `.collect()` inside `step` is the iterator adaptor, and without receiver
/// types the only sound-ish choice is to treat these ubiquitous names as
/// std. Domain vocabulary (`transmit`, `deliver`, `gather_bit`, …) stays
/// fully resolvable.
const COMMON_STD_METHODS: &[&str] = &[
    "clone",
    "collect",
    "parse",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "take",
    "replace",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "or_else",
    "filter",
    "fold",
    "find",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "min",
    "max",
    "rev",
    "zip",
    "chain",
    "skip",
    "extend",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "to_string",
    "to_owned",
    "to_vec",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "drop",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "write",
    "read",
    "flush",
    "join",
    "split",
    "trim",
    "lines",
    "chars",
    "sort",
    "sort_by",
    "sort_by_key",
    "binary_search",
    "entry",
    "keys",
    "values",
    "first",
    "last",
    "abs",
    "clamp",
    "wrapping_add",
    "saturating_add",
    "saturating_sub",
];

/// Workspace-wide call graph.
pub struct CallGraph {
    /// Free functions (no `Type::` qualification) by bare name.
    free_by_name: BTreeMap<String, Vec<DefId>>,
    /// Every definition (free or method) by bare name.
    all_by_name: BTreeMap<String, Vec<DefId>>,
    /// Methods by `Type::name`.
    by_qualified: BTreeMap<String, Vec<DefId>>,
    /// Types with an `impl` block anywhere in the workspace.
    impl_types: BTreeSet<String>,
}

impl CallGraph {
    /// Builds the graph over per-file indexes (ordered as the workspace
    /// file list; `DefId.0` indexes into that list).
    pub fn build(files: &[&FileIndex]) -> CallGraph {
        let mut free_by_name: BTreeMap<String, Vec<DefId>> = BTreeMap::new();
        let mut all_by_name: BTreeMap<String, Vec<DefId>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<String, Vec<DefId>> = BTreeMap::new();
        let mut impl_types = BTreeSet::new();
        for (fi, index) in files.iter().enumerate() {
            impl_types.extend(index.impl_types.iter().cloned());
            for (di, def) in index.fns.iter().enumerate() {
                let id = (fi, di);
                all_by_name.entry(def.bare.clone()).or_default().push(id);
                match &def.qualified {
                    Some(q) => by_qualified.entry(q.clone()).or_default().push(id),
                    None => free_by_name.entry(def.bare.clone()).or_default().push(id),
                }
            }
        }
        CallGraph { free_by_name, all_by_name, by_qualified, impl_types }
    }

    /// `true` if the workspace defines a method under this `Type::name`
    /// qualified form (used to tell `self.expect(…)` — a domain helper whose
    /// body the graph checks — from `Option::expect`).
    pub fn has_qualified(&self, qualified: &str) -> bool {
        self.by_qualified.contains_key(qualified)
    }

    /// Resolves one call site to candidate definitions (possibly empty:
    /// std/external calls).
    fn resolve(&self, name: &str, kind: &CallKind) -> &[DefId] {
        static EMPTY: [DefId; 0] = [];
        let hit = match kind {
            CallKind::Qualified(seg) => {
                const PRIMITIVES: &[&str] = &[
                    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
                    "isize", "f32", "f64", "bool", "char", "str",
                ];
                if self.impl_types.contains(seg) {
                    self.by_qualified.get(&format!("{seg}::{name}"))
                } else if PRIMITIVES.contains(&seg.as_str()) {
                    // `u32::from(…)` etc. — std, not a workspace module.
                    None
                } else if seg.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                    // Module path: `recovery::apply_churn(…)`.
                    self.free_by_name.get(name)
                } else {
                    // External/primitive type: out of the workspace.
                    None
                }
            }
            CallKind::Method => {
                if COMMON_STD_METHODS.contains(&name) {
                    // `.collect(…)`, `.parse(…)`, `.clone(…)` … almost always
                    // target std, and resolving them by bare name would drag
                    // unrelated workspace fns that happen to share the name
                    // into every hot set. Skipping them is the one deliberate
                    // under-approximation in the graph (DESIGN.md §7.1).
                    None
                } else {
                    self.all_by_name.get(name)
                }
            }
            CallKind::Bare => self.free_by_name.get(name),
        };
        hit.map_or(&EMPTY[..], Vec::as_slice)
    }

    /// BFS from `roots`, following call edges through non-test definitions.
    /// Returns, for every reachable definition, the shortest call chain from
    /// a root as a list of function names (root first), e.g.
    /// `["tick", "apply_churn"]`.
    pub fn reachable(&self, files: &[&FileIndex], roots: &[DefId]) -> BTreeMap<DefId, Vec<String>> {
        let mut chains: BTreeMap<DefId, Vec<String>> = BTreeMap::new();
        let mut queue: VecDeque<DefId> = VecDeque::new();
        for &root in roots {
            let def = &files[root.0].fns[root.1];
            if def.in_test {
                continue;
            }
            chains.entry(root).or_insert_with(|| vec![def.bare.clone()]);
            queue.push_back(root);
        }
        while let Some(id) = queue.pop_front() {
            let chain = chains[&id].clone();
            for call in &files[id.0].fns[id.1].calls {
                for &callee in self.resolve(&call.name, &call.kind) {
                    let def = &files[callee.0].fns[callee.1];
                    if def.in_test || chains.contains_key(&callee) {
                        continue;
                    }
                    let mut next = chain.clone();
                    next.push(def.bare.clone());
                    chains.insert(callee, next);
                    queue.push_back(callee);
                }
            }
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parse::index_file;

    fn graph_of(srcs: &[&str]) -> (Vec<FileIndex>, Vec<DefId>) {
        let indexes: Vec<FileIndex> = srcs.iter().map(|s| index_file(&tokenize(s))).collect();
        let roots: Vec<DefId> = indexes
            .iter()
            .enumerate()
            .flat_map(|(fi, ix)| {
                ix.fns
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.bare == "step")
                    .map(move |(di, _)| (fi, di))
            })
            .collect();
        (indexes, roots)
    }

    fn chains(srcs: &[&str]) -> Vec<Vec<String>> {
        let (indexes, roots) = graph_of(srcs);
        let refs: Vec<&FileIndex> = indexes.iter().collect();
        let graph = CallGraph::build(&refs);
        graph.reachable(&refs, &roots).into_values().collect()
    }

    #[test]
    fn transitive_reachability_spans_files() {
        let chains = chains(&[
            "fn step() { helper_a(); }",
            "fn helper_a() { helper_b(); }\nfn helper_b() {}",
        ]);
        assert!(chains.contains(&vec!["step".into(), "helper_a".into(), "helper_b".into()]));
    }

    #[test]
    fn qualified_calls_resolve_to_the_impl_type_only() {
        let chains = chains(&["impl Engine { fn step(&self) { Engine::apply(); } }\n\
             impl Engine { fn apply() {} }\n\
             impl Other { fn apply() { boom(); } }\n\
             fn boom() {}"]);
        // Other::apply (and boom) must NOT be reachable.
        assert_eq!(chains.len(), 2, "{chains:?}");
        assert!(chains.contains(&vec!["step".into(), "apply".into()]));
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        // Unknown receiver: `ch.deliver()` matches every workspace method
        // named `deliver`. A `self.` receiver resolves exactly instead.
        let chains = chains(&[
            "impl Engine { fn step(&self, ch: &Channel) { ch.deliver(); self.local(); } }\n\
             impl Engine { fn local(&self) {} }\n\
             impl Channel { fn deliver(&self) { inner(); } }\n\
             fn inner() {}",
        ]);
        assert!(chains.contains(&vec!["step".into(), "deliver".into(), "inner".into()]));
        assert!(chains.contains(&vec!["step".into(), "local".into()]));
    }

    #[test]
    fn common_std_method_names_are_not_followed() {
        // `.collect()` in a hot path is the iterator adaptor, even though a
        // workspace `fn collect` exists somewhere.
        let chains = chains(&["fn step() { let v: Vec<u32> = it.collect(); }\n\
                      impl Metrics { fn collect(&self) { x.unwrap() } }"]);
        assert_eq!(chains, vec![vec!["step".to_string()]]);
    }

    #[test]
    fn external_qualified_calls_are_dropped() {
        let chains =
            chains(&["fn step() { Vec::new(); u32::from(0u8); }\nfn new() {}\nfn from() {}"]);
        // `Vec`/`u32` have no workspace impl block and are uppercase/primitive
        // segments, so `Vec::new`/`u32::from` do not reach the free fns.
        assert_eq!(chains, vec![vec!["step".to_string()]]);
    }

    #[test]
    fn module_qualified_calls_reach_free_fns() {
        let chains = chains(&["fn step() { recovery::apply_churn(); }", "fn apply_churn() {}"]);
        assert!(chains.contains(&vec!["step".into(), "apply_churn".into()]));
    }

    #[test]
    fn test_defs_are_not_traversed() {
        let chains = chains(&[
            "fn step() { helper(); }\n#[cfg(test)]\nmod t { fn helper() { boom(); } }\nfn boom() {}",
        ]);
        // The test-only `helper` is skipped, so `boom` stays unreachable.
        assert_eq!(chains, vec![vec!["step".to_string()]]);
    }

    #[test]
    fn bare_calls_do_not_match_methods() {
        let chains = chains(&["fn step() { deliver(); }\nimpl C { fn deliver(&self) {} }"]);
        assert_eq!(chains, vec![vec!["step".to_string()]]);
    }
}
