//! Allowlist handling and finding output (human text and JSON for CI).

use crate::rules::Finding;

/// One allowlist entry: `RULE path-suffix line-snippet`.
///
/// A finding is suppressed when the rule name matches, the finding's file
/// ends with `path`, and the offending source line contains `snippet`.
/// Snippet matching (rather than line numbers) keeps entries stable across
/// unrelated edits. Every entry **must** carry a `#`-comment on the
/// immediately preceding line explaining *why* the site is sound; this is
/// enforced at parse time, so an unjustified entry fails the lint run
/// outright rather than silently suppressing findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name (`L1`…`L6`).
    pub rule: String,
    /// Path suffix the finding's file must end with.
    pub path: String,
    /// Substring the offending line must contain.
    pub snippet: String,
    /// Line in the allowlist file (for diagnostics).
    pub line: u32,
}

impl AllowEntry {
    /// `true` if this entry suppresses `finding`.
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule.name()
            && finding.file.ends_with(&self.path)
            && finding.snippet.contains(&self.snippet)
    }
}

/// Parses an allowlist file. Blank lines and `#` comments are skipped;
/// every entry must be immediately preceded by a `#` justification comment.
///
/// # Errors
///
/// Returns a message naming the malformed line when an entry does not have
/// the three `RULE path snippet` fields, or lacks its justification comment.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    let mut prev_was_comment = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            prev_was_comment = false;
            continue;
        }
        if line.starts_with('#') {
            prev_was_comment = true;
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (rule, path, snippet) = (parts.next(), parts.next(), parts.next());
        match (rule, path, snippet) {
            (Some(rule), Some(path), Some(snippet)) if !snippet.trim().is_empty() => {
                if !prev_was_comment {
                    return Err(format!(
                        "allowlist line {}: entry has no `#` justification comment on the \
                         preceding line; every suppression must say why the site is sound",
                        i + 1
                    ));
                }
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    snippet: snippet.trim().to_string(),
                    line: u32::try_from(i + 1).unwrap_or(u32::MAX),
                });
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `RULE path-suffix line-snippet`, got {line:?}",
                    i + 1
                ))
            }
        }
        prev_was_comment = false;
    }
    Ok(entries)
}

/// Result of a lint run, after allowlist filtering.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving violations.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by the allowlist.
    pub allowed: usize,
    /// Files checked.
    pub files_checked: usize,
    /// Allowlist entries that suppressed nothing (stale; reported so the
    /// list can only shrink, never silently rot).
    pub unused_allows: Vec<AllowEntry>,
    /// Strict mode: stale allowlist entries are failures, not warnings.
    pub strict: bool,
}

impl Report {
    /// Process exit code: `0` clean, `1` violations present (under
    /// `--strict`, stale allowlist entries count as violations).
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.findings.is_empty() || (self.strict && !self.unused_allows.is_empty()))
    }

    /// Splits raw findings into kept and allowed using `allowlist`.
    pub fn from_findings(
        findings: Vec<Finding>,
        allowlist: &[AllowEntry],
        files_checked: usize,
        strict: bool,
    ) -> Report {
        let mut used = vec![false; allowlist.len()];
        let mut kept = Vec::new();
        let mut allowed = 0usize;
        for finding in findings {
            match allowlist.iter().position(|e| e.matches(&finding)) {
                Some(i) => {
                    used[i] = true;
                    allowed += 1;
                }
                None => kept.push(finding),
            }
        }
        let unused_allows =
            allowlist.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();
        Report { findings: kept, allowed, files_checked, unused_allows, strict }
    }

    /// Human-readable output, one finding per block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} [{}/{}] {}:{}:{}\n  {}\n  > {}\n",
                "error:",
                f.rule.name(),
                f.rule.title(),
                f.file,
                f.line,
                f.col,
                f.message,
                f.snippet
            ));
        }
        let stale_severity = if self.strict { "error" } else { "warning" };
        for e in &self.unused_allows {
            out.push_str(&format!(
                "{stale_severity}: unused allowlist entry (line {}): {} {} {}{}\n",
                e.line,
                e.rule,
                e.path,
                e.snippet,
                if self.strict { " — the list only shrinks; remove it" } else { "" }
            ));
        }
        out.push_str(&format!(
            "{} finding(s), {} allowlisted, {} file(s) checked\n",
            self.findings.len(),
            self.allowed,
            self.files_checked
        ));
        out
    }

    /// Machine-readable output for CI annotation tooling.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
                 \"message\":\"{}\",\"snippet\":\"{}\"}}",
                f.rule.name(),
                f.rule.title(),
                escape_json(&f.file),
                f.line,
                f.col,
                escape_json(&f.message),
                escape_json(&f.snippet)
            ));
        }
        out.push_str("],\"unused_allowlist_entries\":[");
        for (i, e) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"line\":{},\"rule\":\"{}\",\"path\":\"{}\",\"snippet\":\"{}\"}}",
                e.line,
                escape_json(&e.rule),
                escape_json(&e.path),
                escape_json(&e.snippet)
            ));
        }
        out.push_str(&format!(
            "],\"allowed\":{},\"files_checked\":{},\"strict\":{}}}",
            self.allowed, self.files_checked, self.strict
        ));
        out.push('\n');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn finding(rule: RuleId, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 3,
            col: 7,
            message: "msg".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn allowlist_parse_and_match() {
        let text = "# why: clamp path is checked\nL2 crates/mis/src/runner.rs lmax as i64\n\n";
        let entries = parse_allowlist(text).unwrap();
        assert_eq!(entries.len(), 1);
        let f = finding(RuleId::L2, "crates/mis/src/runner.rs", "let x = -(lmax as i64);");
        assert!(entries[0].matches(&f));
        let other = finding(RuleId::L2, "crates/mis/src/policy.rs", "let x = -(lmax as i64);");
        assert!(!entries[0].matches(&other));
    }

    #[test]
    fn allowlist_rejects_malformed() {
        assert!(parse_allowlist("# why\nL2 onlytwo").is_err());
    }

    #[test]
    fn allowlist_requires_justification_comment() {
        // No comment at all.
        let bare = "L2 crates/mis/src/runner.rs lmax as i64\n";
        assert!(parse_allowlist(bare).unwrap_err().contains("justification"));
        // A comment separated by a blank line does not count.
        let detached = "# why\n\nL2 crates/mis/src/runner.rs lmax as i64\n";
        assert!(parse_allowlist(detached).is_err());
        // Two entries sharing one comment: the second is unjustified.
        let shared = "# why\nL2 a.rs x\nL2 b.rs y\n";
        assert!(parse_allowlist(shared).is_err());
    }

    #[test]
    fn report_filters_and_tracks_unused() {
        let entries = parse_allowlist("# a\nL1 a.rs HashMap\n# b\nL3 b.rs unwrap\n").unwrap();
        let findings = vec![finding(RuleId::L1, "x/a.rs", "let m: HashMap<u32, u32>;")];
        let report = Report::from_findings(findings, &entries, 5, false);
        assert_eq!(report.findings.len(), 0);
        assert_eq!(report.allowed, 1);
        assert_eq!(report.unused_allows.len(), 1);
        assert_eq!(report.exit_code(), 0);
        assert!(report.render_text().contains("warning: unused allowlist entry"));
    }

    #[test]
    fn strict_promotes_stale_entries_to_failures() {
        let entries = parse_allowlist("# a\nL1 a.rs HashMap\n").unwrap();
        let report = Report::from_findings(Vec::new(), &entries, 5, true);
        assert_eq!(report.exit_code(), 1);
        assert!(report.render_text().contains("error: unused allowlist entry"));
        assert!(report.render_json().contains("\"strict\":true"));
        // A used entry under strict stays clean.
        let findings = vec![finding(RuleId::L1, "x/a.rs", "let m: HashMap<u32, u32>;")];
        let report = Report::from_findings(findings, &entries, 5, true);
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn json_escapes() {
        let report = Report {
            findings: vec![finding(RuleId::L1, "a\"b.rs", "x\t")],
            allowed: 0,
            files_checked: 1,
            unused_allows: vec![],
            strict: false,
        };
        let json = report.render_json();
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("x\\t"));
        assert_eq!(report.exit_code(), 1);
    }
}
