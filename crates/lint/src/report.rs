//! Allowlist handling and finding output (human text and JSON for CI).

use crate::rules::Finding;

/// One allowlist entry: `RULE path-suffix line-snippet`.
///
/// A finding is suppressed when the rule name matches, the finding's file
/// ends with `path`, and the offending source line contains `snippet`.
/// Snippet matching (rather than line numbers) keeps entries stable across
/// unrelated edits; every entry must carry a `#`-comment on the preceding
/// line explaining *why* the site is sound (policy, enforced by review).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name (`L1`, `L2`, `L3`).
    pub rule: String,
    /// Path suffix the finding's file must end with.
    pub path: String,
    /// Substring the offending line must contain.
    pub snippet: String,
    /// Line in the allowlist file (for diagnostics).
    pub line: u32,
}

impl AllowEntry {
    /// `true` if this entry suppresses `finding`.
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule.name()
            && finding.file.ends_with(&self.path)
            && finding.snippet.contains(&self.snippet)
    }
}

/// Parses an allowlist file. Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns a message naming the malformed line when an entry does not have
/// the three `RULE path snippet` fields.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (rule, path, snippet) = (parts.next(), parts.next(), parts.next());
        match (rule, path, snippet) {
            (Some(rule), Some(path), Some(snippet)) if !snippet.trim().is_empty() => {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    snippet: snippet.trim().to_string(),
                    line: i as u32 + 1,
                });
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `RULE path-suffix line-snippet`, got {line:?}",
                    i + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Result of a lint run, after allowlist filtering.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving violations.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by the allowlist.
    pub allowed: usize,
    /// Files checked.
    pub files_checked: usize,
    /// Allowlist entries that suppressed nothing (stale; reported so the
    /// list can only shrink, never silently rot).
    pub unused_allows: Vec<AllowEntry>,
}

impl Report {
    /// Process exit code: `0` clean, `1` violations present.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.findings.is_empty())
    }

    /// Splits raw findings into kept and allowed using `allowlist`.
    pub fn from_findings(
        findings: Vec<Finding>,
        allowlist: &[AllowEntry],
        files_checked: usize,
    ) -> Report {
        let mut used = vec![false; allowlist.len()];
        let mut kept = Vec::new();
        let mut allowed = 0usize;
        for finding in findings {
            match allowlist.iter().position(|e| e.matches(&finding)) {
                Some(i) => {
                    used[i] = true;
                    allowed += 1;
                }
                None => kept.push(finding),
            }
        }
        let unused_allows =
            allowlist.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();
        Report { findings: kept, allowed, files_checked, unused_allows }
    }

    /// Human-readable output, one finding per block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} [{}/{}] {}:{}:{}\n  {}\n  > {}\n",
                "error:",
                f.rule.name(),
                f.rule.title(),
                f.file,
                f.line,
                f.col,
                f.message,
                f.snippet
            ));
        }
        for e in &self.unused_allows {
            out.push_str(&format!(
                "warning: unused allowlist entry (line {}): {} {} {}\n",
                e.line, e.rule, e.path, e.snippet
            ));
        }
        out.push_str(&format!(
            "{} finding(s), {} allowlisted, {} file(s) checked\n",
            self.findings.len(),
            self.allowed,
            self.files_checked
        ));
        out
    }

    /// Machine-readable output for CI annotation tooling.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
                 \"message\":\"{}\",\"snippet\":\"{}\"}}",
                f.rule.name(),
                f.rule.title(),
                escape_json(&f.file),
                f.line,
                f.col,
                escape_json(&f.message),
                escape_json(&f.snippet)
            ));
        }
        out.push_str(&format!(
            "],\"allowed\":{},\"files_checked\":{},\"unused_allowlist_entries\":{}}}",
            self.allowed,
            self.files_checked,
            self.unused_allows.len()
        ));
        out.push('\n');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn finding(rule: RuleId, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 3,
            col: 7,
            message: "msg".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn allowlist_parse_and_match() {
        let text = "# why: clamp path is checked\nL2 crates/mis/src/runner.rs lmax as i64\n\n";
        let entries = parse_allowlist(text).unwrap();
        assert_eq!(entries.len(), 1);
        let f = finding(RuleId::L2, "crates/mis/src/runner.rs", "let x = -(lmax as i64);");
        assert!(entries[0].matches(&f));
        let other = finding(RuleId::L2, "crates/mis/src/policy.rs", "let x = -(lmax as i64);");
        assert!(!entries[0].matches(&other));
    }

    #[test]
    fn allowlist_rejects_malformed() {
        assert!(parse_allowlist("L2 onlytwo").is_err());
    }

    #[test]
    fn report_filters_and_tracks_unused() {
        let entries = parse_allowlist("L1 a.rs HashMap\nL3 b.rs unwrap\n").unwrap();
        let findings = vec![finding(RuleId::L1, "x/a.rs", "let m: HashMap<u32, u32>;")];
        let report = Report::from_findings(findings, &entries, 5);
        assert_eq!(report.findings.len(), 0);
        assert_eq!(report.allowed, 1);
        assert_eq!(report.unused_allows.len(), 1);
        assert_eq!(report.exit_code(), 0);
        assert!(report.render_text().contains("unused allowlist entry"));
    }

    #[test]
    fn json_escapes() {
        let report = Report {
            findings: vec![finding(RuleId::L1, "a\"b.rs", "x\t")],
            allowed: 0,
            files_checked: 1,
            unused_allows: vec![],
        };
        let json = report.render_json();
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("x\\t"));
        assert_eq!(report.exit_code(), 1);
    }
}
