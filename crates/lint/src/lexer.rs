//! A minimal Rust lexer: just enough token structure for the protocol lints.
//!
//! Comments and literals are classified so rules never fire on prose or
//! format strings; multi-character operators are merged so `->` is never
//! mistaken for a minus. This is deliberately not a full parser — the lints
//! in [`crate::rules`] work on token patterns plus light structural context
//! (brace depth, enclosing function, `#[cfg(test)]` regions).

/// Classification of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `level`, `HashMap`, …).
    Ident,
    /// Operator or delimiter, multi-character operators merged (`::`, `->`).
    Punct,
    /// Number, string, char or byte literal (content opaque to the rules).
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text exactly as written (literals keep their quotes).
    pub text: String,
    /// Token classification.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// `true` if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` if this is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<", ">>", "&&", "||", "==", "!=", "<=", ">=",
];

struct Scanner<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Scanner<'a> {
    fn new(source: &'a str) -> Scanner<'a> {
        Scanner { chars: source.chars().collect(), pos: 0, line: 1, col: 1, source }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `source` into tokens, skipping whitespace and (nested) comments.
///
/// Unterminated literals are tolerated: the rest of the file becomes one
/// literal token, which can at worst suppress findings in an already broken
/// file — `cargo build` will reject it anyway.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut s = Scanner::new(source);
    let mut tokens = Vec::new();
    while let Some(c) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        // Whitespace.
        if c.is_whitespace() {
            s.bump();
            continue;
        }
        // Comments.
        if s.starts_with("//") {
            while let Some(c) = s.peek(0) {
                if c == '\n' {
                    break;
                }
                s.bump();
            }
            continue;
        }
        if s.starts_with("/*") {
            s.bump();
            s.bump();
            let mut depth = 1usize;
            while depth > 0 && s.peek(0).is_some() {
                if s.starts_with("/*") {
                    depth += 1;
                    s.bump();
                    s.bump();
                } else if s.starts_with("*/") {
                    depth -= 1;
                    s.bump();
                    s.bump();
                } else {
                    s.bump();
                }
            }
            continue;
        }
        // Raw identifiers and raw / byte strings.
        if c == 'r' || c == 'b' {
            if let Some(tok) = try_lex_prefixed(&mut s, line, col) {
                tokens.push(tok);
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            tokens.push(lex_string(&mut s, line, col));
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            tokens.push(lex_quote(&mut s, line, col));
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = s.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    s.bump();
                } else {
                    break;
                }
            }
            tokens.push(Token { text, kind: TokenKind::Ident, line, col });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(c) = s.peek(0) {
                if is_ident_continue(c)
                    || (c == '.' && s.peek(1).is_some_and(|d| d.is_ascii_digit()))
                {
                    text.push(c);
                    s.bump();
                } else {
                    break;
                }
            }
            tokens.push(Token { text, kind: TokenKind::Literal, line, col });
            continue;
        }
        // Multi-character punctuation, longest match first.
        if let Some(p) = MULTI_PUNCT.iter().find(|p| s.starts_with(p)) {
            for _ in 0..p.chars().count() {
                s.bump();
            }
            tokens.push(Token { text: (*p).to_string(), kind: TokenKind::Punct, line, col });
            continue;
        }
        // Single-character punctuation.
        s.bump();
        tokens.push(Token { text: c.to_string(), kind: TokenKind::Punct, line, col });
    }
    debug_assert!(
        tokens.iter().all(|t| !t.text.is_empty()),
        "lexer produced an empty token for {:?}…",
        &s.source[..s.source.len().min(40)]
    );
    tokens
}

/// Lexes tokens starting with `r` or `b`: raw identifiers (`r#match`), raw
/// strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`) and byte
/// chars (`b'x'`). Returns `None` when the prefix is just an ordinary
/// identifier start.
fn try_lex_prefixed(s: &mut Scanner<'_>, line: u32, col: u32) -> Option<Token> {
    let first = s.peek(0)?;
    // Byte char b'x'.
    if first == 'b' && s.peek(1) == Some('\'') {
        s.bump();
        let mut tok = lex_quote(s, line, col);
        tok.text.insert(0, 'b');
        tok.kind = TokenKind::Literal;
        return Some(tok);
    }
    // Compute the candidate prefix: r | b | br (rb is not a Rust prefix).
    let prefix_len = if first == 'b' && s.peek(1) == Some('r') { 2 } else { 1 };
    let mut hashes = 0usize;
    while s.peek(prefix_len + hashes) == Some('#') {
        hashes += 1;
    }
    let quote_at = prefix_len + hashes;
    if s.peek(quote_at) == Some('"') {
        // Raw or byte string.
        let mut text = String::new();
        for _ in 0..=quote_at {
            text.push(s.bump().unwrap());
        }
        let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
        while s.peek(0).is_some() && !s.starts_with(&closer) {
            text.push(s.bump().unwrap());
        }
        for _ in 0..closer.chars().count() {
            if let Some(c) = s.bump() {
                text.push(c);
            }
        }
        return Some(Token { text, kind: TokenKind::Literal, line, col });
    }
    if first == 'r' && hashes == 1 && s.peek(2).is_some_and(is_ident_start) {
        // Raw identifier r#ident: report as the bare identifier.
        s.bump();
        s.bump();
        let mut text = String::new();
        while let Some(c) = s.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                s.bump();
            } else {
                break;
            }
        }
        return Some(Token { text, kind: TokenKind::Ident, line, col });
    }
    None
}

fn lex_string(s: &mut Scanner<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(s.bump().unwrap()); // opening quote
    while let Some(c) = s.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(e) = s.bump() {
                text.push(e);
            }
        } else if c == '"' {
            break;
        }
    }
    Token { text, kind: TokenKind::Literal, line, col }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime).
fn lex_quote(s: &mut Scanner<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(s.bump().unwrap()); // opening quote
    let next = s.peek(0);
    let is_char = match next {
        Some('\\') => true,
        Some(c) if is_ident_start(c) => s.peek(1) == Some('\''),
        Some(_) => true, // punctuation chars like '+' are always char literals
        None => false,
    };
    if is_char {
        while let Some(c) = s.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = s.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                break;
            }
        }
        Token { text, kind: TokenKind::Literal, line, col }
    } else {
        while let Some(c) = s.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                s.bump();
            } else {
                break;
            }
        }
        Token { text, kind: TokenKind::Lifetime, line, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("let x = a::b(y);"),
            ["let", "x", "=", "a", "::", "b", "(", "y", ")", ";"]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(texts("a // HashMap\nb /* thread_rng /* nested */ */ c"), ["a", "b", "c"]);
    }

    #[test]
    fn strings_are_single_literals() {
        let toks = tokenize(r#"f("level + 1 {x}")"#);
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[2].kind, TokenKind::Literal);
    }

    #[test]
    fn raw_strings() {
        let toks = tokenize(r###"x r#"a " b"# y"###);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokenKind::Literal);
        assert_eq!(toks[2].text, "y");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = tokenize("&'a str; '\\n'; 'x'; 'static");
        assert_eq!(toks[1].kind, TokenKind::Lifetime);
        assert_eq!(toks[1].text, "'a");
        assert_eq!(toks[4].kind, TokenKind::Literal);
        assert_eq!(toks[4].text, "'\\n'");
        assert_eq!(toks[6].text, "'x'");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Lifetime);
    }

    #[test]
    fn arrow_is_not_minus() {
        let toks = tokenize("fn f() -> i32 { a - b }");
        assert!(toks.iter().any(|t| t.is_punct("->")));
        assert_eq!(toks.iter().filter(|t| t.is_punct("-")).count(), 1);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        assert_eq!(texts("2f64.powi(-l)"), ["2f64", ".", "powi", "(", "-", "l", ")"]);
        assert_eq!(texts("0..n"), ["0", "..", "n"]);
        assert_eq!(texts("1.5e3"), ["1.5e3"]);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifier() {
        let toks = tokenize("r#fn x");
        assert_eq!(toks[0].text, "fn");
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[1].text, "x");
    }
}
