//! Workspace invariant linter for the beeping-mis reproduction.
//!
//! The correctness claims we reproduce (Thm 2.1/2.2, Cor 2.3) rest on
//! invariants `rustc` cannot see: executions must be a pure function of the
//! seed, level transitions must stay inside `[-ℓmax, ℓmax]`, protocol hot
//! paths must never panic on corrupted state — transitively, through every
//! helper they call — and the parallel engine's determinism fence (RNG
//! purpose streams, sanctioned concurrency, truncation-free casts) must
//! hold workspace-wide. This crate enforces them as a CI gate:
//!
//! ```text
//! cargo run -p lint              # lint the workspace, exit 1 on findings
//! cargo run -p lint -- --strict  # stale allowlist entries fail too (CI)
//! cargo run -p lint -- --json    # machine-readable output
//! ```
//!
//! See [`rules`] for the catalog (L1 determinism, L2 level-arithmetic, L3
//! transitive panic-freedom, L4 rng-discipline, L5 concurrency-discipline,
//! L6 cast-audit) and DESIGN.md §7 for the policy. The structural layer is
//! [`parse`] (item boundaries, call sites, test regions) feeding
//! [`callgraph`] (deterministic workspace call graph). Deliberately sound
//! sites are recorded in `lint-allow.txt` at the workspace root, each with
//! a justifying comment (enforced at parse time).
//!
//! The crate is dependency-free by design: it is itself part of the CI gate
//! and must build on air-gapped runners, so it uses a small hand-rolled
//! lexer ([`lexer`]) instead of `syn`.

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use report::{parse_allowlist, AllowEntry, Report};
pub use rules::{check_workspace, rules_for, Finding, RuleId, SourceFile};

/// Lints one source string as `path` (workspace-relative, forward slashes)
/// under `rules`. Workspace passes (transitive L3, L4 purpose collisions)
/// see only this one file.
pub fn lint_source(path: &str, source: &str, rules: &[RuleId]) -> Vec<Finding> {
    check_workspace(&[SourceFile {
        path: path.to_string(),
        source: source.to_string(),
        rules: rules.to_vec(),
    }])
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// output. Build output (`target/`), hidden (`.`-prefixed) directories and
/// symlinks are skipped: a stale per-crate `target/` tree is generated
/// code, not source, and following symlinks can both escape the workspace
/// and loop forever on a self-referential link.
///
/// # Errors
///
/// Propagates I/O errors as readable strings.
pub fn collect_rs_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        // `file_type()` does not follow symlinks, so a symlinked dir or
        // file reports `is_symlink()` here and is dropped before recursion.
        let file_type =
            entry.file_type().map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        if file_type.is_symlink() {
            continue;
        }
        if file_type.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "target" || name.starts_with('.') {
                continue;
            }
            files.extend(collect_rs_files(&path)?);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Normalizes `path` relative to `root` with forward slashes, for scope
/// matching and stable output on every platform.
pub fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Lints the whole workspace rooted at `root` (every `.rs` file under
/// `crates/`, scoped per [`rules::rules_for`]), applying the allowlist.
/// Under `strict`, stale allowlist entries fail the run.
///
/// # Errors
///
/// Returns a readable message on I/O or allowlist-syntax errors.
pub fn lint_workspace(
    root: &Path,
    allowlist: &[AllowEntry],
    strict: bool,
) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{} has no crates/ directory; pass --root", root.display()));
    }
    let mut files = Vec::new();
    for file in collect_rs_files(&crates_dir)? {
        let rel = relative_slash_path(root, &file);
        let rules = rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        files.push(SourceFile { path: rel, source, rules });
    }
    let files_checked = files.len();
    Ok(Report::from_findings(check_workspace(&files), allowlist, files_checked, strict))
}

/// Lints explicit files with **all** rules (used by the fixture self-tests
/// and for ad-hoc checks of files outside the standard scope). The files
/// form their own little workspace: transitive L3 and purpose-collision
/// analysis run across exactly this set.
///
/// # Errors
///
/// Returns a readable message on I/O errors.
pub fn lint_files_all_rules(root: &Path, files: &[PathBuf]) -> Result<Report, String> {
    let mut sources = Vec::new();
    for file in files {
        let rel = relative_slash_path(root, file);
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        sources.push(SourceFile { path: rel, source, rules: RuleId::all().to_vec() });
    }
    Ok(Report::from_findings(check_workspace(&sources), &[], files.len(), false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_scope() {
        let src = "fn f() { let m = std::collections::HashMap::new(); }";
        assert_eq!(lint_source("x.rs", src, &[RuleId::L1]).len(), 1);
        assert!(lint_source("x.rs", src, &[RuleId::L2]).is_empty());
    }

    #[test]
    fn relative_paths_are_slashed() {
        let root = Path::new("/a/b");
        let file = Path::new("/a/b/crates/mis/src/levels.rs");
        assert_eq!(relative_slash_path(root, file), "crates/mis/src/levels.rs");
    }

    #[test]
    fn collect_skips_target_hidden_and_symlinked_dirs() {
        let base = std::env::temp_dir().join(format!("lint-collect-{}", std::process::id()));
        let make = |rel: &str| {
            let p = base.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, "fn x() {}").unwrap();
        };
        make("a/src/lib.rs");
        make("a/target/debug/build/gen.rs");
        make(".hidden/src/sneaky.rs");
        #[cfg(unix)]
        {
            // A symlink loop: a/link -> a would recurse forever if followed.
            let _ = std::os::unix::fs::symlink(base.join("a"), base.join("a/link"));
        }
        let files = collect_rs_files(&base).unwrap();
        let rels: Vec<String> = files.iter().map(|f| relative_slash_path(&base, f)).collect();
        std::fs::remove_dir_all(&base).unwrap();
        assert_eq!(rels, vec!["a/src/lib.rs"]);
    }
}
