//! Workspace invariant linter for the beeping-mis reproduction.
//!
//! The correctness claims we reproduce (Thm 2.1/2.2, Cor 2.3) rest on
//! invariants `rustc` cannot see: executions must be a pure function of the
//! seed, level transitions must stay inside `[-ℓmax, ℓmax]`, and protocol
//! hot paths must never panic on corrupted state. This crate enforces them
//! as a CI gate:
//!
//! ```text
//! cargo run -p lint              # lint the workspace, exit 1 on findings
//! cargo run -p lint -- --json    # machine-readable output
//! ```
//!
//! See [`rules`] for the catalog (L1 determinism, L2 level-arithmetic, L3
//! panic-freedom) and DESIGN.md §"Determinism & invariants" for the policy.
//! Deliberately sound sites are recorded in `lint-allow.txt` at the
//! workspace root, each with a justifying comment.
//!
//! The crate is dependency-free by design: it is itself part of the CI gate
//! and must build on air-gapped runners, so it uses a small hand-rolled
//! lexer ([`lexer`]) instead of `syn`.

pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use report::{parse_allowlist, AllowEntry, Report};
pub use rules::{check_file, rules_for, Finding, RuleId};

/// Lints one source string as `path` (workspace-relative, forward slashes)
/// under `rules`.
pub fn lint_source(path: &str, source: &str, rules: &[RuleId]) -> Vec<Finding> {
    let tokens = lexer::tokenize(source);
    let lines: Vec<&str> = source.lines().collect();
    rules::check_file(path, &tokens, &lines, rules)
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// output.
///
/// # Errors
///
/// Propagates I/O errors as readable strings.
pub fn collect_rs_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            files.extend(collect_rs_files(&path)?);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Normalizes `path` relative to `root` with forward slashes, for scope
/// matching and stable output on every platform.
pub fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Lints the whole workspace rooted at `root` (every `.rs` file under
/// `crates/`, scoped per [`rules::rules_for`]), applying the allowlist.
///
/// # Errors
///
/// Returns a readable message on I/O or allowlist-syntax errors.
pub fn lint_workspace(root: &Path, allowlist: &[AllowEntry]) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("{} has no crates/ directory; pass --root", root.display()));
    }
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    for file in collect_rs_files(&crates_dir)? {
        let rel = relative_slash_path(root, &file);
        let rules = rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        files_checked += 1;
        findings.extend(lint_source(&rel, &source, &rules));
    }
    Ok(Report::from_findings(findings, allowlist, files_checked))
}

/// Lints explicit files with **all** rules (used by the fixture self-tests
/// and for ad-hoc checks of files outside the standard scope).
///
/// # Errors
///
/// Returns a readable message on I/O errors.
pub fn lint_files_all_rules(root: &Path, files: &[PathBuf]) -> Result<Report, String> {
    let mut findings = Vec::new();
    for file in files {
        let rel = relative_slash_path(root, file);
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        findings.extend(lint_source(&rel, &source, &RuleId::all()));
    }
    Ok(Report::from_findings(findings, &[], files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_scope() {
        let src = "fn f() { let m = std::collections::HashMap::new(); }";
        assert_eq!(lint_source("x.rs", src, &[RuleId::L1]).len(), 1);
        assert!(lint_source("x.rs", src, &[RuleId::L2]).is_empty());
    }

    #[test]
    fn relative_paths_are_slashed() {
        let root = Path::new("/a/b");
        let file = Path::new("/a/b/crates/mis/src/levels.rs");
        assert_eq!(relative_slash_path(root, file), "crates/mis/src/levels.rs");
    }
}
