//! A minimal synchronous message-passing (LOCAL-model) substrate.
//!
//! In the LOCAL model, nodes have unique identifiers and exchange
//! unbounded messages with all neighbors in synchronous rounds — the
//! *strong* end of the spectrum whose weak end is the beeping model. The
//! substrate exists so classic comparators (Luby) can be measured next to
//! the beeping algorithms in the same harness.

use graphs::{Graph, NodeId};
use rand_pcg::Pcg64Mcg;

/// A protocol in the LOCAL model: per-round message generation and inbox
/// processing.
pub trait LocalProtocol {
    /// Per-node mutable state.
    type State: Clone + std::fmt::Debug;
    /// The message type broadcast to all neighbors each round.
    type Message: Clone;

    /// Produces the message `node` broadcasts this round.
    fn send(&self, node: NodeId, state: &Self::State, rng: &mut Pcg64Mcg) -> Self::Message;

    /// Processes the messages received from neighbors (one per neighbor, in
    /// adjacency order).
    fn receive(&self, node: NodeId, state: &mut Self::State, inbox: &[Self::Message]);
}

/// Synchronous executor for a [`LocalProtocol`].
#[derive(Debug)]
pub struct LocalSimulator<'g, P: LocalProtocol> {
    graph: &'g Graph,
    protocol: P,
    states: Vec<P::State>,
    rngs: Vec<Pcg64Mcg>,
    round: u64,
}

impl<'g, P: LocalProtocol> LocalSimulator<'g, P> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `initial_states.len() != graph.len()`.
    pub fn new(
        graph: &'g Graph,
        protocol: P,
        initial_states: Vec<P::State>,
        seed: u64,
    ) -> LocalSimulator<'g, P> {
        assert_eq!(initial_states.len(), graph.len(), "one initial state per node");
        LocalSimulator {
            graph,
            protocol,
            states: initial_states,
            rngs: beeping::rng::node_rngs(seed, graph.len()),
            round: 0,
        }
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current states.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Crate-private mutable access, used by drivers that must refresh
    /// per-node data between rounds (e.g. Luby's priority redraw).
    pub(crate) fn states_mut(&mut self) -> &mut [P::State] {
        &mut self.states
    }

    /// Executes one synchronous message-passing round.
    pub fn step(&mut self) {
        let n = self.graph.len();
        let messages: Vec<P::Message> =
            (0..n).map(|v| self.protocol.send(v, &self.states[v], &mut self.rngs[v])).collect();
        let mut inbox: Vec<P::Message> = Vec::new();
        for v in 0..n {
            inbox.clear();
            inbox.extend(self.graph.neighbors(v).iter().map(|&u| messages[u as usize].clone()));
            self.protocol.receive(v, &mut self.states[v], &inbox);
        }
        self.round += 1;
    }

    /// Runs until `stop` holds (checked before the first round and after
    /// each one) or the budget is exhausted; returns the stop round.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&[P::State]) -> bool,
    {
        if stop(&self.states) {
            return Some(self.round);
        }
        while self.round < max_rounds {
            self.step();
            if stop(&self.states) {
                return Some(self.round);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::classic;

    /// Flood-max: every node repeatedly broadcasts the largest id it has
    /// seen; after diameter rounds all agree on the max id.
    struct FloodMax;
    impl LocalProtocol for FloodMax {
        type State = usize;
        type Message = usize;
        fn send(&self, _: NodeId, state: &usize, _: &mut Pcg64Mcg) -> usize {
            *state
        }
        fn receive(&self, _: NodeId, state: &mut usize, inbox: &[usize]) {
            for &m in inbox {
                *state = (*state).max(m);
            }
        }
    }

    #[test]
    fn flood_max_converges_in_diameter_rounds() {
        let g = classic::path(10);
        let init: Vec<usize> = (0..10).collect();
        let mut sim = LocalSimulator::new(&g, FloodMax, init, 0);
        let done = sim.run_until(100, |s| s.iter().all(|&x| x == 9));
        assert_eq!(done, Some(9)); // diameter of P_10
    }

    #[test]
    fn run_until_initial_check() {
        let g = classic::path(3);
        let mut sim = LocalSimulator::new(&g, FloodMax, vec![5, 5, 5], 0);
        assert_eq!(sim.run_until(10, |s| s.iter().all(|&x| x == 5)), Some(0));
    }

    #[test]
    fn budget_exhaustion() {
        let g = classic::path(3);
        let mut sim = LocalSimulator::new(&g, FloodMax, vec![0, 1, 2], 0);
        assert_eq!(sim.run_until(1, |s| s.iter().all(|&x| x == 99)), None);
        assert_eq!(sim.round(), 1);
    }
}
