//! An epoch-structured beeping MIS with knowledge of an upper bound
//! `N ≥ n`, structurally faithful to Afek, Alon, Bar-Joseph, Cornejo,
//! Haeupler & Kuhn, *Beeping a maximal independent set* \[1\].
//!
//! Structure (one **epoch** = `⌈log₂ N⌉ + 2` slots):
//!
//! - at the epoch start every competing node draws a uniform slot in
//!   `{0, …, ⌈log₂ N⌉ - 1}`;
//! - a competing node beeps in its slot unless it already heard a beep in
//!   an earlier slot of this epoch (then it withdraws for the epoch);
//! - a node that beeps in its slot and hears nothing *during its slot*
//!   wins its neighborhood and joins the MIS;
//! - in the **announcement slot** (last slot), MIS nodes beep; competing
//!   neighbors that hear it leave the competition permanently.
//!
//! Faithfulness and simplification: like Afek et al., nodes know only `N`,
//! compete through `Θ(log N)`-round exchanges, and are eliminated through
//! announcements; epochs are aligned by the global round counter (their
//! model's synchronized wake-up). The original paper's extra machinery for
//! *adversarial* wake-up (which drives their `O(log² N · log n)` bound and
//! lower bound) is out of scope here — the documented comparison point is
//! the multiplicative `Θ(log N)` per-epoch factor that the reproduced
//! paper's Algorithm 1 avoids.
//!
//! The epoch counter is derived from the global round number, so this
//! baseline is **not** self-stabilizing with respect to clock faults — it
//! is the "knows N, pays a log N factor" reference line.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use graphs::{Graph, NodeId};
use rand::{Rng, RngCore};

/// Competition status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Competing,
    InMis,
    Out,
}

/// Per-node state.
#[derive(Debug, Clone, Copy)]
pub struct AfekState {
    status: Status,
    /// Position within the current epoch, advanced locally each round
    /// (synchronized by identical initialization).
    clock: u32,
    /// This epoch's chosen slot.
    slot: u32,
    /// Whether an earlier beep this epoch forced a withdrawal.
    withdrawn: bool,
    /// Whether this node beeped in its slot and heard silence (a win,
    /// confirmed at the announcement slot).
    won: bool,
}

impl AfekState {
    /// The synchronized initial state (epoch position 0, competing).
    pub fn initial() -> AfekState {
        AfekState { status: Status::Competing, clock: 0, slot: 0, withdrawn: false, won: false }
    }
}

/// The epoch-structured protocol. `N` is the known upper bound on the
/// network size.
///
/// # Example
///
/// ```
/// use baselines::afek::AfekStyleMis;
/// use graphs::generators::random;
///
/// let g = random::gnp(100, 0.08, 3);
/// let algo = AfekStyleMis::new(100); // knows N = n here
/// let (mis, rounds) = algo.run(&g, 5, 100_000).expect("terminates");
/// assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AfekStyleMis {
    slots: u32,
}

impl AfekStyleMis {
    /// Creates the protocol with knowledge of the upper bound `n_bound ≥ n`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bound == 0`.
    pub fn new(n_bound: usize) -> AfekStyleMis {
        assert!(n_bound > 0, "N must be positive");
        AfekStyleMis { slots: mis::levels::log2_ceil(n_bound).max(2) }
    }

    /// Number of competition slots per epoch (`max(⌈log₂ N⌉, 2)` — at
    /// least two, because with a single slot adjacent contenders collide in
    /// every epoch and no progress is ever made).
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Epoch length in rounds: competition slots plus the announcement
    /// slot.
    pub fn epoch_len(&self) -> u32 {
        self.slots + 1
    }

    /// `true` when no node is still competing.
    pub fn is_terminated(&self, states: &[AfekState]) -> bool {
        states.iter().all(|s| s.status != Status::Competing)
    }

    /// Extracts the MIS bitmap.
    pub fn mis_members(&self, states: &[AfekState]) -> Vec<bool> {
        states.iter().map(|s| s.status == Status::InMis).collect()
    }

    /// Runs from the synchronized start; returns the membership bitmap and
    /// round count, or `None` on budget exhaustion.
    pub fn run(&self, graph: &Graph, seed: u64, max_rounds: u64) -> Option<(Vec<bool>, u64)> {
        let mut sim =
            beeping::Simulator::new(graph, *self, vec![AfekState::initial(); graph.len()], seed);
        let done = sim.run_until(max_rounds, |s| self.is_terminated(s.states()))?;
        let mis = self.mis_members(sim.states());
        // Runtime invariant: from the synchronized start, termination always
        // yields a maximal independent set.
        debug_assert!(
            graphs::mis::is_maximal_independent_set(graph, &mis),
            "terminated at round {done} with an invalid MIS"
        );
        Some((mis, done))
    }
}

impl BeepingProtocol for AfekStyleMis {
    type State = AfekState;

    fn channels(&self) -> Channels {
        Channels::One
    }

    fn transmit(&self, _node: NodeId, state: &AfekState, rng: &mut dyn RngCore) -> BeepSignal {
        // Epoch-start bookkeeping happens in `receive`; slot drawing must
        // happen here for clock 0 of each epoch, which is why the draw is
        // deterministic given the state: a fresh slot was stored at the end
        // of the previous epoch (or by `initial()` + first-round special
        // case below).
        let _ = rng;
        let announce = state.clock == self.slots;
        match state.status {
            Status::InMis => {
                if announce {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            Status::Competing => {
                let competes =
                    !announce && !state.withdrawn && (state.won || state.clock == state.slot);
                if competes || (announce && state.won) {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            Status::Out => BeepSignal::silent(),
        }
    }

    fn receive(
        &self,
        _node: NodeId,
        state: &mut AfekState,
        sent: BeepSignal,
        heard: BeepSignal,
        rng: &mut dyn RngCore,
    ) {
        let beeped = sent.on_channel1();
        let heard_beep = heard.on_channel1();
        let announce = state.clock == self.slots;
        if announce {
            if state.status == Status::Competing {
                if state.won {
                    state.status = Status::InMis;
                } else if heard_beep {
                    state.status = Status::Out;
                }
            }
            // Epoch rollover: reset per-epoch flags and draw a new slot.
            state.clock = 0;
            state.withdrawn = false;
            state.won = false;
            state.slot = rng.gen_range(0..self.slots);
        } else {
            if state.status == Status::Competing && !state.won {
                if beeped && !heard_beep {
                    state.won = true;
                } else if heard_beep && !beeped {
                    state.withdrawn = true;
                }
                // Simultaneous beep-and-hear: lost the slot, but may compete
                // again next epoch; no withdrawal needed (slot already
                // passed).
            }
            state.clock += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, random};

    #[test]
    fn produces_mis_on_families() {
        for (i, g) in [
            classic::path(20),
            classic::cycle(16),
            classic::complete(10),
            classic::star(25),
            random::gnp(120, 0.06, 3),
        ]
        .iter()
        .enumerate()
        {
            let algo = AfekStyleMis::new(g.len());
            let (mis, rounds) = algo.run(g, i as u64, 1_000_000).expect("terminates");
            assert!(graphs::mis::is_maximal_independent_set(g, &mis), "graph {i}");
            assert!(rounds > 0);
        }
    }

    #[test]
    fn epoch_len_is_log_n_plus_one() {
        assert_eq!(AfekStyleMis::new(1024).epoch_len(), 11);
        assert_eq!(AfekStyleMis::new(1000).epoch_len(), 11);
        assert_eq!(AfekStyleMis::new(2).epoch_len(), 3);
        assert_eq!(AfekStyleMis::new(1).epoch_len(), 3);
    }

    #[test]
    fn larger_n_bound_costs_more_rounds() {
        // Same graph, loose vs tight bound on N: the loose bound pays
        // proportionally longer epochs.
        let g = random::gnp(60, 0.1, 2);
        let tight = AfekStyleMis::new(60);
        let loose = AfekStyleMis::new(60 * 1024);
        let (_, r_tight) = tight.run(&g, 4, 1_000_000).unwrap();
        let (_, r_loose) = loose.run(&g, 4, 1_000_000).unwrap();
        assert!(
            r_loose as f64 > r_tight as f64 * 1.3,
            "loose bound should cost materially more: tight={r_tight} loose={r_loose}"
        );
    }

    #[test]
    #[should_panic(expected = "N must be positive")]
    fn zero_bound_rejected() {
        AfekStyleMis::new(0);
    }
}
