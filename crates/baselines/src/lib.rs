//! Baseline MIS algorithms the paper positions itself against (§1).
//!
//! - [`jeavons`]: the original Jeavons–Scott–Xu beeping algorithm \[17\] —
//!   same O(log n) run-time from a clean start, but **not** self-stabilizing
//!   (it needs `p₁(v) = ½` and phase synchronization modulo 2). The
//!   adversarial-initialization experiment demonstrates exactly the failure
//!   modes §2 of the paper describes.
//! - [`afek`]: an epoch-structured beeping MIS with knowledge of an upper
//!   bound `N ≥ n`, structurally faithful to Afek et al. \[1\]. Its round
//!   complexity carries the `Θ(log N)`-per-epoch factor that the paper's
//!   algorithm avoids.
//! - [`two_state`]: a constant-state self-stabilizing beeping MIS in the
//!   spirit of Giakkoupis & Ziccardi \[16\] — poly-log on some families,
//!   degrading where the paper's level ladder pays off.
//! - [`stone_age`]: the Stone Age model of Emek & Wattenhofer (bounded
//!   counting over a finite alphabet), with an executable embedding of the
//!   beeping model (`b = 1`, two letters) cross-validated bit-for-bit
//!   against the native simulator.
//! - [`local`]: a minimal synchronous message-passing (LOCAL-model)
//!   substrate, built so that classic comparators can run next to the
//!   beeping algorithms.
//! - [`luby`]: Luby's algorithm on that substrate — the gold-standard
//!   O(log n)-round distributed MIS with full message passing, marking the
//!   "how much does the weak beeping model cost" reference line.
//!
//! Sequential ground truth (greedy) lives in [`graphs::mis`].

pub mod afek;
pub mod jeavons;
pub mod local;
pub mod luby;
pub mod stone_age;
pub mod two_state;

pub use afek::AfekStyleMis;
pub use jeavons::{JsxMis, JsxState, JsxStatus};
pub use luby::luby_mis;
pub use two_state::TwoStateMis;
