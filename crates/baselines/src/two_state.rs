//! A constant-state self-stabilizing beeping MIS, in the spirit of
//! Giakkoupis & Ziccardi \[16\] (*Distributed self-stabilizing MIS with few
//! states and weak communication*, PODC 2023), which the reproduced paper
//! cites as: "a constant-state algorithm … stabilizes in poly-logarithmic
//! rounds w.h.p., albeit being efficient only for some graph families".
//!
//! Each vertex keeps a single bit:
//!
//! - `In` vertices beep every round;
//! - an `In` vertex that hears a beep (a rival claimant) stays `In` only
//!   with probability ½, otherwise retreats to `Out`;
//! - an `Out` vertex that hears **no** beep (it is undominated) promotes
//!   itself to `In` with probability ½.
//!
//! A configuration whose `In`-set is an MIS is a fixpoint: members beep
//! into silence and stay, dominated vertices hear a beep and stay out. The
//! interesting contrast with the paper's Algorithm 1 — measured by
//! experiment `EXT-2STATE` — is the *cost of having no back-off state*:
//! without the geometric level ladder, high-degree neighborhoods keep many
//! rivals alive per round and convergence degrades on dense or
//! degree-heterogeneous graphs, which is exactly the "efficient only for
//! some graph families" caveat.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use graphs::{Graph, NodeId};
use rand::{Rng, RngCore};

/// The one-bit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoState {
    /// Claiming MIS membership; beeps every round.
    In,
    /// Not claiming; silent.
    Out,
}

/// The constant-state protocol.
///
/// # Example
///
/// ```
/// use baselines::two_state::TwoStateMis;
/// use graphs::generators::classic;
///
/// let g = classic::cycle(20);
/// let algo = TwoStateMis::new();
/// let (mis, rounds) = algo.run_random_init(&g, 3, 1_000_000).expect("stabilizes");
/// assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
/// assert!(rounds > 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoStateMis;

impl TwoStateMis {
    /// Creates the protocol.
    pub fn new() -> TwoStateMis {
        TwoStateMis
    }

    /// The `In`-set as a bitmap.
    pub fn in_set(&self, states: &[TwoState]) -> Vec<bool> {
        states.iter().map(|&s| s == TwoState::In).collect()
    }

    /// `true` if the `In`-set is an MIS — the legal (and then frozen)
    /// configurations.
    pub fn is_stabilized(&self, graph: &Graph, states: &[TwoState]) -> bool {
        graphs::mis::is_maximal_independent_set(graph, &self.in_set(states))
    }

    /// Runs from uniformly random states until the `In`-set is an MIS.
    pub fn run_random_init(
        &self,
        graph: &Graph,
        seed: u64,
        max_rounds: u64,
    ) -> Option<(Vec<bool>, u64)> {
        let mut rng = beeping::rng::aux_rng(seed, 0x25);
        let init: Vec<TwoState> = (0..graph.len())
            .map(|_| if rng.gen_bool(0.5) { TwoState::In } else { TwoState::Out })
            .collect();
        self.run_from(graph, init, seed, max_rounds)
    }

    /// Runs from explicit states.
    pub fn run_from(
        &self,
        graph: &Graph,
        initial: Vec<TwoState>,
        seed: u64,
        max_rounds: u64,
    ) -> Option<(Vec<bool>, u64)> {
        let mut sim = beeping::Simulator::new(graph, *self, initial, seed);
        let done = sim.run_until(max_rounds, |s| self.is_stabilized(graph, s.states()))?;
        Some((self.in_set(sim.states()), done))
    }
}

impl BeepingProtocol for TwoStateMis {
    type State = TwoState;

    fn channels(&self) -> Channels {
        Channels::One
    }

    fn transmit(&self, _node: NodeId, state: &TwoState, _rng: &mut dyn RngCore) -> BeepSignal {
        match state {
            TwoState::In => BeepSignal::channel1(),
            TwoState::Out => BeepSignal::silent(),
        }
    }

    fn receive(
        &self,
        _node: NodeId,
        state: &mut TwoState,
        _sent: BeepSignal,
        heard: BeepSignal,
        rng: &mut dyn RngCore,
    ) {
        let heard_beep = heard.on_channel1();
        *state = match (*state, heard_beep) {
            // Uncontested claim / dominated non-member: legal, frozen.
            (TwoState::In, false) => TwoState::In,
            (TwoState::Out, true) => TwoState::Out,
            // Contested claim: back down with probability ½.
            (TwoState::In, true) => {
                if rng.gen_bool(0.5) {
                    TwoState::In
                } else {
                    TwoState::Out
                }
            }
            // Undominated non-member: promote with probability ½.
            (TwoState::Out, false) => {
                if rng.gen_bool(0.5) {
                    TwoState::In
                } else {
                    TwoState::Out
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, random};

    #[test]
    fn legal_configuration_is_fixpoint() {
        let g = classic::path(3);
        let algo = TwoStateMis::new();
        let states = vec![TwoState::Out, TwoState::In, TwoState::Out];
        assert!(algo.is_stabilized(&g, &states));
        let mut sim = beeping::Simulator::new(&g, algo, states.clone(), 1);
        sim.run(50);
        assert_eq!(sim.states(), states.as_slice());
    }

    #[test]
    fn stabilizes_on_sparse_families() {
        for (i, g) in [
            classic::path(30),
            classic::cycle(25),
            classic::star(30),
            random::gnp(80, 4.0 / 79.0, 2),
        ]
        .iter()
        .enumerate()
        {
            let algo = TwoStateMis::new();
            let (mis, _) = algo
                .run_random_init(g, i as u64, 5_000_000)
                .unwrap_or_else(|| panic!("graph {i} did not stabilize"));
            assert!(graphs::mis::is_maximal_independent_set(g, &mis), "graph {i}");
        }
    }

    #[test]
    fn adjacent_in_pair_resolves() {
        let g = classic::path(2);
        let algo = TwoStateMis::new();
        let (mis, _) =
            algo.run_from(&g, vec![TwoState::In, TwoState::In], 1, 1_000_000).expect("resolves");
        assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn all_out_recovers() {
        let g = classic::cycle(8);
        let algo = TwoStateMis::new();
        let (mis, rounds) =
            algo.run_from(&g, vec![TwoState::Out; 8], 1, 1_000_000).expect("recovers");
        assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
        assert!(rounds > 0);
    }

    #[test]
    fn deterministic() {
        let g = random::gnp(40, 0.1, 3);
        let algo = TwoStateMis::new();
        assert_eq!(algo.run_random_init(&g, 7, 5_000_000), algo.run_random_init(&g, 7, 5_000_000));
    }
}
