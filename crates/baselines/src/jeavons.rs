//! The original Jeavons–Scott–Xu (JSX) beeping MIS algorithm \[17\] — the
//! non-self-stabilizing starting point of the paper.
//!
//! The algorithm works in *phases of two rounds* (paper §2):
//!
//! - **Competition round** (even rounds): each active vertex beeps with its
//!   current probability `p`. If it beeps and hears nothing, it joins the
//!   MIS.
//! - **Announcement round** (odd rounds): vertices that just joined beep;
//!   active neighbors hearing the announcement become non-MIS and exit.
//!   Then every remaining active vertex adapts `p`: halve it if a neighbor
//!   beeped in the competition round, double it (capped at ½) otherwise.
//!
//! Joined and exited vertices stay **silent forever** — which is precisely
//! why the algorithm cannot detect faults, and the two-round phase structure
//! plus the fixed initial `p = ½` are why it is not self-stabilizing. The
//! [`JsxState`] exposes every field so the adversarial experiment can start
//! the network desynchronized and show the failures.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use graphs::{Graph, NodeId};
use rand::{Rng, RngCore};

/// Largest probability exponent a vertex can reach: `p` never falls below
/// `2^{-62}`, keeping `2^{-prob_exp}` comfortably inside `f64` range.
pub const MAX_PROB_EXP: u32 = 62;

/// Status of a vertex in the JSX algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsxStatus {
    /// Still competing.
    Active,
    /// Joined the MIS in the previous competition round; will announce.
    Joining,
    /// Permanently in the MIS (silent).
    InMis,
    /// Permanently out of the MIS (silent).
    OutOfMis,
}

/// Per-vertex state of the JSX algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsxState {
    /// Beep-probability exponent: `p = 2^{-prob_exp}`; the clean start is
    /// `prob_exp = 1` (`p = ½`), and `p` never rises above ½.
    pub prob_exp: u32,
    /// Phase parity as this vertex believes it: `0` = competition round
    /// next, `1` = announcement round next. The clean start is `0`
    /// everywhere; corrupting this models the loss of modulo-2 synchrony.
    pub parity: u8,
    /// Whether the vertex heard a beep in the last competition round (used
    /// by the probability update in the announcement round).
    pub heard_in_competition: bool,
    /// Competition status.
    pub status: JsxStatus,
}

impl JsxState {
    /// The clean initial state the algorithm's analysis assumes:
    /// `p = ½`, competition round next, active.
    pub fn clean() -> JsxState {
        JsxState { prob_exp: 1, parity: 0, heard_in_competition: false, status: JsxStatus::Active }
    }
}

impl Default for JsxState {
    fn default() -> JsxState {
        JsxState::clean()
    }
}

/// The JSX protocol object. Stateless apart from the probability cap — all
/// per-vertex data lives in [`JsxState`].
///
/// # Example
///
/// ```
/// use baselines::jeavons::JsxMis;
/// use graphs::generators::random;
///
/// let g = random::gnp(100, 0.1, 3);
/// let jsx = JsxMis::new();
/// let (mis, rounds) = jsx.run_clean(&g, 5, 10_000).expect("terminates");
/// assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
/// assert!(rounds % 2 == 0); // phases of two rounds
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct JsxMis;

impl JsxMis {
    /// Creates the protocol.
    pub fn new() -> JsxMis {
        JsxMis
    }

    /// `true` when no vertex is active or joining — the algorithm has
    /// terminated and the `InMis` vertices are its answer.
    pub fn is_terminated(&self, states: &[JsxState]) -> bool {
        states.iter().all(|s| matches!(s.status, JsxStatus::InMis | JsxStatus::OutOfMis))
    }

    /// Extracts the MIS bitmap.
    pub fn mis_members(&self, states: &[JsxState]) -> Vec<bool> {
        states.iter().map(|s| s.status == JsxStatus::InMis).collect()
    }

    /// Runs from the clean synchronized start until termination; returns
    /// the membership bitmap and the number of rounds, or `None` if the
    /// round budget is exhausted.
    pub fn run_clean(&self, graph: &Graph, seed: u64, max_rounds: u64) -> Option<(Vec<bool>, u64)> {
        self.run_from(graph, vec![JsxState::clean(); graph.len()], seed, max_rounds)
    }

    /// Runs from an arbitrary initial configuration until termination —
    /// used by the adversarial experiment. Returns `None` on budget
    /// exhaustion (which, from desynchronized states, is a real outcome:
    /// the algorithm can deadlock with active vertices that never succeed,
    /// or terminate with a non-MIS).
    pub fn run_from(
        &self,
        graph: &Graph,
        initial: Vec<JsxState>,
        seed: u64,
        max_rounds: u64,
    ) -> Option<(Vec<bool>, u64)> {
        let mut sim = beeping::Simulator::new(graph, *self, initial, seed);
        if cfg!(debug_assertions) {
            // Runtime invariant: the probability exponent stays inside
            // [1, MAX_PROB_EXP] from any starting configuration.
            sim.set_invariant_hook(|_, round, states: &[JsxState]| {
                for (v, s) in states.iter().enumerate() {
                    assert!(
                        (1..=MAX_PROB_EXP).contains(&s.prob_exp),
                        "round {round}: node {v} has prob_exp={} outside [1, {MAX_PROB_EXP}]",
                        s.prob_exp
                    );
                }
            });
        }
        let done = sim.run_until(max_rounds, |s| self.is_terminated(s.states()))?;
        Some((self.mis_members(sim.states()), done))
    }
}

impl BeepingProtocol for JsxMis {
    type State = JsxState;

    fn channels(&self) -> Channels {
        Channels::One
    }

    fn transmit(&self, _node: NodeId, state: &JsxState, rng: &mut dyn RngCore) -> BeepSignal {
        match (state.parity, state.status) {
            // Competition round: active vertices beep with probability p.
            (0, JsxStatus::Active) => {
                if rng.gen_bool(2f64.powi(-i32::try_from(state.prob_exp).unwrap_or(i32::MAX))) {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            // Announcement round: joining vertices beep.
            (1, JsxStatus::Joining) => BeepSignal::channel1(),
            // Everyone else is silent (including, crucially, stabilized
            // vertices — the non-self-stabilizing design).
            _ => BeepSignal::silent(),
        }
    }

    fn receive(
        &self,
        _node: NodeId,
        state: &mut JsxState,
        sent: BeepSignal,
        heard: BeepSignal,
        _rng: &mut dyn RngCore,
    ) {
        let beeped = sent.on_channel1();
        let heard_beep = heard.on_channel1();
        match state.parity {
            0 => {
                // End of a competition round.
                state.heard_in_competition = heard_beep;
                if state.status == JsxStatus::Active && beeped && !heard_beep {
                    state.status = JsxStatus::Joining;
                }
                state.parity = 1;
            }
            _ => {
                // End of an announcement round.
                if state.status == JsxStatus::Joining {
                    state.status = JsxStatus::InMis;
                } else if state.status == JsxStatus::Active {
                    if heard_beep {
                        // A neighbor joined the MIS.
                        state.status = JsxStatus::OutOfMis;
                    } else if state.heard_in_competition {
                        state.prob_exp = state.prob_exp.saturating_add(1).min(MAX_PROB_EXP);
                    } else {
                        state.prob_exp = state.prob_exp.saturating_sub(1).max(1);
                    }
                }
                state.parity = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, random};

    #[test]
    fn clean_run_produces_mis() {
        for (i, g) in [
            classic::path(20),
            classic::cycle(15),
            classic::complete(12),
            classic::star(25),
            random::gnp(100, 0.08, 4),
        ]
        .iter()
        .enumerate()
        {
            let (mis, rounds) = JsxMis::new().run_clean(g, i as u64, 100_000).expect("terminates");
            assert!(graphs::mis::is_maximal_independent_set(g, &mis), "graph {i}");
            assert!(rounds > 0);
        }
    }

    #[test]
    fn clean_run_is_deterministic() {
        let g = random::gnp(60, 0.1, 7);
        let a = JsxMis::new().run_clean(&g, 9, 100_000).unwrap();
        let b = JsxMis::new().run_clean(&g, 9, 100_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn terminated_vertices_stay_silent() {
        let g = classic::complete(8);
        let jsx = JsxMis::new();
        let mut sim = beeping::Simulator::new(&g, jsx, vec![JsxState::clean(); 8], 3);
        sim.run_until(100_000, |s| jsx.is_terminated(s.states())).expect("terminates");
        let before: Vec<JsxStatus> = sim.states().iter().map(|s| s.status).collect();
        for _ in 0..10 {
            let quiet = sim.step();
            assert_eq!(quiet.total_beeps(), 0);
        }
        let after: Vec<JsxStatus> = sim.states().iter().map(|s| s.status).collect();
        assert_eq!(after, before);
    }

    #[test]
    fn corrupted_in_mis_states_can_yield_non_mis() {
        // Adversarial initialization: two adjacent vertices both believe
        // they are InMis. Both stay silent forever — the "terminated" output
        // violates independence and the algorithm can never detect it.
        let g = classic::path(2);
        let mut bad = JsxState::clean();
        bad.status = JsxStatus::InMis;
        let (mis, rounds) =
            JsxMis::new().run_from(&g, vec![bad, bad], 0, 1_000).expect("already terminated");
        assert_eq!(rounds, 0);
        assert_eq!(mis, vec![true, true]);
        assert!(!graphs::mis::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn corrupted_out_of_mis_states_can_deadlock_coverage() {
        // All vertices believe they are OutOfMis: termination is immediate
        // but nothing dominates them — an empty, non-maximal "MIS".
        let g = classic::cycle(6);
        let mut bad = JsxState::clean();
        bad.status = JsxStatus::OutOfMis;
        let (mis, _) =
            JsxMis::new().run_from(&g, vec![bad; 6], 0, 1_000).expect("already terminated");
        assert!(mis.iter().all(|&m| !m));
        assert!(!graphs::mis::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn probability_exponent_bounded() {
        let g = classic::complete(6);
        let jsx = JsxMis::new();
        let mut sim = beeping::Simulator::new(&g, jsx, vec![JsxState::clean(); 6], 5);
        for _ in 0..500 {
            sim.step();
            for s in sim.states() {
                assert!(s.prob_exp >= 1 && s.prob_exp <= MAX_PROB_EXP);
            }
        }
    }

    #[test]
    fn rounds_even_at_termination_from_clean_start() {
        let g = random::gnp(40, 0.15, 2);
        let (_, rounds) = JsxMis::new().run_clean(&g, 11, 100_000).unwrap();
        assert_eq!(rounds % 2, 0, "clean runs terminate on phase boundaries");
    }
}
