//! Luby's algorithm on the LOCAL substrate — the gold-standard O(log n)
//! distributed MIS with full message passing.
//!
//! Each *iteration* (two LOCAL rounds) of the permutation variant:
//!
//! 1. every active node draws a random 64-bit priority and broadcasts it
//!    (plus its activity status);
//! 2. a node whose priority is a strict local minimum among active
//!    neighbors joins the MIS and announces; MIS nodes and their neighbors
//!    deactivate.
//!
//! Luby (1986) showed O(log n) iterations suffice w.h.p. The measured
//! iteration counts give the "strong model" reference line in the baseline
//! comparison table.

use graphs::Graph;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

use crate::local::{LocalProtocol, LocalSimulator};

/// Phase within a Luby iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Broadcasting priorities.
    Draw,
    /// Broadcasting join decisions.
    Announce,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    InMis,
    Out,
}

#[derive(Debug, Clone, Copy)]
struct LubyState {
    status: Status,
    phase: Phase,
    priority: u64,
    joining: bool,
}

#[derive(Debug, Clone, Copy)]
struct LubyMessage {
    active: bool,
    priority: u64,
    joining: bool,
}

struct Luby;

impl LocalProtocol for Luby {
    type State = LubyState;
    type Message = LubyMessage;

    fn send(&self, _: usize, state: &LubyState, _: &mut Pcg64Mcg) -> LubyMessage {
        LubyMessage {
            active: state.status == Status::Active,
            priority: state.priority,
            joining: state.joining,
        }
    }

    fn receive(&self, _: usize, state: &mut LubyState, inbox: &[LubyMessage]) {
        match state.phase {
            Phase::Draw => {
                if state.status == Status::Active {
                    let is_local_min =
                        inbox.iter().filter(|m| m.active).all(|m| state.priority < m.priority);
                    state.joining = is_local_min;
                    if is_local_min {
                        state.status = Status::InMis;
                    }
                }
                state.phase = Phase::Announce;
            }
            Phase::Announce => {
                if state.status == Status::Active && inbox.iter().any(|m| m.joining) {
                    state.status = Status::Out;
                }
                state.joining = false;
                state.phase = Phase::Draw;
            }
        }
    }
}

/// Pre-round hook: priorities must be freshly drawn before each Draw phase.
/// The LOCAL substrate has no built-in pre-round state mutation, so the
/// driver below interleaves priority redraws with simulator steps.
fn redraw_priorities(states: &mut [LubyState], rngs: &mut [Pcg64Mcg]) {
    for (s, rng) in states.iter_mut().zip(rngs) {
        if s.status == Status::Active {
            s.priority = rng.gen();
        }
    }
}

/// Runs Luby's algorithm; returns `(mis, iterations)` where one iteration
/// is one draw+announce pair, or `None` if `max_iterations` is exhausted
/// (which does not happen for any reasonable budget).
///
/// # Example
///
/// ```
/// use graphs::generators::random;
///
/// let g = random::gnp(200, 0.05, 1);
/// let (mis, iters) = baselines::luby_mis(&g, 1, 1_000).unwrap();
/// assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
/// assert!(iters <= 30);
/// ```
pub fn luby_mis(graph: &Graph, seed: u64, max_iterations: u64) -> Option<(Vec<bool>, u64)> {
    let n = graph.len();
    let init =
        vec![
            LubyState { status: Status::Active, phase: Phase::Draw, priority: 0, joining: false };
            n
        ];
    let mut sim = LocalSimulator::new(graph, Luby, init, seed);
    // Dedicated priority RNGs (separate from the substrate's message RNGs).
    let mut rngs = beeping::rng::node_rngs(seed ^ 0x9E37_79B9, n);
    let mut iterations = 0;
    while iterations < max_iterations {
        if sim.states().iter().all(|s| s.status != Status::Active) {
            let mis = sim.states().iter().map(|s| s.status == Status::InMis).collect();
            return Some((mis, iterations));
        }
        // One iteration: redraw priorities, then run the two phases.
        {
            // Safety of the redraw: LocalSimulator does not expose &mut
            // states, so rebuild the simulator state in place via a step
            // wrapper — instead we keep priorities inside the state and
            // redraw through a dedicated protocol-free pass.
            let states = sim_states_mut(&mut sim);
            redraw_priorities(states, &mut rngs);
        }
        sim.step();
        sim.step();
        iterations += 1;
    }
    None
}

/// Internal accessor used by the Luby driver to refresh priorities between
/// iterations. Kept private to this module.
fn sim_states_mut<'a, 'g>(sim: &'a mut LocalSimulator<'g, Luby>) -> &'a mut [LubyState] {
    // LocalSimulator intentionally has no public mutable state accessor;
    // Luby's redraw is the one legitimate use, so the substrate grants it
    // through a crate-private method.
    sim.states_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, random, scale_free};

    #[test]
    fn luby_produces_mis_on_families() {
        for (i, g) in [
            classic::path(30),
            classic::cycle(25),
            classic::complete(15),
            classic::star(40),
            random::gnp(150, 0.05, 2),
            scale_free::barabasi_albert(120, 3, 4).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            let (mis, iters) = luby_mis(g, i as u64, 10_000).expect("terminates");
            assert!(graphs::mis::is_maximal_independent_set(g, &mis), "graph {i}");
            assert!(iters > 0);
        }
    }

    #[test]
    fn luby_on_empty_graph_takes_one_iteration() {
        let g = Graph::empty(10);
        let (mis, iters) = luby_mis(&g, 0, 10).unwrap();
        assert!(mis.iter().all(|&m| m)); // all isolated nodes join
        assert_eq!(iters, 1);
    }

    #[test]
    fn luby_deterministic() {
        let g = random::gnp(80, 0.1, 5);
        assert_eq!(luby_mis(&g, 3, 1000), luby_mis(&g, 3, 1000));
    }

    #[test]
    fn luby_iterations_scale_slowly() {
        // O(log n): even at n = 2000 the iteration count stays small.
        let g = random::gnp(2000, 0.005, 7);
        let (_, iters) = luby_mis(&g, 7, 1000).unwrap();
        assert!(iters < 40, "iterations = {iters}");
    }
}
