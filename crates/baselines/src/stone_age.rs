//! The **Stone Age model** of Emek & Wattenhofer (PODC 2013) — the other
//! weak computation model the reproduced paper discusses (§1): a network of
//! randomized finite-state machines communicating through a fixed message
//! alphabet with *bounded counting*.
//!
//! Semantics implemented here (synchronous variant):
//!
//! - every node permanently displays one **letter** from a finite alphabet
//!   `Σ` (its last transmitted message, readable by neighbors);
//! - in each round a node observes, for each letter `σ ∈ Σ`, the value
//!   `min(#neighbors displaying σ, b)` for the *bounding parameter* `b`
//!   (the "one-two-many" principle: nodes cannot count beyond `b`);
//! - it then applies its randomized transition function, updating its
//!   internal state and the letter it displays.
//!
//! With `b = 1` and alphabet `{silent, beep}` this model *subsumes* the
//! full-duplex beeping model — a fact the paper's related-work section
//! leans on ("a simplified version of the Stone Age model … is slightly
//! stronger than the beeping communication model"). The adapter
//! [`BeepingInStoneAge`] makes the embedding executable: any one-channel
//! [`BeepingProtocol`] runs unchanged on this substrate, and the test suite
//! cross-validates that a full Algorithm-1 execution is **bit-identical**
//! under both simulators.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use graphs::{Graph, NodeId};
use rand::RngCore;
use rand_pcg::Pcg64Mcg;

/// A protocol in the (synchronous) Stone Age model.
pub trait StoneAgeProtocol {
    /// Internal FSM state.
    type State: Clone + std::fmt::Debug;

    /// Size of the message alphabet `Σ`; letters are `0..alphabet_size()`.
    fn alphabet_size(&self) -> usize;

    /// The bounding parameter `b ≥ 1`: counts are clamped to `0..=b`.
    fn bound(&self) -> usize;

    /// One transition: given the bounded counts (`counts[σ] =
    /// min(#neighbors displaying σ, b)`), update the state and return the
    /// letter to display next.
    ///
    /// `displayed` is the letter this node currently displays.
    fn step(
        &self,
        node: NodeId,
        state: &mut Self::State,
        displayed: u8,
        counts: &[usize],
        rng: &mut dyn RngCore,
    ) -> u8;
}

/// Synchronous executor for a [`StoneAgeProtocol`].
#[derive(Debug)]
pub struct StoneAgeSimulator<'g, P: StoneAgeProtocol> {
    graph: &'g Graph,
    protocol: P,
    states: Vec<P::State>,
    displayed: Vec<u8>,
    rngs: Vec<Pcg64Mcg>,
    round: u64,
    counts_scratch: Vec<usize>,
}

impl<'g, P: StoneAgeProtocol> StoneAgeSimulator<'g, P> {
    /// Creates the simulator with initial states and initially displayed
    /// letters.
    ///
    /// # Panics
    ///
    /// Panics if the vectors don't match the graph size, if the alphabet is
    /// empty, if `b == 0`, or if an initial letter is outside the alphabet.
    pub fn new(
        graph: &'g Graph,
        protocol: P,
        initial_states: Vec<P::State>,
        initial_letters: Vec<u8>,
        seed: u64,
    ) -> StoneAgeSimulator<'g, P> {
        assert_eq!(initial_states.len(), graph.len(), "one state per node");
        assert_eq!(initial_letters.len(), graph.len(), "one letter per node");
        let sigma = protocol.alphabet_size();
        assert!(sigma > 0, "alphabet must be non-empty");
        assert!(protocol.bound() >= 1, "bounding parameter must be >= 1");
        assert!(
            initial_letters.iter().all(|&letter| (letter as usize) < sigma),
            "initial letters must be inside the alphabet"
        );
        StoneAgeSimulator {
            graph,
            protocol,
            states: initial_states,
            displayed: initial_letters,
            rngs: beeping::rng::node_rngs(seed, graph.len()),
            round: 0,
            counts_scratch: vec![0; sigma],
        }
    }

    /// Creates the simulator with the initial letters drawn by `first`
    /// using the simulator's own per-node random streams — required when
    /// the first displayed letter is itself a randomized function of the
    /// state (as in the beeping embedding, where it is the round-1
    /// transmission) and stream alignment with another executor matters.
    ///
    /// # Panics
    ///
    /// Same conditions as [`StoneAgeSimulator::new`].
    pub fn with_drawn_letters<F>(
        graph: &'g Graph,
        protocol: P,
        initial_states: Vec<P::State>,
        seed: u64,
        mut first: F,
    ) -> StoneAgeSimulator<'g, P>
    where
        F: FnMut(NodeId, &P::State, &mut Pcg64Mcg) -> u8,
    {
        assert_eq!(initial_states.len(), graph.len(), "one state per node");
        let sigma = protocol.alphabet_size();
        assert!(sigma > 0, "alphabet must be non-empty");
        assert!(protocol.bound() >= 1, "bounding parameter must be >= 1");
        let mut rngs = beeping::rng::node_rngs(seed, graph.len());
        let displayed: Vec<u8> = initial_states
            .iter()
            .enumerate()
            .map(|(v, s)| {
                let letter = first(v, s, &mut rngs[v]);
                assert!((letter as usize) < sigma, "initial letter outside Σ");
                letter
            })
            .collect();
        StoneAgeSimulator {
            graph,
            protocol,
            states: initial_states,
            displayed,
            rngs,
            round: 0,
            counts_scratch: vec![0; sigma],
        }
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Internal states.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Currently displayed letters.
    pub fn displayed(&self) -> &[u8] {
        &self.displayed
    }

    /// Executes one synchronous round.
    pub fn step(&mut self) {
        let n = self.graph.len();
        let b = self.protocol.bound();
        let sigma = self.protocol.alphabet_size();
        let mut next_letters = vec![0u8; n];
        #[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
        for v in 0..n {
            self.counts_scratch.iter_mut().for_each(|c| *c = 0);
            for &u in self.graph.neighbors(v) {
                let letter = self.displayed[u as usize] as usize;
                if self.counts_scratch[letter] < b {
                    self.counts_scratch[letter] += 1;
                }
            }
            let next = self.protocol.step(
                v,
                &mut self.states[v],
                self.displayed[v],
                &self.counts_scratch,
                &mut self.rngs[v],
            );
            assert!((next as usize) < sigma, "protocol displayed a letter outside Σ");
            next_letters[v] = next;
        }
        self.displayed = next_letters;
        self.round += 1;
    }

    /// Runs until `stop` holds (checked before the first round and after
    /// each); returns the stop round or `None` on budget exhaustion.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&[P::State]) -> bool,
    {
        if stop(&self.states) {
            return Some(self.round);
        }
        while self.round < max_rounds {
            self.step();
            if stop(&self.states) {
                return Some(self.round);
            }
        }
        None
    }
}

/// The executable embedding of the one-channel beeping model into the
/// Stone Age model with `Σ = {silent, beep}` and `b = 1`.
///
/// Semantics mapping: a node "beeps" by displaying letter 1 for one round;
/// hearing "≥ 1 beep" is the bounded count `counts[1] ≥ 1`. The wrapped
/// protocol's `transmit`/`receive` pair runs inside one Stone Age
/// transition, with the *next* displayed letter being the next round's
/// transmission — so the per-node RNG consumption matches the beeping
/// simulator draw-for-draw after the first (priming) round.
#[derive(Debug, Clone)]
pub struct BeepingInStoneAge<P> {
    inner: P,
}

/// The letter displayed by a silent node.
pub const LETTER_SILENT: u8 = 0;
/// The letter displayed by a beeping node.
pub const LETTER_BEEP: u8 = 1;

impl<P: BeepingProtocol> BeepingInStoneAge<P> {
    /// Wraps a one-channel beeping protocol.
    ///
    /// # Panics
    ///
    /// Panics if the protocol uses two channels (the embedding would need a
    /// 4-letter alphabet; only the single-channel model is provided).
    pub fn new(inner: P) -> BeepingInStoneAge<P> {
        assert_eq!(
            inner.channels(),
            Channels::One,
            "only one-channel protocols embed into the 2-letter Stone Age alphabet"
        );
        BeepingInStoneAge { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Builds a [`StoneAgeSimulator`] whose initial letters are the
    /// wrapped protocol's round-1 transmissions, drawn from the same
    /// per-node streams the executor will keep using — which makes the
    /// embedded execution consume randomness in exactly the order of the
    /// native beeping simulator (transmit₁, receive₁, transmit₂, …).
    pub fn into_simulator(
        self,
        graph: &Graph,
        initial_states: Vec<P::State>,
        seed: u64,
    ) -> StoneAgeSimulator<'_, BeepingInStoneAge<P>>
    where
        P: Clone,
    {
        let primer = self.inner.clone();
        StoneAgeSimulator::with_drawn_letters(
            graph,
            self,
            initial_states,
            seed,
            move |v, s, rng| {
                if primer.transmit(v, s, rng).on_channel1() {
                    LETTER_BEEP
                } else {
                    LETTER_SILENT
                }
            },
        )
    }
}

impl<P: BeepingProtocol> StoneAgeProtocol for BeepingInStoneAge<P> {
    type State = P::State;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn bound(&self) -> usize {
        1
    }

    fn step(
        &self,
        node: NodeId,
        state: &mut Self::State,
        displayed: u8,
        counts: &[usize],
        rng: &mut dyn RngCore,
    ) -> u8 {
        let sent =
            if displayed == LETTER_BEEP { BeepSignal::channel1() } else { BeepSignal::silent() };
        let heard = if counts[LETTER_BEEP as usize] >= 1 {
            BeepSignal::channel1()
        } else {
            BeepSignal::silent()
        };
        self.inner.receive(node, state, sent, heard, rng);
        if self.inner.transmit(node, state, rng).on_channel1() {
            LETTER_BEEP
        } else {
            LETTER_SILENT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, random};
    use mis::runner::{initial_levels, RunConfig};
    use mis::{Algorithm1, LmaxPolicy};
    use rand::Rng;

    /// A native Stone Age protocol: 3-bounded counting of "red" neighbors.
    struct CountReds;
    impl StoneAgeProtocol for CountReds {
        type State = usize; // running total of bounded red counts
        fn alphabet_size(&self) -> usize {
            2
        }
        fn bound(&self) -> usize {
            3
        }
        fn step(
            &self,
            _node: NodeId,
            state: &mut usize,
            displayed: u8,
            counts: &[usize],
            _rng: &mut dyn RngCore,
        ) -> u8 {
            *state += counts[1];
            displayed // keep displaying the same letter
        }
    }

    #[test]
    fn bounded_counting_clamps_at_b() {
        // Star: the hub sees 6 red leaves but can only count to 3.
        let g = classic::star(7);
        let letters = vec![0, 1, 1, 1, 1, 1, 1];
        let mut sim = StoneAgeSimulator::new(&g, CountReds, vec![0; 7], letters, 1);
        sim.step();
        assert_eq!(sim.states()[0], 3, "hub count must clamp at b = 3");
        // A leaf sees the silent hub: count 0.
        assert_eq!(sim.states()[1], 0);
    }

    #[test]
    fn letters_update_synchronously() {
        /// Alternator: flips its displayed letter each round.
        struct Flip;
        impl StoneAgeProtocol for Flip {
            type State = ();
            fn alphabet_size(&self) -> usize {
                2
            }
            fn bound(&self) -> usize {
                1
            }
            fn step(
                &self,
                _: NodeId,
                _: &mut (),
                displayed: u8,
                _: &[usize],
                _: &mut dyn RngCore,
            ) -> u8 {
                1 - displayed
            }
        }
        let g = classic::path(2);
        let mut sim = StoneAgeSimulator::new(&g, Flip, vec![(), ()], vec![0, 1], 0);
        sim.step();
        assert_eq!(sim.displayed(), &[1, 0]);
        sim.step();
        assert_eq!(sim.displayed(), &[0, 1]);
    }

    #[test]
    fn run_until_semantics() {
        struct Inc;
        impl StoneAgeProtocol for Inc {
            type State = u32;
            fn alphabet_size(&self) -> usize {
                1
            }
            fn bound(&self) -> usize {
                1
            }
            fn step(&self, _: NodeId, s: &mut u32, d: u8, _: &[usize], _: &mut dyn RngCore) -> u8 {
                *s += 1;
                d
            }
        }
        let g = classic::path(3);
        let mut sim = StoneAgeSimulator::new(&g, Inc, vec![0; 3], vec![0; 3], 0);
        assert_eq!(sim.run_until(100, |s| s.iter().all(|&x| x >= 5)), Some(5));
        assert_eq!(sim.run_until(3, |s| s.iter().all(|&x| x >= 100)), None);
    }

    /// The headline cross-validation: Algorithm 1 executed on the Stone Age
    /// substrate (via the embedding) is bit-identical to the native beeping
    /// execution — levels match round for round.
    #[test]
    fn beeping_embedding_is_bit_identical() {
        let g = random::gnp(60, 0.1, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let seed = 11;
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);

        // Native beeping execution.
        let mut native = beeping::Simulator::new(&g, algo.clone(), init.clone(), seed);

        // Stone Age execution of the same protocol.
        let embedded = BeepingInStoneAge::new(algo.clone());
        let mut stone = embedded.into_simulator(&g, init, seed);

        for round in 1..=300u64 {
            native.step();
            stone.step();
            assert_eq!(native.states(), stone.states(), "divergence at round {round}");
        }
    }

    #[test]
    fn embedding_stabilizes_to_valid_mis() {
        let g = random::gnp(80, 0.08, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = RunConfig::new(2);
        let init = initial_levels(&algo, &config);
        let embedded = BeepingInStoneAge::new(algo.clone());
        let mut stone = embedded.into_simulator(&g, init, 2);
        let lmax = algo.policy().lmax_values().to_vec();
        let done =
            stone.run_until(1_000_000, |levels| mis::observer::is_stabilized(&g, &lmax, levels));
        assert!(done.is_some());
        let mis_set = algo.mis_members(&g, stone.states());
        assert!(graphs::mis::is_maximal_independent_set(&g, &mis_set));
    }

    #[test]
    #[should_panic(expected = "only one-channel")]
    fn two_channel_protocols_rejected() {
        let g = classic::path(2);
        let algo2 = mis::Algorithm2::new(&g, LmaxPolicy::fixed(2, 5));
        let _ = BeepingInStoneAge::new(algo2);
    }

    #[test]
    fn random_transitions_use_node_streams() {
        struct Coin;
        impl StoneAgeProtocol for Coin {
            type State = u32;
            fn alphabet_size(&self) -> usize {
                2
            }
            fn bound(&self) -> usize {
                1
            }
            fn step(
                &self,
                _: NodeId,
                s: &mut u32,
                _: u8,
                _: &[usize],
                rng: &mut dyn RngCore,
            ) -> u8 {
                let bit = rng.gen_range(0..2u8);
                *s = s.wrapping_mul(31).wrapping_add(bit as u32);
                bit
            }
        }
        let g = classic::cycle(8);
        let run = |seed| {
            let mut sim = StoneAgeSimulator::new(&g, Coin, vec![0; 8], vec![0; 8], seed);
            for _ in 0..50 {
                sim.step();
            }
            sim.states().to_vec()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }
}
