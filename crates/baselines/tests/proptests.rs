//! Property-based tests across the baseline algorithms.

use baselines::stone_age::BeepingInStoneAge;
use baselines::{luby_mis, AfekStyleMis, JsxMis, TwoStateMis};
use graphs::{Graph, GraphBuilder};
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// JSX from its clean start always terminates with a valid MIS.
    #[test]
    fn jsx_clean_valid(g in arb_graph(), seed in 0u64..200) {
        let (mis, _) = JsxMis::new().run_clean(&g, seed, 5_000_000).expect("terminates");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
    }

    /// The Afek-style epoch algorithm always terminates with a valid MIS.
    #[test]
    fn afek_valid(g in arb_graph(), seed in 0u64..200) {
        let algo = AfekStyleMis::new(g.len().max(2));
        let (mis, _) = algo.run(&g, seed, 10_000_000).expect("terminates");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
    }

    /// Luby always terminates with a valid MIS.
    #[test]
    fn luby_valid(g in arb_graph(), seed in 0u64..200) {
        let (mis, iters) = luby_mis(&g, seed, 1_000_000).expect("terminates");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
        // O(log n) w.h.p.; at n ≤ 24 anything beyond 200 iterations would
        // be absurd.
        prop_assert!(iters <= 200);
    }

    /// The constant-state protocol stabilizes to a valid MIS from random
    /// states on these small graphs.
    #[test]
    fn two_state_valid(g in arb_graph(), seed in 0u64..100) {
        let algo = TwoStateMis::new();
        let (mis, _) = algo.run_random_init(&g, seed, 10_000_000).expect("stabilizes");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
    }

    /// The Stone Age embedding is bit-identical to the native beeping
    /// simulator on arbitrary graphs, seeds and initial levels.
    #[test]
    fn stone_age_embedding_equivalence(g in arb_graph(), seed in 0u64..200) {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);
        let mut native = beeping::Simulator::new(&g, algo.clone(), init.clone(), seed);
        let mut stone = BeepingInStoneAge::new(algo.clone()).into_simulator(&g, init, seed);
        for round in 1..=120u64 {
            native.step();
            stone.step();
            prop_assert_eq!(native.states(), stone.states(), "round {}", round);
        }
    }

    /// All five distributed algorithms agree with greedy on *size bounds*:
    /// every MIS size lies in [n/(Δ+1), n].
    #[test]
    fn mis_sizes_within_theoretical_bounds(g in arb_graph(), seed in 0u64..50) {
        let n = g.len();
        let delta = g.max_degree();
        let lower = n.div_ceil(delta + 1);
        let check = |mis: &[bool], name: &str| {
            let size = graphs::mis::size(mis);
            prop_assert!(size >= lower, "{name}: size {size} below n/(Δ+1) = {lower}");
            prop_assert!(size <= n);
            Ok(())
        };
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        check(&mis::runner::run(&g, &algo, RunConfig::new(seed)).unwrap().mis, "alg1")?;
        check(&JsxMis::new().run_clean(&g, seed, 5_000_000).unwrap().0, "jsx")?;
        check(&luby_mis(&g, seed, 1_000_000).unwrap().0, "luby")?;
        check(&graphs::mis::greedy_mis(&g), "greedy")?;
    }
}
