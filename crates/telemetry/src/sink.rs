//! Pluggable event sinks: JSONL and CSV exporters plus an in-memory sink
//! for tests.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::event::{Event, RoundEvent};
use crate::json::event_to_json;

/// A destination for telemetry events.
///
/// Sinks receive every event in emission order; [`Sink::flush`] is called by
/// [`crate::Telemetry::finish`] and on drop of the owning telemetry handle's
/// last clone is *not* guaranteed — emitters should call `finish`.
pub trait Sink {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Forces buffered output to its destination.
    fn flush(&mut self) {}
}

/// Writes one JSON object per line (the `--telemetry <path>` format of the
/// experiments CLI).
pub struct JsonlSink<W: Write> {
    out: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a buffered JSONL sink on it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // Telemetry is observational: a full disk must not abort a run.
        let _ = writeln!(self.out, "{}", event_to_json(event));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Writes [`Event::Round`] events as CSV rows (lifecycle events and markers
/// are skipped; level histograms are variable-width and omitted).
pub struct CsvSink<W: Write> {
    out: W,
    wrote_header: bool,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) `path` and returns a buffered CSV sink on it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<CsvSink<BufWriter<File>>> {
        Ok(CsvSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> CsvSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> CsvSink<W> {
        CsvSink { out, wrote_header: false }
    }

    fn write_row(&mut self, r: &RoundEvent) -> io::Result<()> {
        if !self.wrote_header {
            writeln!(
                self.out,
                "round,beeps_c1,beeps_c2,hearers_c1,hearers_c2,lone_c1,lone_c2,active,n,in_mis,stable,stable_fraction"
            )?;
            self.wrote_header = true;
        }
        let opt = |v: Option<u64>| v.map_or(String::new(), |v| v.to_string());
        writeln!(
            self.out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            r.round,
            r.beeps_channel1,
            r.beeps_channel2,
            r.hearers_channel1,
            r.hearers_channel2,
            r.lone_beepers,
            r.lone_beepers_channel2,
            r.active,
            r.n,
            opt(r.in_mis),
            opt(r.stable),
            r.stable_fraction().map_or(String::new(), |f| format!("{f}")),
        )
    }
}

impl<W: Write> Sink for CsvSink<W> {
    fn record(&mut self, event: &Event) {
        if let Event::Round(r) = event {
            let _ = self.write_row(r);
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Retains every event in memory; the paired [`MemoryHandle`] reads them
/// back after the run. For tests and in-process consumers.
pub struct MemorySink {
    events: Rc<RefCell<Vec<Event>>>,
}

impl MemorySink {
    /// Returns a sink and the handle observing everything it records.
    pub fn new() -> (MemorySink, MemoryHandle) {
        let events = Rc::new(RefCell::new(Vec::new()));
        (MemorySink { events: Rc::clone(&events) }, MemoryHandle { events })
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// Read side of a [`MemorySink`].
#[derive(Clone)]
pub struct MemoryHandle {
    events: Rc<RefCell<Vec<Event>>>,
}

impl MemoryHandle {
    /// Snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Just the [`Event::Round`] payloads, in order.
    pub fn rounds(&self) -> Vec<RoundEvent> {
        self.events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                Event::Round(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Marker, MarkerKind};
    use crate::json::parse_jsonl;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart { label: "t".into(), n: 4, seed: 1 },
            Event::Round(RoundEvent {
                round: 1,
                beeps_channel1: 2,
                active: 4,
                n: 4,
                ..RoundEvent::default()
            }),
            Event::Marker(Marker {
                round: 1,
                kind: MarkerKind::Fault,
                detail: "corrupt".into(),
                magnitude: 2,
            }),
            Event::RunEnd { rounds: 1, stabilized: false, stabilization_round: None },
        ]
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            for e in sample_events() {
                sink.record(&e);
            }
            sink.flush();
        }
        let text = String::from_utf8(buf).unwrap();
        let docs = parse_jsonl(&text).unwrap();
        assert_eq!(docs.len(), 4);
        assert_eq!(docs[0].get("type").unwrap().as_str(), Some("run_start"));
        assert_eq!(docs[1].get("beeps_c1").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn csv_sink_writes_header_and_round_rows_only() {
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            for e in sample_events() {
                sink.record(&e);
            }
            sink.flush();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "header + one round row: {text}");
        assert!(lines[0].starts_with("round,beeps_c1"));
        assert!(lines[1].starts_with("1,2,0,"));
    }

    #[test]
    fn memory_sink_retains_everything() {
        let (mut sink, handle) = MemorySink::new();
        assert!(handle.is_empty());
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(handle.len(), 4);
        assert_eq!(handle.rounds().len(), 1);
        assert_eq!(handle.events()[3], sample_events()[3]);
    }
}
