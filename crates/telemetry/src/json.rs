//! Hand-rolled JSON for the JSONL sink and its round-trip tests.
//!
//! The workspace deliberately carries no serialization dependency (the
//! locked dependency set is `rand`/`rand_pcg`/`proptest`/`criterion`), so
//! this module provides the two halves the telemetry subsystem needs: a
//! writer from [`Event`] to one-line JSON objects, and a small
//! recursive-descent parser producing a generic [`Value`] tree for tests
//! and downstream tooling that want to read a stream back.

use crate::event::{Event, Marker, RoundEvent};
use crate::metrics::MetricsSnapshot;

/// Escapes `s` as the body of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Bare integers are valid JSON numbers, but keep a decimal point so
        // readers that distinguish int/float lex gauges consistently.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    if let Some(v) = v {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
}

/// Serializes one event as a single-line JSON object (no trailing newline).
///
/// Every object carries a `"type"` discriminant:
/// `run_start | round | marker | run_end | metrics`.
pub fn event_to_json(event: &Event) -> String {
    match event {
        Event::RunStart { label, n, seed } => {
            format!(
                "{{\"type\":\"run_start\",\"label\":\"{}\",\"n\":{n},\"seed\":{seed}}}",
                escape(label)
            )
        }
        Event::Round(r) => round_to_json(r),
        Event::Marker(m) => marker_to_json(m),
        Event::RunEnd { rounds, stabilized, stabilization_round } => {
            let mut out =
                format!("{{\"type\":\"run_end\",\"rounds\":{rounds},\"stabilized\":{stabilized}");
            push_opt_u64(&mut out, "stabilization_round", *stabilization_round);
            out.push('}');
            out
        }
        Event::Metrics(m) => metrics_to_json(m),
    }
}

fn round_to_json(r: &RoundEvent) -> String {
    let mut out = format!(
        "{{\"type\":\"round\",\"round\":{},\"beeps_c1\":{},\"beeps_c2\":{},\"hearers_c1\":{},\"hearers_c2\":{},\"lone_c1\":{},\"lone_c2\":{},\"active\":{},\"n\":{}",
        r.round,
        r.beeps_channel1,
        r.beeps_channel2,
        r.hearers_channel1,
        r.hearers_channel2,
        r.lone_beepers,
        r.lone_beepers_channel2,
        r.active,
        r.n,
    );
    push_opt_u64(&mut out, "in_mis", r.in_mis);
    push_opt_u64(&mut out, "stable", r.stable);
    if let Some(f) = r.stable_fraction() {
        out.push_str(&format!(",\"stable_fraction\":{}", fmt_f64(f)));
    }
    if let Some(levels) = &r.levels {
        out.push_str(",\"levels\":[");
        for (i, (level, count)) in levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{level},{count}]"));
        }
        out.push(']');
    }
    out.push('}');
    out
}

fn marker_to_json(m: &Marker) -> String {
    format!(
        "{{\"type\":\"marker\",\"round\":{},\"kind\":\"{}\",\"detail\":\"{}\",\"magnitude\":{}}}",
        m.round,
        m.kind.name(),
        escape(&m.detail),
        m.magnitude,
    )
}

fn metrics_to_json(m: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"type\":\"metrics\",\"counters\":{");
    for (i, (k, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", escape(k)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in m.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), fmt_f64(*v)));
    }
    out.push_str("},\"timers_ns\":{");
    for (i, (k, t)) in m.timers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"total_ns\":{}}}",
            escape(k),
            t.count,
            t.total_ns
        ));
    }
    out.push_str("}}");
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (counters up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, when whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, when whole and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(x) if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) => Some(*x as i64),
            _ => None,
        }
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number '{text}'"))
    }
}

/// Parses one JSONL stream: one JSON object per non-empty line.
pub fn parse_jsonl(input: &str) -> Result<Vec<Value>, String> {
    input
        .lines()
        .filter(|line| !line.trim().is_empty())
        .enumerate()
        .map(|(i, line)| parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MarkerKind;

    #[test]
    fn escapes_and_parses_strings() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = format!("\"{}\"", escape(s));
        assert_eq!(parse(&json).unwrap(), Value::Str(s.to_owned()));
    }

    #[test]
    fn round_event_round_trips_through_json() {
        let r = RoundEvent {
            round: 7,
            beeps_channel1: 3,
            beeps_channel2: 1,
            hearers_channel1: 9,
            hearers_channel2: 2,
            lone_beepers: 1,
            lone_beepers_channel2: 0,
            active: 20,
            n: 24,
            in_mis: Some(4),
            stable: Some(12),
            levels: Some(vec![(-3, 2), (0, 5), (4, 13)]),
        };
        let v = parse(&event_to_json(&Event::Round(r.clone()))).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("round"));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("beeps_c1").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("stable").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("stable_fraction").unwrap().as_f64(), Some(0.5));
        let levels = v.get("levels").unwrap().as_array().unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].as_array().unwrap()[0].as_i64(), Some(-3));
        assert_eq!(levels[2].as_array().unwrap()[1].as_u64(), Some(13));
    }

    #[test]
    fn optional_fields_are_omitted() {
        let v = parse(&event_to_json(&Event::Round(RoundEvent::default()))).unwrap();
        assert_eq!(v.get("in_mis"), None);
        assert_eq!(v.get("stable"), None);
        assert_eq!(v.get("stable_fraction"), None);
        assert_eq!(v.get("levels"), None);
    }

    #[test]
    fn marker_and_lifecycle_events_serialize() {
        let m = Event::Marker(Marker {
            round: 40,
            kind: MarkerKind::Churn,
            detail: "node_leave".into(),
            magnitude: 1,
        });
        let v = parse(&event_to_json(&m)).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("churn"));
        assert_eq!(v.get("magnitude").unwrap().as_u64(), Some(1));

        let start = Event::RunStart { label: "NOISE".into(), n: 64, seed: 9 };
        let v = parse(&event_to_json(&start)).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("NOISE"));

        let end = Event::RunEnd { rounds: 100, stabilized: true, stabilization_round: Some(88) };
        let v = parse(&event_to_json(&end)).unwrap();
        assert_eq!(v.get("stabilized").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("stabilization_round").unwrap().as_u64(), Some(88));

        let open = Event::RunEnd { rounds: 5, stabilized: false, stabilization_round: None };
        let v = parse(&event_to_json(&open)).unwrap();
        assert_eq!(v.get("stabilization_round"), None);
    }

    #[test]
    fn metrics_event_serializes_maps() {
        let snapshot = MetricsSnapshot {
            counters: vec![("rounds".into(), 12)],
            gauges: vec![("speedup".into(), 2.5)],
            timers: vec![("sim.deliver".into(), crate::TimerStat { count: 3, total_ns: 900 })],
        };
        let v = parse(&event_to_json(&Event::Metrics(snapshot))).unwrap();
        assert_eq!(v.get("counters").unwrap().get("rounds").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("gauges").unwrap().get("speedup").unwrap().as_f64(), Some(2.5));
        let t = v.get("timers_ns").unwrap().get("sim.deliver").unwrap();
        assert_eq!(t.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(t.get("total_ns").unwrap().as_u64(), Some(900));
    }

    #[test]
    fn parser_handles_whitespace_nesting_and_errors() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 , null , { } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2], Value::Null);
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn jsonl_parses_per_line() {
        let text = "{\"a\":1}\n\n{\"b\":2}\n";
        let docs = parse_jsonl(text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1].get("b").unwrap().as_u64(), Some(2));
        assert!(parse_jsonl("{\"a\":1}\nnope").is_err());
    }
}
