//! Run telemetry: a typed round-event stream, counters/gauges/timers, and
//! pluggable sinks — zero-cost when disabled.
//!
//! The simulation stack (`beeping`, `mis`, `experiments`) threads a
//! [`Telemetry`] handle through its run configurations. A disabled handle
//! (the default) is a `None` — every record call is a branch on a tag and
//! nothing else: no clock reads, no allocation, no formatting. An enabled
//! handle shares one interior-mutable core between all its clones, fanning
//! events out to its [`Sink`]s and accumulating [`MetricsSnapshot`] data.
//!
//! # Determinism contract
//!
//! Telemetry is strictly observational. It must never
//!
//! - draw from or reseed any simulation RNG stream,
//! - influence control flow of the simulation (beyond the cost of reading
//!   already-computed observables), or
//! - feed wall-clock values back into simulation state.
//!
//! The `engine_differential` proptest harness enforces the contract by
//! bit-comparing telemetry-on and telemetry-off runs; the `crates/lint`
//! determinism pass keeps `Instant`/`SystemTime` out of every other crate
//! so clock reads can only happen behind this crate's API.

#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
mod sink;

pub use event::{Event, Marker, MarkerKind, RoundEvent};
pub use metrics::{MetricsSnapshot, TimerStat};
pub use sink::{CsvSink, JsonlSink, MemoryHandle, MemorySink, Sink};

pub mod jsonl {
    //! Re-exports of the JSON reader/writer for stream consumers.
    pub use crate::json::{escape, event_to_json, parse, parse_jsonl, Value};
}

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

use metrics::Metrics;

/// Configuration of an enabled [`Telemetry`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Config {
    /// Emit a level histogram on rounds divisible by this stride
    /// (`0` = never). Stride 1 records every round; experiments default to
    /// a coarser stride because histograms dominate stream size.
    pub level_stride: u64,
}

struct Inner {
    config: Config,
    sinks: Vec<Box<dyn Sink>>,
    metrics: Metrics,
}

/// A cheaply clonable telemetry handle; all clones share one core.
///
/// `PartialEq` compares identity (same shared core, or both disabled), so
/// run configurations that derive `PartialEq` can carry a handle.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Rc<RefCell<Inner>>>);

impl Telemetry {
    /// The inert handle: every record call returns immediately.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// An enabled handle with no sinks yet (metrics still accumulate).
    pub fn enabled(config: Config) -> Telemetry {
        Telemetry(Some(Rc::new(RefCell::new(Inner {
            config,
            sinks: Vec::new(),
            metrics: Metrics::default(),
        }))))
    }

    /// Builder form of [`Telemetry::add_sink`].
    pub fn with_sink(self, sink: Box<dyn Sink>) -> Telemetry {
        self.add_sink(sink);
        self
    }

    /// Attaches a sink. No-op on a disabled handle.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().sinks.push(sink);
        }
    }

    /// `true` when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// `true` when a level histogram should be sampled for `round`.
    pub fn sample_levels(&self, round: u64) -> bool {
        match &self.0 {
            Some(inner) => {
                let stride = inner.borrow().config.level_stride;
                stride > 0 && round.is_multiple_of(stride)
            }
            None => false,
        }
    }

    /// Emits one event to every sink. No-op on a disabled handle.
    pub fn record(&self, event: Event) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            for sink in &mut inner.sinks {
                sink.record(&event);
            }
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.counter_add(name, delta);
        }
    }

    /// Sets a named gauge (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.gauge_set(name, value);
        }
    }

    /// Starts timing a named phase; the span ends (and is recorded) when
    /// the returned guard drops. Inert — no clock read — when disabled.
    pub fn time(&self, name: &'static str) -> PhaseTimer {
        PhaseTimer(self.0.as_ref().map(|inner| (Rc::clone(inner), name, Instant::now())))
    }

    /// Snapshot of all metrics (empty when disabled).
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(inner) => inner.borrow().metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Emits the final [`Event::Metrics`] snapshot and flushes every sink.
    ///
    /// Call once at the end of a run; buffered file sinks lose tail data
    /// otherwise.
    pub fn finish(&self) {
        if let Some(inner) = &self.0 {
            let snapshot = inner.borrow().metrics.snapshot();
            let mut inner = inner.borrow_mut();
            let event = Event::Metrics(snapshot);
            for sink in &mut inner.sinks {
                sink.record(&event);
                sink.flush();
            }
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("config", &inner.borrow().config)
                .field("sinks", &inner.borrow().sinks.len())
                .finish(),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Telemetry) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Guard returned by [`Telemetry::time`]; records the elapsed span into the
/// owning handle's timer metrics on drop.
pub struct PhaseTimer(Option<(Rc<RefCell<Inner>>, &'static str, Instant)>);

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.0.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.borrow_mut().metrics.timer_add(name, nanos);
        }
    }
}

/// A plain wall-clock stopwatch for code *outside* the simulation (CLI
/// drivers, throughput benchmarks). This is the sanctioned clock: the
/// workspace lint bans direct `Instant`/`SystemTime` use everywhere but
/// this crate, so elapsed-time reporting routes through here.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the stopwatch.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_nanos(&self) -> u128 {
        self.0.elapsed().as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sample_levels(0));
        t.record(Event::RunEnd { rounds: 0, stabilized: false, stabilization_round: None });
        t.counter_add("c", 1);
        t.gauge_set("g", 1.0);
        drop(t.time("p"));
        t.finish();
        assert_eq!(t.metrics(), MetricsSnapshot::default());
        assert_eq!(format!("{t:?}"), "Telemetry(disabled)");
    }

    #[test]
    fn clones_share_one_core() {
        let t = Telemetry::enabled(Config::default());
        let (sink, handle) = MemorySink::new();
        t.add_sink(Box::new(sink));
        let clone = t.clone();
        clone.record(Event::RunStart { label: "x".into(), n: 1, seed: 0 });
        clone.counter_add("c", 2);
        t.counter_add("c", 3);
        assert_eq!(handle.len(), 1);
        assert_eq!(t.metrics().counter("c"), 5);
        assert_eq!(t, clone);
        assert_ne!(t, Telemetry::enabled(Config::default()));
        assert_eq!(Telemetry::disabled(), Telemetry::disabled());
        assert_ne!(t, Telemetry::disabled());
    }

    #[test]
    fn level_stride_gates_sampling() {
        let t = Telemetry::enabled(Config { level_stride: 4 });
        assert!(t.sample_levels(0));
        assert!(!t.sample_levels(3));
        assert!(t.sample_levels(8));
        let never = Telemetry::enabled(Config::default());
        assert!(!never.sample_levels(0));
        assert!(!never.sample_levels(4));
    }

    #[test]
    fn phase_timer_records_on_drop() {
        let t = Telemetry::enabled(Config::default());
        {
            let _guard = t.time("phase");
        }
        {
            let _guard = t.time("phase");
        }
        let stat = t.metrics().timer("phase").expect("recorded");
        assert_eq!(stat.count, 2);
    }

    #[test]
    fn finish_emits_metrics_snapshot() {
        let t = Telemetry::enabled(Config::default());
        let (sink, handle) = MemorySink::new();
        t.add_sink(Box::new(sink));
        t.counter_add("rounds", 9);
        t.finish();
        let events = handle.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Metrics(m) => assert_eq!(m.counter("rounds"), 9),
            other => panic!("expected metrics event, got {other:?}"),
        }
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_nanos() < u128::MAX);
    }
}
