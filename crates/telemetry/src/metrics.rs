//! Counters, gauges, and wall-clock phase timers.
//!
//! These are the only place in the workspace where wall-clock time is read:
//! simulation logic is deterministic and counts time in rounds, so the
//! `crates/lint` determinism pass bans `Instant`/`SystemTime` everywhere
//! outside this crate. Engine code acquires a [`crate::PhaseTimer`] through
//! its [`crate::Telemetry`] handle instead; when telemetry is disabled the
//! timer is inert and no clock is read at all.

use std::collections::BTreeMap;

/// Aggregate of one named timer: number of timed spans and their total
/// duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Spans recorded.
    pub count: u64,
    /// Total duration across spans, in nanoseconds.
    pub total_ns: u64,
}

impl TimerStat {
    /// Mean span duration in nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The mutable metric store behind an enabled [`crate::Telemetry`].
///
/// `BTreeMap` keeps snapshot ordering deterministic (the simulation crates
/// ban `HashMap` iteration order from observable output).
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, TimerStat>,
}

impl Metrics {
    pub(crate) fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    pub(crate) fn timer_add(&mut self, name: &str, nanos: u64) {
        let stat = self.timers.entry(name.to_owned()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(nanos);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            timers: self.timers.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }
}

/// An immutable, name-sorted snapshot of all metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone event counts, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins measurements, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Wall-clock phase timers, sorted by name.
    pub timers: Vec<(String, TimerStat)>,
}

impl MetricsSnapshot {
    /// Value of the named counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Value of the named gauge, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Aggregate of the named timer, when any span was recorded.
    pub fn timer(&self, name: &str) -> Option<TimerStat> {
        self.timers.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorts() {
        let mut m = Metrics::default();
        m.counter_add("z", 2);
        m.counter_add("a", 1);
        m.counter_add("z", 3);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        m.timer_add("t", 10);
        m.timer_add("t", 30);
        let s = m.snapshot();
        assert_eq!(s.counters, vec![("a".into(), 1), ("z".into(), 5)]);
        assert_eq!(s.gauge("g"), Some(2.5));
        let t = s.timer("t").unwrap();
        assert_eq!((t.count, t.total_ns, t.mean_ns()), (2, 40, 20));
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.timer("missing"), None);
    }
}
