//! The typed event stream of a run.
//!
//! A run emits a [`Event::RunStart`], then one [`Event::Round`] per executed
//! round interleaved with [`Event::Marker`]s at fault/churn/Byzantine
//! injections, then a [`Event::RunEnd`] and (optionally) a final
//! [`Event::Metrics`] snapshot. Events carry plain integers and strings only
//! — no graph or protocol types — so the crate stays a leaf dependency that
//! every layer of the workspace can emit into.

use crate::metrics::MetricsSnapshot;

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run began.
    RunStart {
        /// Human-readable run label (e.g. the experiment id or `"runner"`).
        label: String,
        /// Number of vertices in the graph.
        n: u64,
        /// Master seed of the run.
        seed: u64,
    },
    /// One executed simulation round.
    Round(RoundEvent),
    /// A discrete injected disturbance (fault burst, churn edit,
    /// Byzantine behavior installation).
    Marker(Marker),
    /// The run finished (stabilized, contained, or budget exhausted).
    RunEnd {
        /// Rounds executed.
        rounds: u64,
        /// Whether the run reached its goal predicate.
        stabilized: bool,
        /// Round at which the goal predicate first held, when it did.
        stabilization_round: Option<u64>,
    },
    /// Final counters/gauges/timers snapshot, emitted by
    /// [`crate::Telemetry::finish`].
    Metrics(MetricsSnapshot),
}

/// Per-round observables: the `beeping` crate's `RoundReport` counters plus
/// the MIS-level observables (stable-set size, claimed-MIS size, level
/// histogram) that the paper's proof machinery reasons about.
///
/// The optional fields are populated by layers that can compute them: the
/// raw simulator knows only the channel counters; the `mis` runner adds
/// stability and histogram data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundEvent {
    /// Round index (1-based: the value of `Simulator::round()` *after* the
    /// step).
    pub round: u64,
    /// Nodes that beeped on channel 1.
    pub beeps_channel1: u64,
    /// Nodes that beeped on channel 2.
    pub beeps_channel2: u64,
    /// Nodes that heard a beep on channel 1.
    pub hearers_channel1: u64,
    /// Nodes that heard a beep on channel 2.
    pub hearers_channel2: u64,
    /// Nodes that beeped on channel 1 and heard no other channel-1 beep.
    pub lone_beepers: u64,
    /// Nodes that beeped on channel 2 and heard no other channel-2 beep.
    pub lone_beepers_channel2: u64,
    /// Active (non-crashed, non-departed) nodes this round.
    pub active: u64,
    /// Vertices in the graph (denominator of [`RoundEvent::stable_fraction`]).
    pub n: u64,
    /// Nodes whose level currently claims MIS membership, when known.
    pub in_mis: Option<u64>,
    /// Size of the stable set `S_t = I_t ∪ N(I_t)`, when known.
    pub stable: Option<u64>,
    /// Level histogram `(level, count)` sorted by level, sampled every
    /// [`crate::Config::level_stride`] rounds.
    pub levels: Option<Vec<(i64, u64)>>,
}

impl RoundEvent {
    /// Fraction of the graph inside the stable set, when `stable` is known
    /// and the graph is non-empty.
    pub fn stable_fraction(&self) -> Option<f64> {
        match (self.stable, self.n) {
            (Some(s), n) if n > 0 => Some(s as f64 / n as f64),
            _ => None,
        }
    }
}

/// A discrete injected disturbance.
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// Round count at injection time (disturbances apply between rounds).
    pub round: u64,
    /// Disturbance family.
    pub kind: MarkerKind,
    /// Free-form description (e.g. `"corrupt"`, `"node_leave"`,
    /// `"babbler"`).
    pub detail: String,
    /// Size of the disturbance (nodes corrupted, edges removed, ...).
    pub magnitude: u64,
}

/// Families of injected disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// Transient state corruption or crash-restart.
    Fault,
    /// Topology churn (node/edge join or leave).
    Churn,
    /// A permanently deviating (Byzantine) node.
    Byzantine,
    /// Mobility-driven topology change (batched radius-edge diff).
    Motion,
}

impl MarkerKind {
    /// Stable lowercase name used by the serialized formats.
    pub fn name(&self) -> &'static str {
        match self {
            MarkerKind::Fault => "fault",
            MarkerKind::Churn => "churn",
            MarkerKind::Byzantine => "byzantine",
            MarkerKind::Motion => "motion",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_fraction_requires_data() {
        let mut e = RoundEvent { n: 10, ..RoundEvent::default() };
        assert_eq!(e.stable_fraction(), None);
        e.stable = Some(5);
        assert_eq!(e.stable_fraction(), Some(0.5));
        e.n = 0;
        assert_eq!(e.stable_fraction(), None);
    }

    #[test]
    fn marker_kind_names_are_stable() {
        assert_eq!(MarkerKind::Fault.name(), "fault");
        assert_eq!(MarkerKind::Churn.name(), "churn");
        assert_eq!(MarkerKind::Byzantine.name(), "byzantine");
        assert_eq!(MarkerKind::Motion.name(), "motion");
    }
}
