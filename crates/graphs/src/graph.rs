//! Compact undirected graph in CSR form, with event-driven mutation for
//! topology churn.

/// Index of a node in a [`Graph`]; nodes are always `0..n`.
pub type NodeId = usize;

/// Converts a validated node id to its compact `u32` adjacency form.
///
/// Node ids are `< n ≤ u32::MAX` (enforced at construction by
/// [`crate::GraphBuilder::new`]), so the narrowing is lossless; the debug
/// assertion catches misuse with out-of-range ids before the cast could
/// truncate. This is the single sanctioned id-narrowing site (lint L6).
#[inline]
pub(crate) fn node_id32(v: NodeId) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "node id {v} exceeds u32 range");
    v as u32
}

/// A simple, undirected graph stored in compressed sparse row (CSR) form.
///
/// Every node's adjacency list is a sorted slice of a single shared buffer,
/// which keeps round simulation cache-friendly: a beeping round is one linear
/// scan over `neighbors`.
///
/// Construct a `Graph` with [`crate::GraphBuilder`], [`Graph::from_edges`],
/// or one of the [`crate::generators`]. The graph is structurally immutable
/// during simulation except through the explicit churn entry points
/// [`Graph::insert_edge`], [`Graph::remove_edge`] and
/// [`Graph::isolate_node`], which preserve the CSR invariants per event.
///
/// # Example
///
/// ```
/// use graphs::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted adjacency lists (as u32 for compactness).
    neighbors: Vec<u32>,
}

impl Graph {
    /// Creates a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// Edges may appear in any order and in either orientation; duplicates
    /// are merged.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::NodeOutOfRange`] if an endpoint is
    /// `>= n` and [`crate::GraphError::SelfLoop`] for an edge `(v, v)`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, crate::GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut builder = crate::GraphBuilder::new(n);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Creates a graph with `n` nodes and no edges.
    ///
    /// # Example
    ///
    /// ```
    /// let g = graphs::Graph::empty(5);
    /// assert_eq!(g.num_edges(), 0);
    /// assert_eq!(g.max_degree(), 0);
    /// ```
    pub fn empty(n: usize) -> Graph {
        Graph { offsets: vec![0; n + 1], neighbors: Vec::new() }
    }

    /// Builds a graph directly from CSR buffers.
    ///
    /// `offsets` must have one entry per node plus a final total-length
    /// entry; `offsets[v]..offsets[v + 1]` indexes `neighbors` for node
    /// `v`. The adjacency content itself (per-node sorted, deduplicated,
    /// symmetric) is the caller's contract — only the *structural* CSR
    /// shape is validated here, in release builds too, so a malformed
    /// buffer surfaces as a typed error instead of a later out-of-bounds
    /// panic.
    ///
    /// # Errors
    ///
    /// [`CsrError::EmptyOffsets`] if `offsets` has no entries at all,
    /// [`CsrError::NonMonotonicOffsets`] if any offset decreases (or the
    /// first is nonzero), [`CsrError::LengthMismatch`] if the final offset
    /// disagrees with `neighbors.len()`.
    pub fn from_csr(offsets: Vec<usize>, neighbors: Vec<u32>) -> Result<Graph, CsrError> {
        let Some(&last) = offsets.last() else {
            return Err(CsrError::EmptyOffsets);
        };
        if offsets[0] != 0 {
            return Err(CsrError::NonMonotonicOffsets { index: 0 });
        }
        if let Some(index) = (1..offsets.len()).find(|&i| offsets[i] < offsets[i - 1]) {
            return Err(CsrError::NonMonotonicOffsets { index });
        }
        if last != neighbors.len() {
            return Err(CsrError::LengthMismatch { last_offset: last, neighbors: neighbors.len() });
        }
        Ok(Graph { offsets, neighbors })
    }

    /// Builds a graph from CSR buffers whose structural invariants the
    /// caller upholds *by construction* — the crate-internal back door for
    /// [`GraphBuilder::build`](crate::builder::GraphBuilder::build), whose
    /// prefix-sum loop cannot produce an empty or non-monotonic offsets
    /// array. Debug builds still verify the contract; release builds skip
    /// the scan (and the panic path a fallible call would reintroduce on
    /// the hot decode route).
    pub(crate) fn from_csr_trusted(offsets: Vec<usize>, neighbors: Vec<u32>) -> Graph {
        debug_assert!(!offsets.is_empty(), "CSR offsets must have a final total-length entry");
        debug_assert!(
            offsets[0] == 0 && offsets.windows(2).all(|w| w[0] <= w[1]),
            "CSR offsets must be monotonic from 0"
        );
        debug_assert_eq!(
            offsets.last().copied(),
            Some(neighbors.len()),
            "CSR final offset must equal the neighbor buffer length"
        );
        Graph { offsets, neighbors }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `Δ` over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.neighbors.len() as f64 / self.len() as f64
        }
    }

    /// Maximum degree over the closed 1-hop neighborhood of `v`:
    /// `deg₂(v) = max_{u ∈ N(v) ∪ {v}} deg(u)` (notation of the paper, §3).
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    pub fn deg2(&self, v: NodeId) -> usize {
        let mut best = self.degree(v);
        for &u in self.neighbors(v) {
            best = best.max(self.degree(u as usize));
        }
        best
    }

    /// `true` if `u` and `v` are adjacent.
    ///
    /// Uses binary search over the sorted adjacency list of the lower-degree
    /// endpoint, so this is `O(log min(deg u, deg v))`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&node_id32(b)).is_ok()
    }

    /// Iterates over all nodes `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.len()
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    ///
    /// # Example
    ///
    /// ```
    /// let g = graphs::Graph::from_edges(3, [(2, 0), (1, 2)]).unwrap();
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 2), (1, 2)]);
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges { graph: self, node: 0, idx: 0 }
    }

    /// Sum of degrees, i.e. `2m`.
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns the degree histogram: `hist[d]` counts nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// Returns the subgraph induced by `keep`, together with the mapping
    /// from new node ids to original ids.
    ///
    /// Nodes are renumbered in the order they appear in `keep`; duplicate
    /// entries in `keep` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![usize::MAX; self.len()];
        let mut order = Vec::with_capacity(keep.len());
        for &v in keep {
            if new_id[v] == usize::MAX {
                new_id[v] = order.len();
                order.push(v);
            }
        }
        let mut builder = crate::GraphBuilder::new(order.len());
        for (nu, &v) in order.iter().enumerate() {
            for &w in self.neighbors(v) {
                let nw = new_id[w as usize];
                if nw != usize::MAX && nu < nw {
                    builder
                        .add_edge(nu, nw)
                        .expect("induced subgraph edges are in range by construction");
                }
            }
        }
        (builder.build(), order)
    }

    /// Inserts the undirected edge `{u, v}` in place, keeping the CSR
    /// invariants (sorted, deduplicated, symmetric).
    ///
    /// Returns `Ok(true)` if the edge was inserted and `Ok(false)` if it was
    /// already present. This is the topology-churn entry point: an edge
    /// insertion is `O(n + m)` (two sorted-slice insertions plus offset
    /// shifts), intended for *event-driven* mutation, not bulk construction —
    /// use [`crate::GraphBuilder`] for that.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::NodeOutOfRange`] if an endpoint is
    /// `>= self.len()` and [`crate::GraphError::SelfLoop`] for `u == v`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, crate::GraphError> {
        let n = self.len();
        if u >= n {
            return Err(crate::GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(crate::GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(crate::GraphError::SelfLoop(u));
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        self.insert_half_edge(u, node_id32(v));
        self.insert_half_edge(v, node_id32(u));
        Ok(true)
    }

    /// Removes the undirected edge `{u, v}` in place; returns `true` if it
    /// was present. `O(n + m)`, intended for event-driven topology churn.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || !self.has_edge(u, v) {
            return false;
        }
        self.remove_half_edge(u, node_id32(v));
        self.remove_half_edge(v, node_id32(u));
        true
    }

    /// Removes every edge incident to `v` (node departure in a churn
    /// schedule); the node itself remains as an isolated vertex, so node ids
    /// stay stable. Returns the number of edges removed.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn isolate_node(&mut self, v: NodeId) -> usize {
        let incident: Vec<u32> = self.neighbors(v).to_vec();
        for &u in &incident {
            self.remove_half_edge(v, u);
            self.remove_half_edge(u as usize, node_id32(v));
        }
        incident.len()
    }

    /// Inserts `dst` into `src`'s sorted adjacency slice and shifts all
    /// later offsets. The caller guarantees `dst` is absent.
    fn insert_half_edge(&mut self, src: NodeId, dst: u32) {
        let start = self.offsets[src];
        let end = self.offsets[src + 1];
        let pos = start + self.neighbors[start..end].partition_point(|&w| w < dst);
        self.neighbors.insert(pos, dst);
        for o in &mut self.offsets[src + 1..] {
            *o += 1;
        }
    }

    /// Removes `dst` from `src`'s sorted adjacency slice and shifts all
    /// later offsets. The caller guarantees `dst` is present.
    fn remove_half_edge(&mut self, src: NodeId, dst: u32) {
        let start = self.offsets[src];
        let end = self.offsets[src + 1];
        let pos = start
            + self.neighbors[start..end]
                .binary_search(&dst)
                .expect("remove_half_edge requires a present edge");
        self.neighbors.remove(pos);
        for o in &mut self.offsets[src + 1..] {
            *o -= 1;
        }
    }

    /// Applies a batch of edge removals and insertions in one pass, keeping
    /// the CSR invariants (sorted, deduplicated, symmetric). Removals are
    /// applied first, then insertions, so an edge listed in both ends up
    /// present.
    ///
    /// Returns `(inserted, removed)` — the number of edges whose membership
    /// actually changed. Already-present insertions and absent removals are
    /// skipped silently, matching [`Graph::insert_edge`] /
    /// [`Graph::remove_edge`]. Duplicates within a list are collapsed.
    ///
    /// Unlike the per-edge churn entry points, which cost `O(n + m)` *each*
    /// (sorted-slice splice plus a full offset shift), the whole batch is a
    /// single `O(n + m + k log k)` CSR rebuild (`k` = batch size) — the
    /// entry point for motion-driven topology diffs (see [`crate::motion`])
    /// where dozens of edges flip per round.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::NodeOutOfRange`] /
    /// [`crate::GraphError::SelfLoop`] if any pair in either list is
    /// invalid; the graph is unchanged on error.
    pub fn apply_edge_diff(
        &mut self,
        added: &[(NodeId, NodeId)],
        removed: &[(NodeId, NodeId)],
    ) -> Result<(usize, usize), crate::GraphError> {
        let n = self.len();
        for &(u, v) in added.iter().chain(removed) {
            if u >= n {
                return Err(crate::GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(crate::GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(crate::GraphError::SelfLoop(u));
            }
        }
        // Per-source sorted half-edge delta lists.
        let mut add: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rem: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in removed {
            rem[u].push(node_id32(v));
            rem[v].push(node_id32(u));
        }
        for &(u, v) in added {
            add[u].push(node_id32(v));
            add[v].push(node_id32(u));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.neighbors.len() + 2 * added.len());
        let mut inserted_half = 0usize;
        let mut removed_half = 0usize;
        offsets.push(0usize);
        for v in 0..n {
            add[v].sort_unstable();
            add[v].dedup();
            rem[v].sort_unstable();
            rem[v].dedup();
            // Merge the old sorted adjacency (minus removals) with the
            // sorted insertion list.
            let old = &self.neighbors[self.offsets[v]..self.offsets[v + 1]];
            let (adds, rems) = (&add[v], &rem[v]);
            let (mut oi, mut ai) = (0usize, 0usize);
            while oi < old.len() || ai < adds.len() {
                let take_add = match (old.get(oi), adds.get(ai)) {
                    (Some(&o), Some(&a)) => a <= o,
                    (None, Some(_)) => true,
                    _ => false,
                };
                if take_add {
                    let a = adds[ai];
                    ai += 1;
                    if old.get(oi) == Some(&a) {
                        // Already present: re-insertion is a no-op, and it
                        // shadows a same-edge removal (removals first).
                        oi += 1;
                        neighbors.push(a);
                    } else {
                        neighbors.push(a);
                        inserted_half += 1;
                    }
                } else {
                    let o = old[oi];
                    oi += 1;
                    if rems.binary_search(&o).is_ok() {
                        removed_half += 1;
                    } else {
                        neighbors.push(o);
                    }
                }
            }
            offsets.push(neighbors.len());
        }
        self.offsets = offsets;
        self.neighbors = neighbors;
        Ok((inserted_half / 2, removed_half / 2))
    }

    /// Disjoint union of two graphs: nodes of `other` are shifted by
    /// `self.len()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.len();
        let mut builder = crate::GraphBuilder::new(shift + other.len());
        for (u, v) in self.edges() {
            builder.add_edge(u, v).expect("existing edges are valid");
        }
        for (u, v) in other.edges() {
            builder.add_edge(u + shift, v + shift).expect("shifted edges are valid");
        }
        builder.build()
    }
}

/// Why a pair of CSR buffers does not describe a graph (see
/// [`Graph::from_csr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrError {
    /// `offsets` was empty — a CSR always has at least the final
    /// total-length entry (an empty graph is `offsets == [0]`).
    EmptyOffsets,
    /// An offset decreased relative to its predecessor (or the first offset
    /// was nonzero), so some node's adjacency range is ill-formed.
    NonMonotonicOffsets {
        /// Index of the first offending entry in `offsets`.
        index: usize,
    },
    /// The final offset does not equal the neighbor buffer's length, so the
    /// buffers disagree about how many adjacency entries exist.
    LengthMismatch {
        /// The final entry of `offsets`.
        last_offset: usize,
        /// `neighbors.len()`.
        neighbors: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::EmptyOffsets => write!(f, "CSR offsets buffer is empty"),
            CsrError::NonMonotonicOffsets { index } => {
                write!(f, "CSR offsets are not monotonically non-decreasing at index {index}")
            }
            CsrError::LengthMismatch { last_offset, neighbors } => write!(
                f,
                "CSR final offset {last_offset} disagrees with neighbor buffer length {neighbors}"
            ),
        }
    }
}

impl std::error::Error for CsrError {}

/// Iterator over undirected edges of a [`Graph`], produced by
/// [`Graph::edges`]. Yields each edge once as `(u, v)` with `u < v`.
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    node: NodeId,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let g = self.graph;
        while self.node < g.len() {
            let adj = g.neighbors(self.node);
            while self.idx < adj.len() {
                let w = adj[self.idx] as usize;
                self.idx += 1;
                if self.node < w {
                    return Some((self.node, w));
                }
            }
            self.node += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_csr_accepts_a_valid_graph() {
        let g = Graph::from_csr(vec![0, 2, 3, 3], vec![1, 2, 0]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        let empty = Graph::from_csr(vec![0], vec![]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn from_csr_rejects_empty_offsets() {
        assert_eq!(Graph::from_csr(vec![], vec![]), Err(CsrError::EmptyOffsets));
        assert_eq!(Graph::from_csr(vec![], vec![0, 1]), Err(CsrError::EmptyOffsets));
    }

    #[test]
    fn from_csr_rejects_non_monotonic_offsets() {
        assert_eq!(
            Graph::from_csr(vec![1, 2], vec![0, 0]),
            Err(CsrError::NonMonotonicOffsets { index: 0 })
        );
        assert_eq!(
            Graph::from_csr(vec![0, 3, 2], vec![0, 0, 0]),
            Err(CsrError::NonMonotonicOffsets { index: 2 })
        );
    }

    #[test]
    fn from_csr_rejects_mismatched_neighbor_length() {
        assert_eq!(
            Graph::from_csr(vec![0, 2], vec![1]),
            Err(CsrError::LengthMismatch { last_offset: 2, neighbors: 1 })
        );
        assert_eq!(
            Graph::from_csr(vec![0, 1], vec![1, 0, 2]),
            Err(CsrError::LengthMismatch { last_offset: 1, neighbors: 3 })
        );
    }

    #[test]
    fn csr_error_display_is_nonempty() {
        let errors = [
            CsrError::EmptyOffsets,
            CsrError::NonMonotonicOffsets { index: 4 },
            CsrError::LengthMismatch { last_offset: 2, neighbors: 1 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = Graph::empty(4);
        assert_eq!(g.len(), 4);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        for v in g.nodes() {
            assert_eq!(g.deg2(v), 2);
        }
    }

    #[test]
    fn duplicate_and_reversed_edges_merge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, crate::GraphError::SelfLoop(1));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, crate::GraphError::NodeOutOfRange { node: 3, n: 3 });
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once_sorted() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn deg2_star() {
        // Star: center 0 with 4 leaves. deg2(leaf) = deg(center) = 4.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(g.deg2(0), 4);
        for leaf in 1..5 {
            assert_eq!(g.deg2(leaf), 4);
            assert_eq!(g.degree(leaf), 1);
        }
    }

    #[test]
    fn degree_histogram_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let hist = g.degree_histogram();
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, order) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(sub.len(), 3);
        // Path 1-2-3 becomes 0-1-2.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle();
        let (sub, order) = g.induced_subgraph(&[2, 2, 0]);
        assert_eq!(order, vec![2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn disjoint_union() {
        let g = triangle().disjoint_union(&triangle());
        assert_eq!(g.len(), 6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn insert_edge_keeps_csr_invariants() {
        let mut g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.insert_edge(1, 2), Ok(true));
        assert_eq!(g.insert_edge(2, 1), Ok(false)); // already present
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert!(g.has_edge(1, 2));
        // Equal to the same graph built from scratch.
        let rebuilt = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn insert_edge_rejects_invalid() {
        let mut g = Graph::empty(3);
        assert_eq!(g.insert_edge(1, 1), Err(crate::GraphError::SelfLoop(1)));
        assert_eq!(g.insert_edge(0, 3), Err(crate::GraphError::NodeOutOfRange { node: 3, n: 3 }));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn remove_edge_and_absent_edge() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 2));
        assert!(!g.remove_edge(0, 2)); // already gone
        assert!(!g.remove_edge(1, 1)); // self loops never exist
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g, Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap());
    }

    #[test]
    fn insert_remove_round_trip_is_identity() {
        let original = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mut g = original.clone();
        assert_eq!(g.insert_edge(0, 2), Ok(true));
        assert_eq!(g.insert_edge(1, 4), Ok(true));
        assert!(g.remove_edge(1, 4));
        assert!(g.remove_edge(0, 2));
        assert_eq!(g, original);
    }

    #[test]
    fn isolate_node_removes_all_incident_edges() {
        let mut g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap();
        assert_eq!(g.isolate_node(0), 4);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 2));
        assert_eq!(g.isolate_node(0), 0); // idempotent
        assert_eq!(g, Graph::from_edges(5, [(1, 2)]).unwrap());
    }

    #[test]
    fn graph_common_traits() {
        let g = triangle();
        let g2 = g.clone();
        assert_eq!(g, g2);
        assert!(!format!("{g:?}").is_empty());
    }

    #[test]
    fn edge_diff_matches_sequential_churn() {
        let mut batch = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut seq = batch.clone();
        let added = [(0, 5), (2, 5), (1, 3)];
        let removed = [(1, 2), (3, 4)];
        let (ins, del) = batch.apply_edge_diff(&added, &removed).unwrap();
        assert_eq!((ins, del), (3, 2));
        for &(u, v) in &removed {
            assert!(seq.remove_edge(u, v));
        }
        for &(u, v) in &added {
            assert_eq!(seq.insert_edge(u, v), Ok(true));
        }
        assert_eq!(batch, seq);
    }

    #[test]
    fn edge_diff_skips_present_and_absent() {
        let mut g = triangle();
        // (0, 1) already present; (0, 2) not absent — both skipped in the
        // counts, duplicates collapsed.
        let (ins, del) = g.apply_edge_diff(&[(0, 1), (1, 0)], &[]).unwrap();
        assert_eq!((ins, del), (0, 0));
        let (ins, del) = g.apply_edge_diff(&[], &[(0, 1), (0, 1)]).unwrap();
        assert_eq!((ins, del), (0, 1));
        assert!(!g.has_edge(0, 1));
        // Removing the now-absent edge again is a no-op.
        let (ins, del) = g.apply_edge_diff(&[], &[(0, 1)]).unwrap();
        assert_eq!((ins, del), (0, 0));
    }

    #[test]
    fn edge_diff_removal_then_insertion_keeps_edge() {
        // Removals apply first, so an edge in both lists ends up present
        // and counts as unchanged.
        let mut g = triangle();
        let (ins, del) = g.apply_edge_diff(&[(0, 1)], &[(0, 1)]).unwrap();
        assert_eq!((ins, del), (0, 0));
        assert!(g.has_edge(0, 1));
        assert_eq!(g, triangle());
    }

    #[test]
    fn edge_diff_empty_is_identity() {
        let mut g = triangle();
        assert_eq!(g.apply_edge_diff(&[], &[]), Ok((0, 0)));
        assert_eq!(g, triangle());
    }

    #[test]
    fn edge_diff_rejects_invalid_and_leaves_graph_unchanged() {
        let mut g = triangle();
        assert_eq!(
            g.apply_edge_diff(&[(0, 3)], &[]),
            Err(crate::GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(g.apply_edge_diff(&[], &[(1, 1)]), Err(crate::GraphError::SelfLoop(1)));
        assert_eq!(g, triangle());
    }

    #[test]
    fn edge_diff_keeps_csr_invariants() {
        let mut g = Graph::empty(8);
        let added: Vec<(usize, usize)> =
            (0..8).flat_map(|u| ((u + 1)..8).map(move |v| (u, v))).collect();
        let (ins, del) = g.apply_edge_diff(&added, &[]).unwrap();
        assert_eq!((ins, del), (28, 0));
        for v in g.nodes() {
            let adj = g.neighbors(v);
            assert!(adj.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
            assert_eq!(adj.len(), 7);
        }
        let (ins, del) = g.apply_edge_diff(&[], &added).unwrap();
        assert_eq!((ins, del), (0, 28));
        assert_eq!(g, Graph::empty(8));
    }
}
