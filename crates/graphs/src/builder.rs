//! Incremental construction of [`Graph`]s.

use crate::{Graph, GraphError, NodeId};

/// Incremental builder for [`Graph`].
///
/// Collects undirected edges (in any orientation, duplicates allowed — they
/// are merged at [`GraphBuilder::build`] time) and produces a validated CSR
/// graph.
///
/// # Example
///
/// ```
/// use graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(2, 1)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> GraphBuilder {
        assert!(n <= u32::MAX as usize, "graphs are limited to u32::MAX nodes");
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Creates a builder with capacity reserved for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> GraphBuilder {
        let mut b = GraphBuilder::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of nodes the built graph will have.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the builder targets a graph with no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn num_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut GraphBuilder, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((crate::graph::node_id32(a), crate::graph::node_id32(b)));
        Ok(self)
    }

    /// Adds every edge from an iterator, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut GraphBuilder, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// `true` if the edge was already inserted (linear scan; intended for
    /// tests and small generators that need rejection sampling).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let (a, b) = (crate::graph::node_id32(a), crate::graph::node_id32(b));
        self.edges.contains(&(a, b))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Duplicate edges are merged; adjacency lists come out sorted.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degrees = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            degrees[a as usize] += 1;
            degrees[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..self.n].to_vec();
        let mut neighbors = vec![0u32; acc];
        for &(a, b) in &self.edges {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each node's slice is already sorted: edges were sorted by (a, b),
        // so node a receives its b's in increasing order; node b receives its
        // a's in increasing order of a, but interleaved with larger-neighbor
        // writes only after all smaller ones... that interleaving is not
        // guaranteed sorted, so sort each slice to uphold the CSR invariant.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr_trusted(offsets, neighbors)
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    /// Extends with edges, panicking on invalid ones.
    ///
    /// Use [`GraphBuilder::add_edges`] for fallible insertion.
    fn extend<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        self.add_edges(iter).expect("invalid edge passed to GraphBuilder::extend");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(4, 0), (0, 2), (0, 1), (3, 0)]).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn dedups_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edges([(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(b.num_edge_insertions(), 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn contains_edge_checks_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).unwrap();
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(b.add_edge(0, 0), Err(GraphError::SelfLoop(0))));
        assert!(matches!(b.add_edge(0, 2), Err(GraphError::NodeOutOfRange { node: 2, n: 2 })));
        assert!(matches!(b.add_edge(9, 1), Err(GraphError::NodeOutOfRange { node: 9, n: 2 })));
    }

    #[test]
    fn extend_trait() {
        let mut b = GraphBuilder::new(4);
        b.extend([(0, 1), (2, 3)]);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn empty_builder() {
        let b = GraphBuilder::new(0);
        assert!(b.is_empty());
        let g = b.build();
        assert!(g.is_empty());
    }

    #[test]
    fn chaining() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.build().num_edges(), 2);
    }
}
