//! Structural graph properties used to characterize experiment workloads.

use crate::{Graph, NodeId};

/// Breadth-first distances from `source`; unreachable nodes get
/// `usize::MAX`.
///
/// # Panics
///
/// Panics if `source >= g.len()`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v];
        for &u in g.neighbors(v) {
            let u = u as usize;
            if dist[u] == usize::MAX {
                dist[u] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// `true` if the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    if g.len() <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != usize::MAX)
}

/// Connected components: returns `(component_id_per_node, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.len()];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in g.nodes() {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if comp[u] == usize::MAX {
                    comp[u] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Eccentricity of `v`: the greatest BFS distance from `v` to any reachable
/// node.
///
/// # Panics
///
/// Panics if `v >= g.len()`.
pub fn eccentricity(g: &Graph, v: NodeId) -> usize {
    bfs_distances(g, v).into_iter().filter(|&d| d != usize::MAX).max().unwrap_or(0)
}

/// Exact diameter by running BFS from every node — `O(n · m)`, intended for
/// the moderate sizes used in experiments. Returns `None` for a disconnected
/// or empty graph.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() || !is_connected(g) {
        return None;
    }
    Some(g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0))
}

/// Degeneracy of the graph and a degeneracy ordering (smallest-last):
/// the returned `k` is the smallest value such that every subgraph has a
/// node of degree ≤ `k`.
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.len();
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let maxd = g.max_degree();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); maxd + 1];
    for v in g.nodes() {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket at or below/above cursor.
        cursor = cursor.min(maxd);
        loop {
            while cursor <= maxd && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let v = match buckets.get_mut(cursor).and_then(Vec::pop) {
                Some(v) => v,
                None => break,
            };
            if removed[v] || degree[v] != cursor {
                continue; // stale entry
            }
            removed[v] = true;
            order.push(v);
            degeneracy = degeneracy.max(cursor);
            for &u in g.neighbors(v) {
                let u = u as usize;
                if !removed[u] {
                    degree[u] -= 1;
                    buckets[degree[u]].push(u);
                    if degree[u] < cursor {
                        cursor = degree[u];
                    }
                }
            }
            break;
        }
    }
    (degeneracy, order)
}

/// Membership bitmap of the `k`-core: the maximal subgraph in which every
/// node has degree at least `k` (within the subgraph). Computed by
/// repeatedly peeling nodes of degree `< k`.
pub fn k_core(g: &Graph, k: usize) -> Vec<bool> {
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut in_core = vec![true; g.len()];
    let mut stack: Vec<NodeId> = g.nodes().filter(|&v| degree[v] < k).collect();
    for &v in &stack {
        in_core[v] = false;
    }
    while let Some(v) = stack.pop() {
        for &u in g.neighbors(v) {
            let u = u as usize;
            if in_core[u] {
                degree[u] -= 1;
                if degree[u] < k {
                    in_core[u] = false;
                    stack.push(u);
                }
            }
        }
    }
    in_core
}

/// Number of triangles each node participates in.
pub fn triangle_counts(g: &Graph) -> Vec<usize> {
    let mut counts = vec![0usize; g.len()];
    for (u, v) in g.edges() {
        // Intersect sorted adjacency lists of u and v.
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[i] as usize;
                    counts[u] += 1;
                    counts[v] += 1;
                    counts[w] += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    // Each triangle is found once per edge, i.e. three times total, and we
    // incremented each corner once per discovery.
    for c in &mut counts {
        *c /= 3;
    }
    counts
}

/// Local clustering coefficient of each node: the fraction of pairs of
/// neighbors that are themselves adjacent (0 for degree < 2).
pub fn clustering_coefficients(g: &Graph) -> Vec<f64> {
    let triangles = triangle_counts(g);
    g.nodes()
        .map(|v| {
            let d = g.degree(v);
            if d < 2 {
                0.0
            } else {
                2.0 * triangles[v] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Average local clustering coefficient (Watts–Strogatz definition; 0.0
/// for an empty graph).
pub fn average_clustering(g: &Graph) -> f64 {
    if g.is_empty() {
        return 0.0;
    }
    clustering_coefficients(g).iter().sum::<f64>() / g.len() as f64
}

/// Summary of the degree structure of a workload graph, printed in
/// experiment headers.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSummary {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree Δ.
    pub max: usize,
    /// Average degree.
    pub avg: f64,
    /// Maximum over nodes of `deg₂(v)` (always equals Δ) — kept for clarity.
    pub max_deg2: usize,
    /// Minimum over nodes of `deg₂(v)`: how "locally small" degrees can look.
    pub min_deg2: usize,
}

impl DegreeSummary {
    /// Computes the summary for `g`.
    pub fn of(g: &Graph) -> DegreeSummary {
        let deg2: Vec<usize> = g.nodes().map(|v| g.deg2(v)).collect();
        DegreeSummary {
            n: g.len(),
            m: g.num_edges(),
            min: g.min_degree(),
            max: g.max_degree(),
            avg: g.average_degree(),
            max_deg2: deg2.iter().copied().max().unwrap_or(0),
            min_deg2: deg2.iter().copied().min().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for DegreeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} deg[min={} avg={:.2} max={}] deg2[min={} max={}]",
            self.n, self.m, self.min, self.avg, self.max, self.min_deg2, self.max_deg2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, lattice, random};

    #[test]
    fn bfs_on_path() {
        let g = classic::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&classic::cycle(10)));
        assert!(!is_connected(&Graph::empty(3)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn components() {
        let g = classic::path(3).disjoint_union(&classic::path(2));
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn diameter_known_values() {
        assert_eq!(diameter(&classic::path(6)), Some(5));
        assert_eq!(diameter(&classic::cycle(6)), Some(3));
        assert_eq!(diameter(&classic::complete(5)), Some(1));
        assert_eq!(diameter(&classic::star(8)), Some(2));
        assert_eq!(diameter(&Graph::empty(3)), None);
    }

    #[test]
    fn diameter_grid() {
        assert_eq!(diameter(&lattice::grid(3, 4)), Some(5));
    }

    #[test]
    fn degeneracy_known_values() {
        assert_eq!(degeneracy(&classic::path(10)).0, 1);
        assert_eq!(degeneracy(&classic::cycle(10)).0, 2);
        assert_eq!(degeneracy(&classic::complete(6)).0, 5);
        assert_eq!(degeneracy(&classic::star(10)).0, 1);
        assert_eq!(degeneracy(&Graph::empty(4)).0, 0);
    }

    #[test]
    fn degeneracy_order_is_permutation() {
        let g = random::gnp(50, 0.2, 7);
        let (_, order) = degeneracy(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn triangles_known_values() {
        let g = classic::complete(4);
        // K4 has 4 triangles; each node is in C(3,2) = 3 of them.
        assert_eq!(triangle_counts(&g), vec![3, 3, 3, 3]);
        let g = classic::cycle(5);
        assert_eq!(triangle_counts(&g), vec![0; 5]);
    }

    #[test]
    fn clustering_known_values() {
        // Complete graph: clustering 1 everywhere.
        let g = classic::complete(6);
        assert!(clustering_coefficients(&g).iter().all(|&c| (c - 1.0).abs() < 1e-12));
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        // Trees: clustering 0 everywhere.
        let g = classic::star(8);
        assert_eq!(average_clustering(&g), 0.0);
        // Wheel W_6: hub sees the rim cycle; each rim pair adjacent iff
        // consecutive — hub clustering = 5 / C(5,2) = 0.5.
        let g = classic::wheel(6);
        let cc = clustering_coefficients(&g);
        assert!((cc[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_world_has_high_clustering_at_low_beta() {
        let lattice = crate::generators::small_world::watts_strogatz(60, 6, 0.0, 1).unwrap();
        let random = crate::generators::random::gnp(60, 6.0 / 59.0, 1);
        assert!(average_clustering(&lattice) > 3.0 * average_clustering(&random).max(0.01));
    }

    #[test]
    fn k_core_known_values() {
        // A clique of 5 is a 4-core; attaching a pendant path leaves the
        // clique as the 2-core.
        let g = crate::generators::composite::lollipop(5, 3);
        let core2 = k_core(&g, 2);
        assert_eq!(core2.iter().filter(|&&x| x).count(), 5);
        assert!(core2[..5].iter().all(|&x| x));
        let core4 = k_core(&g, 4);
        assert_eq!(core4.iter().filter(|&&x| x).count(), 5);
        // Everything survives the 0-core and 1-core except nothing/pendants.
        assert!(k_core(&g, 0).iter().all(|&x| x));
        // The 5-core is empty (max internal degree is 4).
        assert!(k_core(&g, 5).iter().all(|&x| !x));
    }

    #[test]
    fn k_core_matches_degeneracy() {
        let g = crate::generators::random::gnp(60, 0.15, 3);
        let (d, _) = degeneracy(&g);
        // The d-core is non-empty; the (d+1)-core is empty.
        assert!(k_core(&g, d).iter().any(|&x| x));
        assert!(k_core(&g, d + 1).iter().all(|&x| !x));
    }

    #[test]
    fn degree_summary_star() {
        let s = DegreeSummary::of(&classic::star(5));
        assert_eq!(s.n, 5);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.max_deg2, 4);
        assert_eq!(s.min_deg2, 4); // every leaf sees the hub
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn eccentricity_star() {
        let g = classic::star(6);
        assert_eq!(eccentricity(&g, 0), 1);
        assert_eq!(eccentricity(&g, 1), 2);
    }
}
