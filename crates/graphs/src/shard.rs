//! Cache-sized, word-aligned sharding of a CSR graph.
//!
//! A [`ShardPlan`] partitions the node range `0..n` into contiguous shards
//! whose boundaries are multiples of 64 (except the final boundary `n`), so
//! that per-node byte arrays *and* word-packed per-node bitsets can both be
//! split at shard boundaries into disjoint `&mut` slices — no two shards
//! ever touch the same `u64` word of a packed bitset. Shards are balanced
//! by CSR work (`degree(v) + 1` per node), the cost model of one delivery
//! sweep, and sized so a shard's working set fits in a private cache.
//!
//! The parallel scatter kernel (`beeping::par`) drives its workers off
//! [`ShardPlan::worker_ranges`]: each worker owns a contiguous run of
//! shards, walks them shard by shard, and writes only inside its own
//! word-aligned range.

use std::ops::Range;

use crate::Graph;

/// Target working-set size of one shard, in bytes — on the order of a
/// private L2 cache, so one shard's states, RNG streams, signal bytes and
/// adjacency slice stay resident while a worker sweeps it.
pub const TARGET_SHARD_BYTES: usize = 2 << 20;

/// Approximate per-node bytes touched by a round sweep (state, RNG stream,
/// sent/heard signals, packed-bitset share) — the coefficient of the
/// cache-sizing heuristic, not a layout guarantee.
const BYTES_PER_NODE: usize = 48;

/// Bytes per CSR adjacency entry (`u32`).
const BYTES_PER_EDGE_SLOT: usize = 4;

/// A partition of a graph's node range into contiguous, word-aligned,
/// work-balanced shards. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard `i` covers nodes `boundaries[i]..boundaries[i + 1]`. Every
    /// entry except the last is a multiple of 64; entries are strictly
    /// increasing; the last entry is `n`.
    boundaries: Vec<usize>,
    /// CSR work per shard: `Σ (degree(v) + 1)` over the shard's nodes.
    weights: Vec<u64>,
}

impl ShardPlan {
    /// Partitions `graph` into (at most) `target_shards` shards balanced by
    /// `degree(v) + 1`. The shard count is clamped to `[1, ⌈n / 64⌉]` —
    /// every shard spans at least one 64-node word — so tiny graphs yield
    /// fewer shards than requested. An empty graph yields one empty shard.
    pub fn build(graph: &Graph, target_shards: usize) -> ShardPlan {
        let n = graph.len();
        if n == 0 {
            return ShardPlan { boundaries: vec![0, 0], weights: vec![0] };
        }
        let words = n.div_ceil(64);
        let shards = target_shards.clamp(1, words);
        // Per-word work, so boundaries can only land on word edges.
        let mut word_weight = vec![0u64; words];
        let mut total = 0u64;
        for v in 0..n {
            let w = (graph.degree(v) + 1) as u64;
            word_weight[v >> 6] += w;
            total += w;
        }
        let mut boundaries = Vec::with_capacity(shards + 1);
        boundaries.push(0usize);
        let mut weights = Vec::with_capacity(shards);
        let mut acc = 0u64;
        let mut shard_acc = 0u64;
        for (w, &weight) in word_weight.iter().enumerate() {
            acc += weight;
            shard_acc += weight;
            let closed = boundaries.len() - 1;
            if closed + 1 == shards {
                break; // the final shard always ends at n
            }
            // Close the (closed+1)-th shard at this word edge once the
            // running work passes its quantile — or when exactly enough
            // words remain to give every later shard one word.
            let quantile_met = acc.saturating_mul(shards as u64) >= (closed as u64 + 1) * total;
            let words_left = words - (w + 1);
            let shards_left = shards - (closed + 1);
            if quantile_met || words_left == shards_left {
                boundaries.push(((w + 1) * 64).min(n));
                weights.push(shard_acc);
                shard_acc = 0;
            }
        }
        // The final shard: everything from the last boundary to n.
        weights.push(total - weights.iter().sum::<u64>());
        boundaries.push(n);
        ShardPlan { boundaries, weights }
    }

    /// Like [`ShardPlan::build`], with the shard count derived from the
    /// cache-sizing heuristic: enough shards that each one's estimated
    /// working set fits in [`TARGET_SHARD_BYTES`], but never fewer than
    /// `min_shards` (typically the worker count).
    pub fn cache_sized(graph: &Graph, min_shards: usize) -> ShardPlan {
        let n = graph.len();
        let bytes = n * BYTES_PER_NODE + graph.degree_sum() * BYTES_PER_EDGE_SLOT;
        let for_cache = bytes.div_ceil(TARGET_SHARD_BYTES.max(1));
        ShardPlan::build(graph, min_shards.max(for_cache).max(1))
    }

    /// Number of shards (at least 1).
    pub fn num_shards(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Node count covered by the plan.
    pub fn len(&self) -> usize {
        *self.boundaries.last().unwrap_or(&0)
    }

    /// `true` if the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node range of shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_shards()`.
    pub fn shard(&self, i: usize) -> Range<usize> {
        self.boundaries[i]..self.boundaries[i + 1]
    }

    /// The CSR work (`Σ degree + 1`) of shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_shards()`.
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// Iterates the shard node ranges in order.
    pub fn shards(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_shards()).map(|i| self.shard(i))
    }

    /// Groups the shards into (at most) `workers` contiguous, work-balanced
    /// node ranges — one per worker thread. Every returned range starts and
    /// ends on a shard boundary, so it inherits the word alignment that
    /// makes disjoint `&mut` bitset splitting sound. Ranges are non-empty
    /// except on an empty graph (where a single empty range is returned);
    /// fewer than `workers` ranges come back when there are fewer shards.
    pub fn worker_ranges(&self, workers: usize) -> Vec<Range<usize>> {
        let shards = self.num_shards();
        let workers = workers.clamp(1, shards);
        let total: u64 = self.weights.iter().sum();
        let mut ranges = Vec::with_capacity(workers);
        let mut start_shard = 0usize;
        let mut acc = 0u64;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            let closed = ranges.len();
            if closed + 1 == workers {
                break; // the final worker takes the rest
            }
            let quantile_met = acc.saturating_mul(workers as u64) >= (closed as u64 + 1) * total;
            let shards_left = shards - (i + 1);
            let workers_left = workers - (closed + 1);
            if quantile_met || shards_left == workers_left {
                ranges.push(self.boundaries[start_shard]..self.boundaries[i + 1]);
                start_shard = i + 1;
            }
        }
        ranges.push(self.boundaries[start_shard]..self.len());
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn covers_the_node_range_exactly() {
        let g = classic::cycle(1000);
        let plan = ShardPlan::build(&g, 7);
        let mut expected = 0usize;
        for r in plan.shards() {
            assert_eq!(r.start, expected, "shards must be contiguous");
            assert!(r.end > r.start, "shards must be non-empty");
            expected = r.end;
        }
        assert_eq!(expected, 1000);
    }

    #[test]
    fn boundaries_are_word_aligned() {
        let g = classic::cycle(1000);
        let plan = ShardPlan::build(&g, 7);
        for i in 0..plan.num_shards() - 1 {
            assert_eq!(plan.shard(i).end % 64, 0, "interior boundary must be word-aligned");
        }
        assert_eq!(plan.shard(plan.num_shards() - 1).end, 1000);
    }

    #[test]
    fn shard_count_is_clamped_to_words() {
        // 100 nodes = 2 words: asking for 8 shards yields 2.
        let g = classic::cycle(100);
        let plan = ShardPlan::build(&g, 8);
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.shard(0), 0..64);
        assert_eq!(plan.shard(1), 64..100);
    }

    #[test]
    fn single_shard_and_empty_graph() {
        let g = classic::cycle(10);
        let plan = ShardPlan::build(&g, 1);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.shard(0), 0..10);

        let empty = ShardPlan::build(&Graph::empty(0), 4);
        assert_eq!(empty.num_shards(), 1);
        assert_eq!(empty.shard(0), 0..0);
        assert!(empty.is_empty());
        assert_eq!(empty.worker_ranges(4), vec![0..0]);
    }

    #[test]
    fn weights_are_degree_balanced_on_a_regular_graph() {
        // On a cycle every node has weight 3, so quantile closing lands
        // shards within one word of perfect balance.
        let g = classic::cycle(64 * 40);
        let plan = ShardPlan::build(&g, 4);
        assert_eq!(plan.num_shards(), 4);
        let total: u64 = (0..4).map(|i| plan.weight(i)).sum();
        assert_eq!(total, 3 * 64 * 40);
        for i in 0..4 {
            let w = plan.weight(i);
            assert!((w as i64 - total as i64 / 4).unsigned_abs() <= 3 * 64, "shard {i}: {w}");
        }
    }

    #[test]
    fn skewed_degrees_shift_the_boundaries() {
        // A star: node 0 carries half the work, so the first shard of a
        // 2-shard plan ends well left of the node-count midpoint (256).
        let g = classic::star(64 * 8);
        let plan = ShardPlan::build(&g, 2);
        assert_eq!(plan.num_shards(), 2);
        assert!(plan.shard(0).end <= 192, "got {:?}", plan.shard(0));
        assert!(plan.weight(0) >= plan.weight(1));
    }

    #[test]
    fn worker_ranges_group_contiguous_shards() {
        let g = classic::cycle(64 * 12);
        let plan = ShardPlan::build(&g, 12);
        for workers in [1usize, 2, 3, 5, 12, 40] {
            let ranges = plan.worker_ranges(workers);
            assert_eq!(ranges.len(), workers.min(12));
            let mut expected = 0usize;
            for r in &ranges {
                assert_eq!(r.start, expected);
                assert!(r.end > r.start);
                assert!(r.end == plan.len() || r.end % 64 == 0);
                expected = r.end;
            }
            assert_eq!(expected, plan.len());
        }
    }

    #[test]
    fn cache_sized_scales_with_graph_size() {
        let small = classic::cycle(256);
        assert_eq!(ShardPlan::cache_sized(&small, 2).num_shards(), 2);
        // ~180k nodes * 48B ≈ 8.6 MB > 4 shards' worth of 2 MiB.
        let large = classic::cycle(64 * 2800);
        assert!(ShardPlan::cache_sized(&large, 2).num_shards() > 4);
    }
}
