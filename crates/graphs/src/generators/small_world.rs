//! Watts–Strogatz small-world graphs.

use rand::Rng;

use super::rng_from_seed;
use crate::{Graph, GraphBuilder, GraphError};

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbors (`k` even), with each edge independently
/// rewired to a uniform random endpoint with probability `beta`.
///
/// `beta = 0` gives the pure ring lattice; `beta = 1` approaches `G(n, p)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    if !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!("k must be even, got {k}")));
    }
    if k >= n && n > 0 {
        return Err(GraphError::InvalidParameter(format!("k={k} must be < n={n}")));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter(format!("beta must be in [0,1], got {beta}")));
    }
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    if n == 0 || k == 0 {
        return Ok(b.build());
    }
    // BTreeSet (not HashSet): the rewiring loop below iterates this set to
    // drive the RNG, so iteration order must not depend on the process's
    // hash keying or the same seed would yield different graphs.
    let mut present = std::collections::BTreeSet::new();
    let add = |set: &mut std::collections::BTreeSet<(usize, usize)>, u: usize, v: usize| {
        let e = if u < v { (u, v) } else { (v, u) };
        set.insert(e)
    };
    for v in 0..n {
        for hop in 1..=(k / 2) {
            let u = (v + hop) % n;
            add(&mut present, v, u);
        }
    }
    let lattice_edges: Vec<(usize, usize)> = present.iter().copied().collect();
    for (u, v) in lattice_edges {
        if rng.gen_bool(beta) {
            // Rewire the far endpoint to a uniform non-self, non-duplicate
            // target; keep the original edge if no valid target is found
            // quickly (matches the standard algorithm's behavior on dense k).
            for _ in 0..32 {
                let w = rng.gen_range(0..n);
                let candidate = if u < w { (u, w) } else { (w, u) };
                if w != u && !present.contains(&candidate) {
                    present.remove(&if u < v { (u, v) } else { (v, u) });
                    present.insert(candidate);
                    break;
                }
            }
        }
    }
    for (u, v) in present {
        b.add_edge(u, v).expect("small-world edges are valid");
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        let g0 = watts_strogatz(50, 6, 0.0, 2).unwrap();
        let g1 = watts_strogatz(50, 6, 0.3, 2).unwrap();
        assert_eq!(g0.num_edges(), g1.num_edges());
    }

    #[test]
    fn same_seed_same_graph() {
        // Regression: the rewiring loop iterates `present` to drive the RNG;
        // with a HashSet that order varied per instance, so the same seed
        // produced different graphs even within one process.
        let g0 = watts_strogatz(60, 4, 0.3, 7).unwrap();
        let g1 = watts_strogatz(60, 4, 0.3, 7).unwrap();
        assert_eq!(g0, g1);
    }

    #[test]
    fn rewiring_changes_graph() {
        let g0 = watts_strogatz(50, 4, 0.0, 3).unwrap();
        let g1 = watts_strogatz(50, 4, 0.5, 3).unwrap();
        assert_ne!(g0, g1);
    }

    #[test]
    fn stays_connected_typically() {
        let g = watts_strogatz(100, 6, 0.1, 4).unwrap();
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err()); // odd k
        assert!(watts_strogatz(4, 4, 0.1, 0).is_err()); // k >= n
        assert!(watts_strogatz(10, 2, 1.5, 0).is_err()); // beta > 1
    }

    #[test]
    fn empty_graph() {
        let g = watts_strogatz(0, 0, 0.0, 0).unwrap();
        assert!(g.is_empty());
    }
}
