//! Random geometric graphs: the canonical wireless-sensor-network topology.
//!
//! The beeping model is motivated by wireless networks where a node's beep is
//! heard by everyone within radio range (§1 of the paper); a random geometric
//! graph — points in the unit square connected when within distance `r` — is
//! the standard abstraction of such a deployment.

use rand::Rng;

use super::rng_from_seed;
use crate::{Graph, GraphBuilder};

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance `< radius`.
///
/// Uses a bucket grid so generation is `O(n + m)` in expectation.
///
/// # Panics
///
/// Panics if `radius` is negative or NaN.
///
/// # Example
///
/// ```
/// let g = graphs::generators::geometric::random_geometric(200, 0.1, 3);
/// assert_eq!(g.len(), 200);
/// ```
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(radius >= 0.0, "radius must be non-negative, got {radius}");
    geometric_from_points(&random_points(n, seed), radius)
}

/// The uniform unit-square point cloud behind [`random_geometric`]: the
/// same `seed` reproduces the same deployment, so
/// `geometric_from_points(&random_points(n, s), r)` equals
/// `random_geometric(n, r, s)`. Exposed so mobility models
/// ([`crate::motion`]) can start from the deployment a static geometric
/// graph was built from.
pub fn random_points(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = rng_from_seed(seed);
    (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect()
}

/// The connection radius whose *expected* average degree is `avg_degree`
/// on `n` uniform points (ignoring boundary effects):
/// `r = sqrt(avg_degree / (π (n-1)))`, capped so `r ≤ √2`. This is the
/// radius [`random_geometric_expected_degree`] uses; exposed so mobility
/// setups can target a degree instead of a raw radius.
pub fn radius_for_expected_degree(n: usize, avg_degree: f64) -> f64 {
    assert!(avg_degree >= 0.0, "avg_degree must be non-negative");
    if n < 2 {
        return 0.0;
    }
    let r = (avg_degree / (std::f64::consts::PI * (n as f64 - 1.0))).sqrt();
    r.min(std::f64::consts::SQRT_2)
}

/// Random geometric graph with the radius chosen so the *expected* average
/// degree is `avg_degree` (ignoring boundary effects):
/// `r = sqrt(avg_degree / (π (n-1)))`, capped so `r ≤ √2`.
pub fn random_geometric_expected_degree(n: usize, avg_degree: f64, seed: u64) -> Graph {
    assert!(avg_degree >= 0.0, "avg_degree must be non-negative");
    if n < 2 {
        return Graph::empty(n);
    }
    random_geometric(n, radius_for_expected_degree(n, avg_degree), seed)
}

/// Builds the geometric graph over explicit `points` (unit-square
/// coordinates) with connection `radius`. Exposed so deployments with known
/// sensor positions can be simulated.
pub fn geometric_from_points(points: &[(f64, f64)], radius: f64) -> Graph {
    assert!(radius >= 0.0, "radius must be non-negative, got {radius}");
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    if n < 2 || radius == 0.0 {
        return b.build();
    }
    let cell = radius.max(1e-9);
    let cells_per_side = (1.0 / cell).ceil().max(1.0) as usize;
    let cell_of = |(x, y): (f64, f64)| -> (usize, usize) {
        let cx = ((x / cell) as usize).min(cells_per_side - 1);
        let cy = ((y / cell) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(crate::graph::node_id32(i));
    }
    let r2 = radius * radius;
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of((x, y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &buckets[ny as usize * cells_per_side + nx as usize] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    let (px, py) = points[j];
                    let d2 = (x - px) * (x - px) + (y - py) * (y - py);
                    if d2 < r2 {
                        // i < j < n by construction, so the edge is always
                        // accepted; checked in debug builds only to keep
                        // the motion hot path panic-free.
                        let edge = b.add_edge(i, j);
                        debug_assert!(edge.is_ok(), "geometric edges are valid");
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_radius_no_edges() {
        let g = random_geometric(50, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn huge_radius_complete() {
        let g = random_geometric(20, 2.0, 1);
        assert_eq!(g.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = super::super::rng_from_seed(77);
        let points: Vec<(f64, f64)> =
            (0..120).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let r = 0.17;
        let fast = geometric_from_points(&points, r);
        let mut slow = GraphBuilder::new(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let (x1, y1) = points[i];
                let (x2, y2) = points[j];
                if (x1 - x2).powi(2) + (y1 - y2).powi(2) < r * r {
                    slow.add_edge(i, j).unwrap();
                }
            }
        }
        assert_eq!(fast, slow.build());
    }

    #[test]
    fn expected_degree_ballpark() {
        let g = random_geometric_expected_degree(2000, 10.0, 5);
        let avg = g.average_degree();
        // Boundary effects reduce the average a bit below the target.
        assert!(avg > 5.0 && avg < 12.0, "avg degree {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_geometric(100, 0.1, 2), random_geometric(100, 0.1, 2));
    }

    #[test]
    fn explicit_points() {
        let pts = [(0.1, 0.1), (0.15, 0.1), (0.9, 0.9)];
        let g = geometric_from_points(&pts, 0.1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }
}
