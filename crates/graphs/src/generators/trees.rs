//! Tree generators: sparse hierarchical topologies.

use rand::Rng;

use super::rng_from_seed;
use crate::{Graph, GraphBuilder};

/// Random recursive tree: node `v ≥ 1` attaches to a uniformly random earlier
/// node. Expected max degree is `Θ(log n)`.
///
/// # Example
///
/// ```
/// let g = graphs::generators::trees::random_recursive_tree(50, 9);
/// assert_eq!(g.num_edges(), 49);
/// ```
pub fn random_recursive_tree(n: usize, seed: u64) -> Graph {
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent, v).expect("tree edges are valid");
    }
    b.build()
}

/// Uniformly random labelled tree via a random Prüfer sequence.
pub fn random_prufer_tree(n: usize, seed: u64) -> Graph {
    if n < 2 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("two-node tree is valid");
    }
    let mut rng = rng_from_seed(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    // Standard decoding with a min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        (0..n).filter(|&v| degree[v] == 1).map(std::cmp::Reverse).collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("decoding always has a leaf");
        b.add_edge(leaf, p).expect("prufer edges are valid");
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = leaves.pop().expect("two leaves remain");
    b.add_edge(u, v).expect("final prufer edge is valid");
    b.build()
}

/// Complete `k`-ary tree with `n` nodes in breadth-first layout: node `v ≥ 1`
/// has parent `(v - 1) / k`.
///
/// # Panics
///
/// Panics if `k == 0` and `n > 1`.
pub fn kary_tree(n: usize, k: usize) -> Graph {
    if n > 1 {
        assert!(k > 0, "k-ary tree needs k >= 1");
    }
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge((v - 1) / k, v).expect("kary edges are valid");
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Total nodes: `spine * (1 + legs)`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for s in 1..spine {
        b.add_edge(s - 1, s).expect("spine edges are valid");
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            b.add_edge(s, leaf).expect("leg edges are valid");
        }
    }
    b.build()
}

/// Spider: `legs` paths of length `leg_len` joined at a single hub (node 0).
/// Total nodes: `1 + legs * leg_len`.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for leg in 0..legs {
        let mut prev = 0usize;
        for step in 0..leg_len {
            let v = 1 + leg * leg_len + step;
            b.add_edge(prev, v).expect("spider edges are valid");
            prev = v;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn recursive_tree_is_tree() {
        let g = random_recursive_tree(100, 4);
        assert_eq!(g.num_edges(), 99);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn recursive_tree_tiny() {
        assert_eq!(random_recursive_tree(0, 0).len(), 0);
        assert_eq!(random_recursive_tree(1, 0).num_edges(), 0);
    }

    #[test]
    fn prufer_tree_is_tree() {
        for seed in 0..5 {
            let g = random_prufer_tree(60, seed);
            assert_eq!(g.num_edges(), 59);
            assert!(properties::is_connected(&g));
        }
    }

    #[test]
    fn prufer_tiny() {
        assert_eq!(random_prufer_tree(1, 0).num_edges(), 0);
        assert_eq!(random_prufer_tree(2, 0).num_edges(), 1);
        let g = random_prufer_tree(3, 7);
        assert_eq!(g.num_edges(), 2);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn kary_structure() {
        let g = kary_tree(7, 2);
        // Perfect binary tree of 7 nodes: root degree 2, internal degree 3.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(3), 1);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 2);
        assert_eq!(g.len(), 12);
        assert_eq!(g.num_edges(), 11);
        assert!(properties::is_connected(&g));
        // Interior spine node: 2 spine neighbors + 2 legs.
        assert_eq!(g.degree(1), 4);
    }

    #[test]
    fn spider_structure() {
        let g = spider(3, 4);
        assert_eq!(g.len(), 13);
        assert_eq!(g.degree(0), 3);
        assert!(properties::is_connected(&g));
        assert_eq!(properties::eccentricity(&g, 0), 4);
    }
}
