//! Expander-like graphs: low-diameter, well-mixing workloads.
//!
//! MIS dynamics behave differently on expanders than on lattices (beeps
//! spread everywhere in O(log n) hops); these generators give the
//! experiments a well-mixing family with *deterministic* structure, next
//! to the random families.

use crate::{Graph, GraphBuilder, GraphError};

/// Circulant graph `C_n(S)`: node `v` is adjacent to `v ± s (mod n)` for
/// each offset `s ∈ S`. With well-spread offsets this is a good
/// vertex-transitive expander; `S = {1}` degenerates to the cycle.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if an offset is 0 or ≥ n.
pub fn circulant(n: usize, offsets: &[usize]) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::with_capacity(n, n * offsets.len());
    for &s in offsets {
        if s == 0 || s >= n.max(1) {
            return Err(GraphError::InvalidParameter(format!(
                "offset {s} must be in 1..n (n = {n})"
            )));
        }
    }
    for v in 0..n {
        for &s in offsets {
            let u = (v + s) % n;
            if u != v {
                b.add_edge(v, u).expect("circulant edges are valid");
            }
        }
    }
    Ok(b.build())
}

/// A standard circulant expander with `k` geometrically-spread offsets
/// `{1, 2, 4, 8, …}` — diameter `O(n / 2^k + k)`.
///
/// # Errors
///
/// Propagates [`circulant`]'s parameter validation (fails when an offset
/// reaches `n`, i.e. `2^(k-1) ≥ n`).
pub fn circulant_powers(n: usize, k: u32) -> Result<Graph, GraphError> {
    let offsets: Vec<usize> = (0..k).map(|i| 1usize << i).collect();
    circulant(n, &offsets)
}

/// The Margulis-style expander on the `m × m` torus of nodes `(x, y)`:
/// each node is adjacent to `(x±y, y)`, `(x±y+1, y)`, `(x, y±x)`,
/// `(x, y±x+1)` (all mod `m`) — the classic explicit 8-regular-ish
/// expander construction (Margulis 1973 / Gabber–Galil).
pub fn margulis(m: usize) -> Graph {
    let n = m * m;
    let mut b = GraphBuilder::new(n);
    if m < 2 {
        return b.build();
    }
    let id = |x: usize, y: usize| -> usize { (y % m) * m + (x % m) };
    for y in 0..m {
        for x in 0..m {
            let v = id(x, y);
            let targets = [id(x + y, y), id(x + y + 1, y), id(x, y + x), id(x, y + x + 1)];
            for u in targets {
                if u != v {
                    b.add_edge(v, u).expect("margulis edges are valid");
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn circulant_cycle_degenerate() {
        let g = circulant(8, &[1]).unwrap();
        assert_eq!(g, crate::generators::classic::cycle(8));
    }

    #[test]
    fn circulant_regular() {
        let g = circulant(20, &[1, 3, 7]).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6);
        }
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn circulant_rejects_bad_offsets() {
        assert!(circulant(10, &[0]).is_err());
        assert!(circulant(10, &[10]).is_err());
    }

    #[test]
    fn circulant_powers_has_log_diameter() {
        let g = circulant_powers(256, 8).unwrap();
        let diam = properties::diameter(&g).unwrap();
        assert!(diam <= 10, "diameter {diam} should be logarithmic");
    }

    #[test]
    fn circulant_powers_rejects_oversized_offsets() {
        assert!(circulant_powers(16, 5).is_err()); // offset 16 = n
    }

    #[test]
    fn margulis_structure() {
        let g = margulis(8);
        assert_eq!(g.len(), 64);
        assert!(properties::is_connected(&g));
        // Low diameter relative to the grid of the same size (grid 8×8 has
        // diameter 14).
        let diam = properties::diameter(&g).unwrap();
        assert!(diam <= 8, "expander diameter {diam}");
        // Bounded degree (≤ 8 by construction).
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn margulis_degenerate() {
        assert_eq!(margulis(0).len(), 0);
        assert_eq!(margulis(1).len(), 1);
    }
}
