//! Graph generators: the workload families of the experiments.
//!
//! Each generator takes explicit parameters plus (where randomized) a `seed`,
//! and is fully deterministic for a fixed seed. Generators that can fail on
//! bad parameters return `Result<Graph, GraphError>`; infallible ones return
//! `Graph` directly.
//!
//! Families and why they matter for the paper:
//!
//! - [`classic`]: paths, cycles, complete graphs, stars — small worst cases
//!   and sanity checks (e.g. a clique forces maximal contention; a star has
//!   extreme degree heterogeneity).
//! - [`lattice`]: grids, tori, hypercubes — bounded-degree regular topologies
//!   where Thm 2.1 and Thm 2.2 should behave identically.
//! - [`random`]: Erdős–Rényi G(n,p)/G(n,m), random regular — the standard
//!   benchmark distributions.
//! - [`trees`]: random recursive trees, k-ary trees, caterpillars — sparse
//!   hierarchical topologies.
//! - [`scale_free`]: Barabási–Albert preferential attachment — heavy-tailed
//!   degrees, the regime that separates own-degree knowledge (Thm 2.2) from
//!   global-Δ knowledge (Thm 2.1).
//! - [`geometric`]: random geometric graphs — the canonical model of the
//!   wireless sensor networks that motivate the beeping model.
//! - [`small_world`]: Watts–Strogatz rewiring.
//! - [`composite`]: structured compositions (star-of-cliques, clique chains)
//!   engineered for extreme `deg` vs `deg₂` gaps, stressing Cor 2.3.
//! - [`expander`]: deterministic well-mixing graphs (circulants, the
//!   Margulis construction).

pub mod classic;
pub mod composite;
pub mod expander;
pub mod geometric;
pub mod lattice;
pub mod random;
pub mod scale_free;
pub mod small_world;
pub mod trees;

use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

/// The deterministic PRNG used by all randomized generators.
///
/// PCG64 (MCG variant): fast, seedable, high quality; a fixed `seed` gives a
/// fixed graph on every platform.
pub(crate) fn rng_from_seed(seed: u64) -> Pcg64Mcg {
    Pcg64Mcg::seed_from_u64(seed)
}

/// A named graph family, used by the experiment harness to sweep workloads.
///
/// `GraphFamily::generate(n, seed)` produces an `n`-node instance; parameters
/// other than `n` are part of the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphFamily {
    /// Path graph `P_n`.
    Path,
    /// Cycle graph `C_n`.
    Cycle,
    /// Complete graph `K_n`.
    Complete,
    /// Star `K_{1,n-1}`.
    Star,
    /// Two-dimensional grid, roughly square.
    Grid,
    /// Erdős–Rényi with expected degree `avg_degree`.
    Gnp {
        /// Expected average degree; `p = avg_degree / (n - 1)`.
        avg_degree: f64,
    },
    /// Random `d`-regular graph.
    Regular {
        /// Degree of every node.
        d: usize,
    },
    /// Random geometric graph with expected degree `avg_degree`.
    Geometric {
        /// Expected average degree (controls the connection radius).
        avg_degree: f64,
    },
    /// Barabási–Albert preferential attachment, `m` edges per new node.
    BarabasiAlbert {
        /// Edges added per arriving node.
        m: usize,
    },
    /// Random recursive tree.
    RandomTree,
    /// Star of cliques: hub star with a clique attached to each leaf.
    StarOfCliques {
        /// Size of each attached clique.
        clique: usize,
    },
}

impl GraphFamily {
    /// Short machine-friendly name for table headers.
    pub fn name(&self) -> String {
        match self {
            GraphFamily::Path => "path".into(),
            GraphFamily::Cycle => "cycle".into(),
            GraphFamily::Complete => "complete".into(),
            GraphFamily::Star => "star".into(),
            GraphFamily::Grid => "grid".into(),
            GraphFamily::Gnp { avg_degree } => format!("gnp(d={avg_degree})"),
            GraphFamily::Regular { d } => format!("regular(d={d})"),
            GraphFamily::Geometric { avg_degree } => format!("geo(d={avg_degree})"),
            GraphFamily::BarabasiAlbert { m } => format!("ba(m={m})"),
            GraphFamily::RandomTree => "tree".into(),
            GraphFamily::StarOfCliques { clique } => format!("starcliq(k={clique})"),
        }
    }

    /// Generates an instance with (approximately, for structured families)
    /// `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the family's parameters are invalid for this `n` (e.g. a
    /// `d`-regular graph with `d >= n`). The experiment harness only uses
    /// valid combinations.
    pub fn generate(&self, n: usize, seed: u64) -> crate::Graph {
        match self {
            GraphFamily::Path => classic::path(n),
            GraphFamily::Cycle => classic::cycle(n),
            GraphFamily::Complete => classic::complete(n),
            GraphFamily::Star => classic::star(n),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                lattice::grid(side, n.div_ceil(side.max(1)))
            }
            GraphFamily::Gnp { avg_degree } => {
                let p = if n > 1 { (avg_degree / (n as f64 - 1.0)).min(1.0) } else { 0.0 };
                random::gnp(n, p, seed)
            }
            GraphFamily::Regular { d } => {
                random::random_regular(n, *d, seed).expect("valid regular parameters")
            }
            GraphFamily::Geometric { avg_degree } => {
                geometric::random_geometric_expected_degree(n, *avg_degree, seed)
            }
            GraphFamily::BarabasiAlbert { m } => {
                scale_free::barabasi_albert(n, *m, seed).expect("valid BA parameters")
            }
            GraphFamily::RandomTree => trees::random_recursive_tree(n, seed),
            GraphFamily::StarOfCliques { clique } => {
                let hubs = (n / (clique + 1)).max(1);
                composite::star_of_cliques(hubs, *clique)
            }
        }
    }

    /// The standard sweep used by the stabilization-time experiments: one
    /// bounded-degree, one random, one geometric, and one heterogeneous
    /// family.
    pub fn standard_sweep() -> Vec<GraphFamily> {
        vec![
            GraphFamily::Cycle,
            GraphFamily::Gnp { avg_degree: 8.0 },
            GraphFamily::Geometric { avg_degree: 8.0 },
            GraphFamily::BarabasiAlbert { m: 3 },
        ]
    }
}

impl std::fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_requested_size() {
        for family in [
            GraphFamily::Path,
            GraphFamily::Cycle,
            GraphFamily::Complete,
            GraphFamily::Star,
            GraphFamily::Gnp { avg_degree: 4.0 },
            GraphFamily::Regular { d: 3 },
            GraphFamily::Geometric { avg_degree: 4.0 },
            GraphFamily::BarabasiAlbert { m: 2 },
            GraphFamily::RandomTree,
        ] {
            let g = family.generate(64, 7);
            assert_eq!(g.len(), 64, "family {family} produced wrong size");
        }
    }

    #[test]
    fn structured_families_close_to_requested_size() {
        let g = GraphFamily::Grid.generate(64, 0);
        assert!(g.len() >= 64, "grid rounds up to a full rectangle");
        let g = GraphFamily::StarOfCliques { clique: 4 }.generate(50, 0);
        assert!(g.len() >= 40 && g.len() <= 60);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = GraphFamily::Gnp { avg_degree: 6.0 };
        assert_eq!(f.generate(100, 3), f.generate(100, 3));
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = GraphFamily::standard_sweep().iter().map(GraphFamily::name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
