//! Random graph models: Erdős–Rényi and random regular graphs.

use rand::seq::SliceRandom;
use rand::Rng;

use super::rng_from_seed;
use crate::{Graph, GraphBuilder, GraphError};

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skipping, so generation is `O(n + m)` rather than `O(n²)`
/// for sparse graphs.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
///
/// # Example
///
/// ```
/// let g = graphs::generators::random::gnp(100, 0.1, 1);
/// assert_eq!(g.len(), 100);
/// ```
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        return super::classic::complete(n);
    }
    // Iterate edge index k over the upper triangle with geometric jumps:
    // the gap between successive present edges is Geometric(p).
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge(w as usize, v).expect("gnp edges are valid");
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m` exceeds the number of
/// possible edges `n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameter(format!(
            "m={m} exceeds max {max_edges} for n={n}"
        )));
    }
    let mut rng = rng_from_seed(seed);
    // BTreeSet (not HashSet): iteration order must not depend on the
    // process's hash keying, so the same seed always yields the same graph.
    let mut chosen = std::collections::BTreeSet::new();
    // Rejection sampling is fine while m is at most half the possible edges;
    // beyond that, sample the complement instead.
    if m * 2 <= max_edges {
        while chosen.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                let e = if u < v { (u, v) } else { (v, u) };
                chosen.insert(e);
            }
        }
    } else {
        let mut excluded = std::collections::BTreeSet::new();
        while excluded.len() < max_edges - m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                let e = if u < v { (u, v) } else { (v, u) };
                excluded.insert(e);
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if !excluded.contains(&(u, v)) {
                    chosen.insert((u, v));
                }
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    for (u, v) in chosen {
        b.add_edge(u, v).expect("gnm edges are valid");
    }
    Ok(b.build())
}

/// Random `d`-regular graph via the configuration (pairing) model with
/// restarts: each node gets `d` stubs, stubs are paired uniformly, and the
/// whole pairing is retried until it is simple.
///
/// For `d = O(1)` the expected number of restarts is constant, so this is the
/// standard practical sampler.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if d >= n && !(n == 0 && d == 0) {
        return Err(GraphError::InvalidParameter(format!("d={d} must be < n={n}")));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!("n*d must be even, got n={n} d={d}")));
    }
    let mut rng = rng_from_seed(seed);
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    'restart: loop {
        stubs.clear();
        for v in 0..n {
            for _ in 0..d {
                stubs.push(crate::graph::node_id32(v));
            }
        }
        stubs.shuffle(&mut rng);
        let mut seen = std::collections::BTreeSet::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert(if u < v { (u, v) } else { (v, u) }) {
                continue 'restart;
            }
        }
        let mut b = GraphBuilder::with_capacity(n, n * d / 2);
        for (u, v) in seen {
            b.add_edge(u as usize, v as usize).expect("pairing edges are valid");
        }
        return Ok(b.build());
    }
}

/// Random bipartite graph: sides of `a` and `b` nodes, each cross edge
/// present independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let mut rng = rng_from_seed(seed);
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            if rng.gen_bool(p) {
                builder.add_edge(u, v).expect("bipartite edges are valid");
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 99);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        assert!((m - expected).abs() < 4.0 * expected.sqrt() + 20.0, "m={m} expected≈{expected}");
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(gnp(100, 0.1, 5), gnp(100, 0.1, 5));
        assert_ne!(gnp(100, 0.1, 5), gnp(100, 0.1, 6));
    }

    #[test]
    fn gnp_tiny() {
        assert_eq!(gnp(0, 0.5, 1).len(), 0);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn gnm_exact_count() {
        for m in [0, 10, 40, 45] {
            let g = gnm(10, m, 3).unwrap();
            assert_eq!(g.num_edges(), m);
        }
    }

    #[test]
    fn gnm_rejects_too_many() {
        assert!(gnm(10, 46, 0).is_err());
    }

    #[test]
    fn gnm_deterministic() {
        // Both the rejection-sampling branch (sparse) and the complement
        // branch (dense) must be a pure function of the seed.
        assert_eq!(gnm(30, 40, 7).unwrap(), gnm(30, 40, 7).unwrap());
        assert_eq!(gnm(30, 400, 7).unwrap(), gnm(30, 400, 7).unwrap());
    }

    #[test]
    fn regular_deterministic() {
        assert_eq!(random_regular(40, 4, 9).unwrap(), random_regular(40, 4, 9).unwrap());
    }

    #[test]
    fn regular_degrees() {
        for d in [2, 3, 4, 6] {
            let g = random_regular(30, d, 11).unwrap();
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "node {v} in {d}-regular graph");
            }
        }
    }

    #[test]
    fn regular_rejects_bad_params() {
        assert!(random_regular(5, 3, 0).is_err()); // odd n*d
        assert!(random_regular(4, 4, 0).is_err()); // d >= n
    }

    #[test]
    fn regular_zero_degree() {
        let g = random_regular(6, 0, 0).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn bipartite_has_no_side_edges() {
        let g = random_bipartite(8, 8, 0.5, 4);
        for u in 0..8 {
            for v in (u + 1)..8 {
                assert!(!g.has_edge(u, v));
                assert!(!g.has_edge(u + 8, v + 8));
            }
        }
    }
}
