//! Classic deterministic graph families.

use crate::{Graph, GraphBuilder};

/// Path graph `P_n`: nodes `0..n` with edges `(i, i+1)`.
///
/// # Example
///
/// ```
/// let g = graphs::generators::classic::path(4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(1), 2);
/// ```
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(i - 1, i).expect("path edges are valid");
    }
    b.build()
}

/// Cycle graph `C_n` (a path for `n < 3`).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 1..n {
        b.add_edge(i - 1, i).expect("cycle edges are valid");
    }
    b.add_edge(n - 1, 0).expect("closing edge is valid");
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete edges are valid");
        }
    }
    b.build()
}

/// Star `K_{1,n-1}`: node 0 is the hub.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(0, v).expect("star edges are valid");
    }
    b.build()
}

/// Wheel `W_n`: a cycle on nodes `1..n` plus hub 0 adjacent to all of them.
///
/// Requires `n >= 4` for the outer cycle to exist; smaller `n` degrades to a
/// star.
pub fn wheel(n: usize) -> Graph {
    if n < 4 {
        return star(n);
    }
    let mut b = GraphBuilder::with_capacity(n, 2 * (n - 1));
    for v in 1..n {
        b.add_edge(0, v).expect("spokes are valid");
    }
    for v in 2..n {
        b.add_edge(v - 1, v).expect("rim edges are valid");
    }
    b.add_edge(n - 1, 1).expect("closing rim edge is valid");
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::with_capacity(a + b, a * b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("bipartite edges are valid");
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        for v in 1..4 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn path_tiny() {
        assert_eq!(path(0).len(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(2).num_edges(), 1);
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn cycle_small_degrades_to_path() {
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(7);
        assert_eq!(g.num_edges(), 21);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.min_degree(), 6);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
            assert!(g.has_edge(0, v));
        }
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 3);
        }
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn wheel_small_is_star() {
        assert_eq!(wheel(3), star(3));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_edges(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(0, 4));
    }
}
