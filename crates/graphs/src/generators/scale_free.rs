//! Scale-free graphs via Barabási–Albert preferential attachment.

use rand::Rng;

use super::rng_from_seed;
use crate::{Graph, GraphBuilder, GraphError};

/// Barabási–Albert preferential attachment: starting from a small clique of
/// `m + 1` nodes, each arriving node connects to `m` existing nodes chosen
/// with probability proportional to their degree.
///
/// Produces a heavy-tailed degree distribution (`P(deg = d) ∝ d^{-3}`), the
/// workload where own-degree knowledge (Thm 2.2) and global-Δ knowledge
/// (Thm 2.1) give very different `ℓmax` values for most nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter("m must be >= 1".into()));
    }
    if n < m + 1 {
        return Err(GraphError::InvalidParameter(format!("n={n} must be >= m+1={}", m + 1)));
    }
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, m * n);
    // `targets` holds one entry per half-edge; sampling uniformly from it is
    // exactly degree-proportional sampling.
    let mut targets: Vec<usize> = Vec::with_capacity(2 * m * n);
    let core = m + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            b.add_edge(u, v).expect("core clique edges are valid");
            targets.push(u);
            targets.push(v);
        }
    }
    let mut picked = Vec::with_capacity(m);
    for v in core..n {
        picked.clear();
        while picked.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(v, t).expect("attachment edges are valid");
            targets.push(v);
            targets.push(t);
        }
    }
    Ok(b.build())
}

/// Power-law degree sequence graph via the Chung–Lu model: edge `{u,v}` is
/// present with probability `min(1, w_u w_v / Σw)` where `w_v = c (v+1)^{-1/(γ-1)}`.
///
/// A lighter-weight alternative to [`barabasi_albert`] with a tunable
/// exponent `gamma > 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `gamma <= 2` or
/// `avg_degree <= 0`.
pub fn chung_lu_power_law(
    n: usize,
    gamma: f64,
    avg_degree: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if gamma <= 2.0 {
        return Err(GraphError::InvalidParameter(format!("gamma must be > 2, got {gamma}")));
    }
    if avg_degree <= 0.0 {
        return Err(GraphError::InvalidParameter("avg_degree must be positive".into()));
    }
    let mut rng = rng_from_seed(seed);
    let exponent = -1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 {
        let scale = avg_degree * n as f64 / sum;
        for w in &mut weights {
            *w *= scale;
        }
    }
    let total: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if p > 0.0 && rng.gen_bool(p) {
                b.add_edge(u, v).expect("chung-lu edges are valid");
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn ba_edge_count() {
        let (n, m) = (200, 3);
        let g = barabasi_albert(n, m, 5).unwrap();
        let core_edges = (m + 1) * m / 2;
        assert_eq!(g.num_edges(), core_edges + (n - m - 1) * m);
    }

    #[test]
    fn ba_connected_and_min_degree() {
        let g = barabasi_albert(150, 2, 8).unwrap();
        assert!(properties::is_connected(&g));
        assert!(g.min_degree() >= 2);
    }

    #[test]
    fn ba_heavy_tail() {
        // The max degree should greatly exceed the average degree.
        let g = barabasi_albert(1000, 2, 3).unwrap();
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
    }

    #[test]
    fn ba_rejects_bad_params() {
        assert!(barabasi_albert(10, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }

    #[test]
    fn ba_minimal_size() {
        let g = barabasi_albert(3, 2, 0).unwrap();
        assert_eq!(g.num_edges(), 3); // just the core clique
    }

    #[test]
    fn chung_lu_average_degree_ballpark() {
        let g = chung_lu_power_law(500, 2.5, 6.0, 9).unwrap();
        let avg = g.average_degree();
        assert!(avg > 2.0 && avg < 12.0, "avg degree {avg} far from target 6");
    }

    #[test]
    fn chung_lu_rejects_bad_params() {
        assert!(chung_lu_power_law(10, 2.0, 4.0, 0).is_err());
        assert!(chung_lu_power_law(10, 2.5, 0.0, 0).is_err());
    }
}
