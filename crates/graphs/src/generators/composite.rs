//! Structured compositions engineered for extreme degree heterogeneity.
//!
//! These families maximize the gap between `deg(v)` and `deg₂(v)` (paper §3),
//! which is exactly where the three knowledge regimes of the paper (global Δ,
//! own degree, 1-hop-neighborhood max degree) give different `ℓmax` values.

use crate::{Graph, GraphBuilder};

/// Star of cliques: `hubs` leaf-cliques of size `clique` attached to a
/// central hub (node 0). Each clique contributes one "port" node adjacent to
/// the hub. Total nodes: `1 + hubs * clique`.
///
/// The hub has degree `hubs`, port nodes have degree `clique`, and inner
/// clique nodes have degree `clique - 1` — three degree scales in one graph.
pub fn star_of_cliques(hubs: usize, clique: usize) -> Graph {
    let n = 1 + hubs * clique;
    let mut b = GraphBuilder::new(n);
    for h in 0..hubs {
        let base = 1 + h * clique;
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(base + i, base + j).expect("clique edges are valid");
            }
        }
        if clique > 0 {
            b.add_edge(0, base).expect("port edges are valid");
        }
    }
    b.build()
}

/// Chain of cliques: `count` cliques of size `clique` connected in a path by
/// single bridge edges. Total nodes: `count * clique`.
pub fn clique_chain(count: usize, clique: usize) -> Graph {
    let n = count * clique;
    let mut b = GraphBuilder::new(n);
    for c in 0..count {
        let base = c * clique;
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(base + i, base + j).expect("clique edges are valid");
            }
        }
        if c > 0 && clique > 0 {
            // Bridge from the last node of the previous clique to the first
            // node of this one.
            b.add_edge(base - 1, base).expect("bridge edges are valid");
        }
    }
    b.build()
}

/// Lollipop: a clique of `clique` nodes with a pendant path of `tail` nodes.
/// Total nodes: `clique + tail`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge(i, j).expect("clique edges are valid");
        }
    }
    let mut prev = clique.saturating_sub(1);
    for t in 0..tail {
        let v = clique + t;
        if v > 0 {
            b.add_edge(prev, v).expect("tail edges are valid");
        }
        prev = v;
    }
    b.build()
}

/// Hub-and-path "broom": a star hub (node 0) with `leaves` pendant leaves,
/// plus a path of `handle` nodes hanging off the hub — a single node whose
/// degree dwarfs everyone else's.
pub fn broom(leaves: usize, handle: usize) -> Graph {
    let n = 1 + leaves + handle;
    let mut b = GraphBuilder::new(n);
    for l in 0..leaves {
        b.add_edge(0, 1 + l).expect("leaf edges are valid");
    }
    let mut prev = 0usize;
    for h in 0..handle {
        let v = 1 + leaves + h;
        b.add_edge(prev, v).expect("handle edges are valid");
        prev = v;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn star_of_cliques_degrees() {
        let g = star_of_cliques(4, 5);
        assert_eq!(g.len(), 21);
        assert_eq!(g.degree(0), 4); // hub
        assert_eq!(g.degree(1), 5); // port: 4 clique mates + hub
        assert_eq!(g.degree(2), 4); // inner clique node
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn star_of_cliques_deg2_gap() {
        let g = star_of_cliques(10, 3);
        // Hub degree is 10; a port node sees the hub so deg2(port) = 10.
        assert_eq!(g.deg2(1), 10);
        // An inner clique node only sees the port (degree 3) and inner mates.
        assert_eq!(g.deg2(2), 3);
    }

    #[test]
    fn clique_chain_structure() {
        let g = clique_chain(3, 4);
        assert_eq!(g.len(), 12);
        assert!(properties::is_connected(&g));
        // 3 cliques of C(4,2)=6 edges + 2 bridges.
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn clique_chain_single() {
        let g = clique_chain(1, 5);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3);
        assert_eq!(g.len(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert!(properties::is_connected(&g));
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn broom_structure() {
        let g = broom(6, 3);
        assert_eq!(g.len(), 10);
        assert_eq!(g.degree(0), 7);
        assert!(properties::is_connected(&g));
        // Leaf deg2 sees the hub.
        assert_eq!(g.deg2(1), 7);
    }
}
