//! Lattice-like regular topologies: grids, tori, hypercubes.

use crate::{Graph, GraphBuilder};

/// Two-dimensional grid with `rows × cols` nodes; node `(r, c)` has id
/// `r * cols + c` and is adjacent to its 4-neighborhood.
///
/// # Example
///
/// ```
/// let g = graphs::generators::lattice::grid(3, 3);
/// assert_eq!(g.len(), 9);
/// assert_eq!(g.degree(4), 4); // center
/// assert_eq!(g.degree(0), 2); // corner
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("grid edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols).expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// Two-dimensional torus (grid with wraparound); 4-regular when both sides
/// are at least 3.
pub fn torus(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if cols > 1 {
                let right = r * cols + (c + 1) % cols;
                if v != right {
                    b.add_edge(v, right).expect("torus edges are valid");
                }
            }
            if rows > 1 {
                let down = ((r + 1) % rows) * cols + c;
                if v != down {
                    b.add_edge(v, down).expect("torus edges are valid");
                }
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes; node ids are bit
/// vectors, nodes adjacent iff they differ in one bit.
///
/// # Panics
///
/// Panics if `d > 30` (size would overflow practical memory).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 30, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if v < u {
                b.add_edge(v, u).expect("hypercube edges are valid");
            }
        }
    }
    b.build()
}

/// King-move grid: the 8-neighborhood analogue of [`grid`], a denser
/// bounded-degree planar-ish topology.
pub fn king_grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("king edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols).expect("king edges are valid");
                if c + 1 < cols {
                    b.add_edge(v, v + cols + 1).expect("king edges are valid");
                }
                if c > 0 {
                    b.add_edge(v, v + cols - 1).expect("king edges are valid");
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) + cols*(rows-1)
        let g = grid(4, 5);
        assert_eq!(g.num_edges(), 4 * 4 + 5 * 3);
    }

    #[test]
    fn grid_degenerate() {
        assert_eq!(grid(1, 5), crate::generators::classic::path(5));
        assert_eq!(grid(0, 5).len(), 0);
    }

    #[test]
    fn torus_is_four_regular() {
        let g = torus(4, 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.num_edges(), 2 * 20);
    }

    #[test]
    fn torus_small_sides() {
        // 2-wide torus would create doubled edges; they merge, so degree < 4.
        let g = torus(2, 4);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn hypercube_regular() {
        let g = hypercube(4);
        assert_eq!(g.len(), 16);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0b0000, 0b0100));
        assert!(!g.has_edge(0b0000, 0b0110));
    }

    #[test]
    fn hypercube_zero_dim() {
        let g = hypercube(0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn king_grid_center_degree() {
        let g = king_grid(3, 3);
        assert_eq!(g.degree(4), 8);
        assert_eq!(g.degree(0), 3);
    }
}
