//! Maximal-independent-set verification and sequential reference algorithms.
//!
//! Every distributed algorithm in this workspace is validated against these
//! definitions: a set `I` is *independent* if no two members are adjacent,
//! and *maximal* if every non-member has a member neighbor.

use rand::seq::SliceRandom;

use crate::{Graph, NodeId};

/// `true` if no two nodes of `set` are adjacent.
///
/// `set` is a membership bitmap of length `g.len()`.
///
/// # Panics
///
/// Panics if `set.len() != g.len()`.
pub fn is_independent_set(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(set.len(), g.len(), "membership bitmap must cover every node");
    for v in g.nodes() {
        if !set[v] {
            continue;
        }
        for &u in g.neighbors(v) {
            if set[u as usize] {
                return false;
            }
        }
    }
    true
}

/// `true` if every node outside `set` has at least one neighbor inside it
/// (the domination half of maximality).
///
/// # Panics
///
/// Panics if `set.len() != g.len()`.
pub fn is_dominating_set(g: &Graph, set: &[bool]) -> bool {
    assert_eq!(set.len(), g.len(), "membership bitmap must cover every node");
    for v in g.nodes() {
        if set[v] {
            continue;
        }
        if !g.neighbors(v).iter().any(|&u| set[u as usize]) {
            return false;
        }
    }
    true
}

/// `true` if `set` is a maximal independent set: independent and dominating.
///
/// # Example
///
/// ```
/// use graphs::{generators::classic, mis};
///
/// let g = classic::path(4);
/// assert!(mis::is_maximal_independent_set(&g, &[true, false, true, false]));
/// assert!(!mis::is_maximal_independent_set(&g, &[true, false, false, false]));
/// assert!(!mis::is_maximal_independent_set(&g, &[true, true, false, true]));
/// ```
pub fn is_maximal_independent_set(g: &Graph, set: &[bool]) -> bool {
    is_independent_set(g, set) && is_dominating_set(g, set)
}

/// A specific witness of why a set fails to be an MIS — for actionable
/// test-failure and debugging output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisViolation {
    /// Two adjacent members (independence violated).
    AdjacentMembers(NodeId, NodeId),
    /// A non-member with no member neighbor (maximality violated).
    Undominated(NodeId),
}

impl std::fmt::Display for MisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MisViolation::AdjacentMembers(u, v) => {
                write!(f, "adjacent members {u} and {v} violate independence")
            }
            MisViolation::Undominated(v) => {
                write!(f, "vertex {v} is neither a member nor adjacent to one")
            }
        }
    }
}

/// Returns a witness of the first violation found, or `None` if `set` is a
/// maximal independent set. The deterministic scan order (independence
/// first, lowest ids first) makes failures reproducible.
///
/// # Panics
///
/// Panics if `set.len() != g.len()`.
///
/// # Example
///
/// ```
/// use graphs::{generators::classic, mis};
///
/// let g = classic::path(3);
/// assert_eq!(mis::explain_violation(&g, &[false, true, false]), None);
/// assert_eq!(
///     mis::explain_violation(&g, &[true, true, false]),
///     Some(mis::MisViolation::AdjacentMembers(0, 1))
/// );
/// assert_eq!(
///     mis::explain_violation(&g, &[true, false, false]),
///     Some(mis::MisViolation::Undominated(2))
/// );
/// ```
pub fn explain_violation(g: &Graph, set: &[bool]) -> Option<MisViolation> {
    assert_eq!(set.len(), g.len(), "membership bitmap must cover every node");
    for v in g.nodes() {
        if set[v] {
            for &u in g.neighbors(v) {
                if set[u as usize] && v < u as usize {
                    return Some(MisViolation::AdjacentMembers(v, u as usize));
                }
            }
        }
    }
    for v in g.nodes() {
        if !set[v] && !g.neighbors(v).iter().any(|&u| set[u as usize]) {
            return Some(MisViolation::Undominated(v));
        }
    }
    None
}

/// Greedy MIS in node-id order: the deterministic ground-truth reference.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    greedy_mis_in_order(g, g.nodes())
}

/// Greedy MIS scanning nodes in a caller-provided order.
///
/// Every permutation yields *some* MIS, so this doubles as a generator of
/// diverse valid answers for differential testing.
pub fn greedy_mis_in_order<I>(g: &Graph, order: I) -> Vec<bool>
where
    I: IntoIterator<Item = NodeId>,
{
    let mut in_set = vec![false; g.len()];
    let mut blocked = vec![false; g.len()];
    for v in order {
        if !blocked[v] {
            in_set[v] = true;
            blocked[v] = true;
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    in_set
}

/// Greedy MIS over a uniformly random node permutation.
pub fn random_greedy_mis(g: &Graph, seed: u64) -> Vec<bool> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    let mut rng = crate::generators::rng_from_seed(seed);
    order.shuffle(&mut rng);
    greedy_mis_in_order(g, order)
}

/// Converts a membership bitmap into the sorted list of member node ids.
pub fn members(set: &[bool]) -> Vec<NodeId> {
    set.iter().enumerate().filter_map(|(v, &m)| m.then_some(v)).collect()
}

/// Number of members in a bitmap.
pub fn size(set: &[bool]) -> usize {
    set.iter().filter(|&&m| m).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, random};

    #[test]
    fn empty_graph_empty_set_is_mis() {
        let g = Graph::empty(0);
        assert!(is_maximal_independent_set(&g, &[]));
    }

    #[test]
    fn isolated_nodes_must_all_be_in() {
        let g = Graph::empty(3);
        assert!(is_maximal_independent_set(&g, &[true, true, true]));
        assert!(!is_maximal_independent_set(&g, &[true, true, false]));
    }

    #[test]
    fn path_mis_cases() {
        let g = classic::path(5);
        assert!(is_maximal_independent_set(&g, &[true, false, true, false, true]));
        assert!(is_maximal_independent_set(&g, &[false, true, false, true, false]));
        // Not independent:
        assert!(!is_maximal_independent_set(&g, &[true, true, false, true, false]));
        // Not maximal (node 4 undominated):
        assert!(!is_maximal_independent_set(&g, &[true, false, true, false, false]));
    }

    #[test]
    fn greedy_is_mis_on_families() {
        for g in [
            classic::path(17),
            classic::cycle(12),
            classic::complete(9),
            classic::star(20),
            random::gnp(80, 0.1, 3),
        ] {
            let set = greedy_mis(&g);
            assert!(is_maximal_independent_set(&g, &set));
        }
    }

    #[test]
    fn greedy_on_complete_graph_picks_one() {
        let set = greedy_mis(&classic::complete(10));
        assert_eq!(size(&set), 1);
    }

    #[test]
    fn greedy_on_star_order_matters() {
        let g = classic::star(6);
        // Hub first: MIS = {hub}.
        let hub_first = greedy_mis(&g);
        assert_eq!(members(&hub_first), vec![0]);
        // Leaves first: MIS = all leaves.
        let leaves_first = greedy_mis_in_order(&g, [1, 2, 3, 4, 5, 0]);
        assert_eq!(size(&leaves_first), 5);
        assert!(is_maximal_independent_set(&g, &leaves_first));
    }

    #[test]
    fn random_greedy_valid_many_seeds() {
        let g = random::gnp(60, 0.15, 1);
        for seed in 0..10 {
            let set = random_greedy_mis(&g, seed);
            assert!(is_maximal_independent_set(&g, &set), "seed {seed}");
        }
    }

    #[test]
    fn members_and_size() {
        let set = [false, true, true, false, true];
        assert_eq!(members(&set), vec![1, 2, 4]);
        assert_eq!(size(&set), 3);
    }

    #[test]
    fn explain_violation_agrees_with_checker() {
        let g = random::gnp(60, 0.1, 8);
        for seed in 0..20 {
            // Random bitmaps: explanation is None iff the checker accepts.
            let mut rng = crate::generators::rng_from_seed(seed);
            let set: Vec<bool> = (0..60).map(|_| rand::Rng::gen_bool(&mut rng, 0.3)).collect();
            let explained = explain_violation(&g, &set);
            assert_eq!(explained.is_none(), is_maximal_independent_set(&g, &set));
            if let Some(v) = explained {
                assert!(!v.to_string().is_empty());
            }
        }
    }

    #[test]
    fn explain_violation_on_valid_mis_is_none() {
        let g = classic::star(8);
        assert_eq!(explain_violation(&g, &greedy_mis(&g)), None);
    }

    #[test]
    #[should_panic(expected = "membership bitmap")]
    fn wrong_length_bitmap_panics() {
        let g = classic::path(3);
        is_independent_set(&g, &[true, false]);
    }
}
