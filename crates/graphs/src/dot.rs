//! Graphviz DOT export, with optional MIS highlighting — for inspecting
//! small workloads and debugging algorithm behavior visually.

use std::io::Write;

use crate::Graph;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotStyle {
    /// Nodes to highlight (e.g. an MIS bitmap); highlighted nodes are
    /// filled.
    pub highlight: Option<Vec<bool>>,
    /// Extra per-node labels (defaults to the node id).
    pub labels: Option<Vec<String>>,
}

impl DotStyle {
    /// Plain rendering.
    pub fn plain() -> DotStyle {
        DotStyle::default()
    }

    /// Highlights the members of `set` (e.g. a computed MIS).
    ///
    /// # Panics
    ///
    /// The length is checked at render time against the graph.
    pub fn with_highlight(mut self, set: Vec<bool>) -> DotStyle {
        self.highlight = Some(set);
        self
    }

    /// Attaches custom labels.
    pub fn with_labels(mut self, labels: Vec<String>) -> DotStyle {
        self.labels = Some(labels);
        self
    }
}

/// Writes `g` as an undirected Graphviz graph.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Panics
///
/// Panics if a style vector's length differs from `g.len()`.
pub fn write_dot<W: Write>(g: &Graph, style: &DotStyle, mut w: W) -> std::io::Result<()> {
    if let Some(h) = &style.highlight {
        assert_eq!(h.len(), g.len(), "highlight bitmap must cover every node");
    }
    if let Some(l) = &style.labels {
        assert_eq!(l.len(), g.len(), "labels must cover every node");
    }
    writeln!(w, "graph beeping_mis {{")?;
    writeln!(w, "  node [shape=circle, fontsize=10];")?;
    for v in g.nodes() {
        let mut attrs: Vec<String> = Vec::new();
        if let Some(labels) = &style.labels {
            attrs.push(format!("label=\"{}\"", escape(&labels[v])));
        }
        if style.highlight.as_ref().is_some_and(|h| h[v]) {
            attrs.push("style=filled".into());
            attrs.push("fillcolor=black".into());
            attrs.push("fontcolor=white".into());
        }
        if attrs.is_empty() {
            writeln!(w, "  n{v};")?;
        } else {
            writeln!(w, "  n{v} [{}];", attrs.join(", "))?;
        }
    }
    for (u, v) in g.edges() {
        writeln!(w, "  n{u} -- n{v};")?;
    }
    writeln!(w, "}}")
}

/// Renders `g` to a DOT string.
pub fn to_dot(g: &Graph, style: &DotStyle) -> String {
    let mut buf = Vec::new();
    write_dot(g, style, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("DOT output is valid UTF-8")
}

/// Convenience: graph with an MIS highlighted.
pub fn mis_to_dot(g: &Graph, mis: &[bool]) -> String {
    to_dot(g, &DotStyle::plain().with_highlight(mis.to_vec()))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Returns per-node levels as DOT labels `"id:ℓ"` — used by debugging
/// sessions to render a configuration snapshot.
pub fn level_labels<L: std::fmt::Display>(levels: &[L]) -> Vec<String> {
    levels.iter().enumerate().map(|(v, l)| format!("{v}:{l}")).collect()
}

/// The IDs referenced by a DOT body (smoke check used in tests).
#[cfg(test)]
fn count_edges_in_dot(dot: &str) -> usize {
    dot.lines().filter(|l| l.contains("--")).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn plain_dot_structure() {
        let g = classic::path(3);
        let dot = to_dot(&g, &DotStyle::plain());
        assert!(dot.starts_with("graph beeping_mis {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(count_edges_in_dot(&dot), 2);
        assert!(dot.contains("n0"));
        assert!(dot.contains("n2"));
    }

    #[test]
    fn highlight_fills_members() {
        let g = classic::path(3);
        let dot = mis_to_dot(&g, &[true, false, true]);
        let filled = dot.lines().filter(|l| l.contains("style=filled")).count();
        assert_eq!(filled, 2);
    }

    #[test]
    fn labels_are_escaped() {
        let g = classic::path(2);
        let style = DotStyle::plain().with_labels(vec!["a\"b".into(), "c\\d".into()]);
        let dot = to_dot(&g, &style);
        assert!(dot.contains("a\\\"b"));
        assert!(dot.contains("c\\\\d"));
    }

    #[test]
    fn level_labels_format() {
        assert_eq!(level_labels(&[-3, 5]), vec!["0:-3".to_string(), "1:5".to_string()]);
    }

    #[test]
    #[should_panic(expected = "highlight bitmap")]
    fn wrong_highlight_length_panics() {
        let g = classic::path(3);
        let _ = mis_to_dot(&g, &[true]);
    }

    #[test]
    fn empty_graph_renders() {
        let dot = to_dot(&Graph::empty(0), &DotStyle::plain());
        assert!(dot.contains("graph beeping_mis"));
    }
}
