//! Mobility models over geometric deployments: the dynamic-topology
//! substrate.
//!
//! The beeping model was introduced for wireless/ad-hoc networks whose
//! topology *drifts* (Cornejo–Haeupler–Kuhn), yet a static geometric graph
//! freezes the deployment at time zero. This module animates the point
//! cloud behind [`crate::generators::geometric`]: a [`Motion`] holds the
//! node positions plus per-node mobility state, and each [`Motion::step`]
//! moves every node one round, recomputes the radius graph and returns the
//! batched [`EdgeDiff`] against the previous round — the input to
//! [`Graph::apply_edge_diff`].
//!
//! Two classic models are provided:
//!
//! - [`MotionModel::RandomWaypoint`]: each node walks toward a uniformly
//!   drawn waypoint at constant speed, pauses on arrival, then draws the
//!   next waypoint (Johnson–Maltz). The fleet mixes globally.
//! - [`MotionModel::Drift`]: each node follows a heading that random-walks
//!   by a bounded turn per round and reflects off the unit-square walls — a
//!   correlated local wander where neighborhoods change smoothly.
//!
//! Determinism: all randomness is drawn from the single `Pcg64Mcg` the
//! caller passes in (the driver derives it from a dedicated `aux_rng`
//! purpose stream), draws happen in node order, and the movement
//! arithmetic is plain IEEE-754 evaluated in a fixed order — the same
//! seed replays the same trajectory bit for bit, which is what lets
//! supervised runs snapshot and resume a moving graph mid-flight.

use rand::Rng;
use rand_pcg::Pcg64Mcg;

use crate::generators::geometric::geometric_from_points;
use crate::{Graph, GraphError, NodeId};

/// How nodes move, per round, inside the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionModel {
    /// Walk toward a uniform waypoint at `speed` per round; on arrival,
    /// pause `pause` rounds, then draw the next waypoint.
    RandomWaypoint {
        /// Distance travelled per round (unit-square units).
        speed: f64,
        /// Rounds spent stationary after reaching a waypoint.
        pause: u64,
    },
    /// Move `speed` per round along a heading that random-walks by a
    /// uniform perturbation in `[-turn, turn]` radians each round,
    /// reflecting off the unit-square walls.
    Drift {
        /// Distance travelled per round (unit-square units).
        speed: f64,
        /// Maximum heading change per round, in radians.
        turn: f64,
    },
}

impl MotionModel {
    /// The per-round travel distance of the model.
    pub fn speed(&self) -> f64 {
        match *self {
            MotionModel::RandomWaypoint { speed, .. } | MotionModel::Drift { speed, .. } => speed,
        }
    }

    /// Short label for tables and certificates (`"rwp"` / `"drift"`).
    pub fn label(&self) -> &'static str {
        match self {
            MotionModel::RandomWaypoint { .. } => "rwp",
            MotionModel::Drift { .. } => "drift",
        }
    }

    fn validate(&self) -> Result<(), GraphError> {
        let speed = self.speed();
        if !(0.0..=1.0).contains(&speed) {
            return Err(GraphError::InvalidParameter(format!(
                "motion speed must be in [0, 1], got {speed}"
            )));
        }
        if let MotionModel::Drift { turn, .. } = *self {
            if !turn.is_finite() || turn < 0.0 {
                return Err(GraphError::InvalidParameter(format!(
                    "drift turn must be finite and non-negative, got {turn}"
                )));
            }
        }
        Ok(())
    }
}

/// A batch of undirected edge changes between two consecutive rounds of a
/// moving deployment; each edge appears once as `(u, v)` with `u < v`, the
/// shape [`Graph::apply_edge_diff`] consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDiff {
    /// Edges present now but not in the previous round.
    pub added: Vec<(NodeId, NodeId)>,
    /// Edges present in the previous round but not now.
    pub removed: Vec<(NodeId, NodeId)>,
}

impl EdgeDiff {
    /// `true` when the topology did not change.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Computes the batched [`EdgeDiff`] from `old` to `new` (same node count)
/// by a per-node sorted-adjacency merge, `O(n + m)`.
///
/// # Panics
///
/// Panics if the two graphs have different node counts.
pub fn diff_graphs(old: &Graph, new: &Graph) -> EdgeDiff {
    assert_eq!(old.len(), new.len(), "diff_graphs requires equal node counts");
    let mut diff = EdgeDiff::default();
    for u in 0..old.len() {
        let (a, b) = (old.neighbors(u), new.neighbors(u));
        let (mut ai, mut bi) = (0usize, 0usize);
        loop {
            match (a.get(ai), b.get(bi)) {
                (Some(&x), Some(&y)) if x == y => {
                    ai += 1;
                    bi += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    ai += 1;
                    if u < x as usize {
                        diff.removed.push((u, x as usize));
                    }
                }
                (Some(_), Some(&y)) => {
                    bi += 1;
                    if u < y as usize {
                        diff.added.push((u, y as usize));
                    }
                }
                (Some(&x), None) => {
                    ai += 1;
                    if u < x as usize {
                        diff.removed.push((u, x as usize));
                    }
                }
                (None, Some(&y)) => {
                    bi += 1;
                    if u < y as usize {
                        diff.added.push((u, y as usize));
                    }
                }
                (None, None) => break,
            }
        }
    }
    diff
}

/// A moving geometric deployment: node positions, per-node mobility state
/// and the current radius graph, advanced one synchronous round at a time
/// by [`Motion::step`].
#[derive(Debug, Clone)]
pub struct Motion {
    model: MotionModel,
    radius: f64,
    positions: Vec<(f64, f64)>,
    /// Random-waypoint targets (empty under [`MotionModel::Drift`]).
    waypoints: Vec<(f64, f64)>,
    /// Remaining pause rounds per node (empty under [`MotionModel::Drift`]).
    pauses: Vec<u64>,
    /// Headings in radians (empty under [`MotionModel::RandomWaypoint`]).
    headings: Vec<f64>,
    graph: Graph,
}

impl Motion {
    /// Starts a mobility process over `points` (unit-square coordinates,
    /// e.g. from [`crate::generators::geometric::random_points`]) with
    /// connection `radius`. Initial waypoints/headings are drawn from
    /// `rng` in node order (two `f64` per node for random waypoint, one
    /// for drift).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] if the radius is not finite and
    /// non-negative, the model parameters are out of range, or a point
    /// lies outside the unit square.
    pub fn new(
        points: Vec<(f64, f64)>,
        radius: f64,
        model: MotionModel,
        rng: &mut Pcg64Mcg,
    ) -> Result<Motion, GraphError> {
        model.validate()?;
        if !radius.is_finite() || radius < 0.0 {
            return Err(GraphError::InvalidParameter(format!(
                "motion radius must be finite and non-negative, got {radius}"
            )));
        }
        for (v, &(x, y)) in points.iter().enumerate() {
            if !(0.0..=1.0).contains(&x) || !(0.0..=1.0).contains(&y) {
                return Err(GraphError::InvalidParameter(format!(
                    "node {v} position ({x}, {y}) is outside the unit square"
                )));
            }
        }
        let n = points.len();
        let (mut waypoints, mut headings) = (Vec::new(), Vec::new());
        let mut pauses = Vec::new();
        match model {
            MotionModel::RandomWaypoint { .. } => {
                waypoints = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
                pauses = vec![0u64; n];
            }
            MotionModel::Drift { .. } => {
                headings = (0..n).map(|_| rng.gen::<f64>() * 2.0 * std::f64::consts::PI).collect();
            }
        }
        let graph = geometric_from_points(&points, radius);
        Ok(Motion { model, radius, positions: points, waypoints, pauses, headings, graph })
    }

    /// Reassembles a mobility process from externally held parts — the
    /// inverse of the accessor set, used by durable-snapshot codecs to
    /// resume a moving graph. The radius graph is recomputed from the
    /// positions (it is derived state, never serialized).
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] if the parameters are out of range
    /// or the per-node vectors do not match the model: random waypoint
    /// needs `waypoints` and `pauses` covering every node (and no
    /// `headings`); drift needs `headings` only.
    pub fn from_parts(
        model: MotionModel,
        radius: f64,
        positions: Vec<(f64, f64)>,
        waypoints: Vec<(f64, f64)>,
        pauses: Vec<u64>,
        headings: Vec<f64>,
    ) -> Result<Motion, GraphError> {
        model.validate()?;
        if !radius.is_finite() || radius < 0.0 {
            return Err(GraphError::InvalidParameter(format!(
                "motion radius must be finite and non-negative, got {radius}"
            )));
        }
        let n = positions.len();
        let expect = |name: &str, len: usize, want: usize| -> Result<(), GraphError> {
            if len != want {
                return Err(GraphError::InvalidParameter(format!(
                    "motion {name} covers {len} nodes but positions covers {want}"
                )));
            }
            Ok(())
        };
        match model {
            MotionModel::RandomWaypoint { .. } => {
                expect("waypoints", waypoints.len(), n)?;
                expect("pauses", pauses.len(), n)?;
                expect("headings", headings.len(), 0)?;
            }
            MotionModel::Drift { .. } => {
                expect("waypoints", waypoints.len(), 0)?;
                expect("pauses", pauses.len(), 0)?;
                expect("headings", headings.len(), n)?;
            }
        }
        let graph = geometric_from_points(&positions, radius);
        Ok(Motion { model, radius, positions, waypoints, pauses, headings, graph })
    }

    /// Number of nodes in the deployment.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` for an empty deployment.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The mobility model driving the deployment.
    pub fn model(&self) -> MotionModel {
        self.model
    }

    /// The connection radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Current node positions.
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// Current random-waypoint targets (empty under drift).
    pub fn waypoints(&self) -> &[(f64, f64)] {
        &self.waypoints
    }

    /// Remaining pause rounds per node (empty under drift).
    pub fn pauses(&self) -> &[u64] {
        &self.pauses
    }

    /// Current headings in radians (empty under random waypoint).
    pub fn headings(&self) -> &[f64] {
        &self.headings
    }

    /// The radius graph over the current positions.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Advances every node one round, recomputes the radius graph and
    /// returns the batched edge diff against the previous round. Randomness
    /// (new waypoints on arrival, heading perturbations) is drawn from
    /// `rng` in node order.
    pub fn step(&mut self, rng: &mut Pcg64Mcg) -> EdgeDiff {
        match self.model {
            MotionModel::RandomWaypoint { speed, pause } => {
                for v in 0..self.positions.len() {
                    if self.pauses[v] > 0 {
                        self.pauses[v] -= 1;
                        continue;
                    }
                    let (x, y) = self.positions[v];
                    let (wx, wy) = self.waypoints[v];
                    let (dx, dy) = (wx - x, wy - y);
                    let dist = (dx * dx + dy * dy).sqrt();
                    if dist <= speed {
                        // Arrived: snap to the waypoint, draw the next one.
                        self.positions[v] = (wx, wy);
                        self.waypoints[v] = (rng.gen::<f64>(), rng.gen::<f64>());
                        self.pauses[v] = pause;
                    } else {
                        self.positions[v] = (x + dx / dist * speed, y + dy / dist * speed);
                    }
                }
            }
            MotionModel::Drift { speed, turn } => {
                for v in 0..self.positions.len() {
                    // One draw per node per round regardless of parameters,
                    // so the stream layout is independent of `turn`.
                    let delta = rng.gen::<f64>() * 2.0 * turn - turn;
                    let mut heading = self.headings[v] + delta;
                    let (mut x, mut y) = self.positions[v];
                    x += speed * heading.cos();
                    y += speed * heading.sin();
                    if x < 0.0 {
                        x = -x;
                        heading = std::f64::consts::PI - heading;
                    } else if x > 1.0 {
                        x = 2.0 - x;
                        heading = std::f64::consts::PI - heading;
                    }
                    if y < 0.0 {
                        y = -y;
                        heading = -heading;
                    } else if y > 1.0 {
                        y = 2.0 - y;
                        heading = -heading;
                    }
                    // A single reflection covers speed ≤ 1; clamp guards the
                    // corner where both reflections land marginally outside.
                    self.positions[v] = (x.clamp(0.0, 1.0), y.clamp(0.0, 1.0));
                    self.headings[v] = heading;
                }
            }
        }
        let new_graph = geometric_from_points(&self.positions, self.radius);
        let diff = diff_graphs(&self.graph, &new_graph);
        self.graph = new_graph;
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::geometric::{radius_for_expected_degree, random_points};

    fn rng(seed: u64) -> Pcg64Mcg {
        crate::generators::rng_from_seed(seed)
    }

    fn rwp(speed: f64) -> MotionModel {
        MotionModel::RandomWaypoint { speed, pause: 2 }
    }

    #[test]
    fn deterministic_replay() {
        let points = random_points(60, 9);
        let r = radius_for_expected_degree(60, 6.0);
        let mut a = Motion::new(points.clone(), r, rwp(0.03), &mut rng(1)).unwrap();
        let mut b = Motion::new(points, r, rwp(0.03), &mut rng(1)).unwrap();
        for _ in 0..50 {
            assert_eq!(a.step(&mut rng(0)).is_empty(), b.step(&mut rng(0)).is_empty());
        }
        // Same seed, fresh rng per run: full trajectories must agree.
        let points = random_points(60, 9);
        let (mut r1, mut r2) = (rng(7), rng(7));
        let mut a = Motion::new(points.clone(), r, rwp(0.03), &mut r1).unwrap();
        let mut b = Motion::new(points, r, rwp(0.03), &mut r2).unwrap();
        for _ in 0..50 {
            assert_eq!(a.step(&mut r1), b.step(&mut r2));
            assert_eq!(a.positions(), b.positions());
            assert_eq!(a.graph(), b.graph());
        }
    }

    #[test]
    fn zero_speed_is_static() {
        let points = random_points(40, 3);
        let r = radius_for_expected_degree(40, 5.0);
        let mut m = Motion::new(points.clone(), r, rwp(0.0), &mut rng(2)).unwrap();
        let g0 = m.graph().clone();
        for _ in 0..20 {
            assert!(m.step(&mut rng(0)).is_empty());
        }
        assert_eq!(*m.graph(), g0);
        assert_eq!(m.positions(), &points[..]);
    }

    #[test]
    fn diff_applies_cleanly() {
        // Applying each round's diff to a copy of the previous graph must
        // reproduce the recomputed radius graph exactly.
        let points = random_points(50, 11);
        let r = radius_for_expected_degree(50, 6.0);
        let mut stream = rng(4);
        let mut m =
            Motion::new(points, r, MotionModel::Drift { speed: 0.05, turn: 0.7 }, &mut stream)
                .unwrap();
        let mut tracked = m.graph().clone();
        for _ in 0..40 {
            let diff = m.step(&mut stream);
            let (ins, del) = tracked.apply_edge_diff(&diff.added, &diff.removed).unwrap();
            assert_eq!(ins, diff.added.len());
            assert_eq!(del, diff.removed.len());
            assert_eq!(tracked, *m.graph());
        }
    }

    #[test]
    fn positions_stay_in_unit_square() {
        let points = random_points(30, 5);
        let mut stream = rng(6);
        let mut m =
            Motion::new(points, 0.2, MotionModel::Drift { speed: 0.4, turn: 3.0 }, &mut stream)
                .unwrap();
        for _ in 0..200 {
            m.step(&mut stream);
            for &(x, y) in m.positions() {
                assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y), "({x}, {y})");
            }
        }
    }

    #[test]
    fn waypoint_walk_makes_progress() {
        let points = vec![(0.0, 0.0); 8];
        let mut stream = rng(8);
        let mut m = Motion::new(points, 0.1, rwp(0.02), &mut stream).unwrap();
        for _ in 0..100 {
            m.step(&mut stream);
        }
        // After 100 rounds at speed 0.02 essentially every node has left the
        // origin corner.
        assert!(m.positions().iter().any(|&(x, y)| x > 0.05 || y > 0.05));
    }

    #[test]
    fn from_parts_round_trips() {
        let points = random_points(25, 13);
        let r = radius_for_expected_degree(25, 4.0);
        let mut stream = rng(10);
        let mut m = Motion::new(points, r, rwp(0.05), &mut stream).unwrap();
        for _ in 0..10 {
            m.step(&mut stream);
        }
        let rebuilt = Motion::from_parts(
            m.model(),
            m.radius(),
            m.positions().to_vec(),
            m.waypoints().to_vec(),
            m.pauses().to_vec(),
            m.headings().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.graph(), m.graph());
        // Continuations agree bit for bit.
        let mut cont = rng(99);
        let mut cont2 = cont.clone();
        let mut m2 = rebuilt;
        for _ in 0..10 {
            assert_eq!(m.step(&mut cont), m2.step(&mut cont2));
        }
    }

    #[test]
    fn from_parts_rejects_mismatched_vectors() {
        let err = Motion::from_parts(rwp(0.1), 0.1, vec![(0.5, 0.5); 4], vec![], vec![], vec![]);
        assert!(matches!(err, Err(GraphError::InvalidParameter(_))));
        let err = Motion::from_parts(
            MotionModel::Drift { speed: 0.1, turn: 0.1 },
            0.1,
            vec![(0.5, 0.5); 4],
            vec![],
            vec![],
            vec![0.0; 3],
        );
        assert!(matches!(err, Err(GraphError::InvalidParameter(_))));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut r = rng(1);
        assert!(Motion::new(vec![(0.5, 0.5)], -0.1, rwp(0.1), &mut r).is_err());
        assert!(Motion::new(vec![(0.5, 0.5)], 0.1, rwp(1.5), &mut r).is_err());
        assert!(Motion::new(vec![(1.5, 0.5)], 0.1, rwp(0.1), &mut r).is_err());
        assert!(Motion::new(
            vec![(0.5, 0.5)],
            0.1,
            MotionModel::Drift { speed: 0.1, turn: -1.0 },
            &mut r
        )
        .is_err());
    }

    #[test]
    fn diff_graphs_matches_edge_sets() {
        let old = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let new = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4), (0, 4)]).unwrap();
        let diff = diff_graphs(&old, &new);
        assert_eq!(diff.added, vec![(0, 4), (2, 3)]);
        assert_eq!(diff.removed, vec![(1, 2)]);
    }
}
