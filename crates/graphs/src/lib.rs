//! Graph substrate for beeping-model simulations.
//!
//! This crate provides the graph infrastructure underlying the
//! self-stabilizing MIS reproduction:
//!
//! - [`Graph`]: a compact, immutable undirected graph in CSR (compressed
//!   sparse row) form, the representation every simulator round iterates over;
//! - [`GraphBuilder`]: incremental construction with validation (no self
//!   loops, duplicate edges merged);
//! - [`generators`]: the workload families used by the experiments — classic
//!   topologies, lattices, random graphs, trees, scale-free and geometric
//!   (wireless-sensor-like) graphs;
//! - [`motion`]: mobility models (random waypoint, drift) that animate a
//!   geometric deployment and emit batched per-round edge diffs;
//! - [`properties`]: structural measurements (components, diameter,
//!   degeneracy, degree statistics) used to characterize workloads;
//! - [`dot`]: Graphviz export with MIS highlighting;
//! - [`mis`]: maximal-independent-set verification and sequential reference
//!   algorithms, the ground truth every distributed algorithm is checked
//!   against.
//!
//! # Example
//!
//! ```
//! use graphs::{generators, mis};
//!
//! let g = generators::random::gnp(200, 0.05, 42);
//! let set = mis::greedy_mis(&g);
//! assert!(mis::is_maximal_independent_set(&g, &set));
//! ```

pub mod builder;
pub mod dot;
pub mod edgelist;
pub mod generators;
pub mod graph;
pub mod mis;
pub mod motion;
pub mod properties;
pub mod shard;

pub use builder::GraphBuilder;
pub use graph::{CsrError, Graph, NodeId};
pub use shard::ShardPlan;

/// Errors produced while constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// A self loop `(v, v)` was supplied; the beeping model is defined on
    /// simple graphs.
    SelfLoop(usize),
    /// A parse error when reading an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A generator was called with parameters that define no graph
    /// (e.g. a negative probability or `k >= n` for a `k`-regular graph).
    InvalidParameter(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::SelfLoop(2),
            GraphError::Parse { line: 7, message: "bad token".into() },
            GraphError::InvalidParameter("p must be in [0,1]".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
