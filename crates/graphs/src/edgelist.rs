//! Plain-text edge-list serialization.
//!
//! Format: first non-comment line is `n`, then one `u v` pair per line.
//! Lines starting with `#` are comments. This is the interchange format the
//! experiment harness uses to persist workloads.

use std::io::{BufRead, Write};

use crate::{Graph, GraphBuilder, GraphError};

/// Writes `g` in edge-list format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# beeping-mis edge list: n then one edge per line")?;
    writeln!(w, "{}", g.len())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Serializes `g` to an edge-list string.
pub fn to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("edge list output is ASCII")
}

/// Reads a graph in edge-list format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input (missing node count,
/// non-numeric tokens, wrong arity) and the usual construction errors for
/// out-of-range endpoints or self loops.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<Graph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: line_no, message: format!("I/O error: {e}") })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match &mut builder {
            None => {
                let n: usize = trimmed.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("expected node count, got {trimmed:?}"),
                })?;
                builder = Some(GraphBuilder::new(n));
            }
            Some(b) => {
                let mut it = trimmed.split_whitespace();
                let (u, v) = match (it.next(), it.next(), it.next()) {
                    (Some(u), Some(v), None) => (u, v),
                    _ => {
                        return Err(GraphError::Parse {
                            line: line_no,
                            message: format!("expected `u v`, got {trimmed:?}"),
                        })
                    }
                };
                let u: usize = u.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("bad node id {u:?}"),
                })?;
                let v: usize = v.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("bad node id {v:?}"),
                })?;
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(builder
        .ok_or(GraphError::Parse { line: 0, message: "missing node count line".into() })?
        .build())
}

/// Parses a graph from an edge-list string.
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn from_str(s: &str) -> Result<Graph, GraphError> {
    read_edge_list(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, random};

    #[test]
    fn round_trip() {
        let g = random::gnp(40, 0.2, 9);
        let text = to_string(&g);
        let back = from_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn round_trip_empty() {
        let g = Graph::empty(5);
        assert_eq!(from_str(&to_string(&g)).unwrap(), g);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n3\n# edge next\n0 1\n\n1 2\n";
        let g = from_str(text).unwrap();
        assert_eq!(g, classic::path(3));
    }

    #[test]
    fn rejects_missing_count() {
        assert!(matches!(from_str("# only comments\n"), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(matches!(from_str("3\n0 x\n"), Err(GraphError::Parse { line: 2, .. })));
        assert!(matches!(from_str("x\n"), Err(GraphError::Parse { line: 1, .. })));
        assert!(matches!(from_str("3\n0 1 2\n"), Err(GraphError::Parse { line: 2, .. })));
    }

    #[test]
    fn rejects_out_of_range_edge() {
        assert!(matches!(from_str("2\n0 5\n"), Err(GraphError::NodeOutOfRange { node: 5, n: 2 })));
    }
}
