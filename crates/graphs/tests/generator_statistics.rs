//! Statistical validation of the random generators: the experiments'
//! conclusions are only as good as the workloads, so the distributional
//! claims of each family are verified with generous tolerance bands.

use graphs::generators::{geometric, random, scale_free, small_world, trees};
use graphs::properties;

#[test]
fn gnp_degree_distribution_is_binomial_like() {
    let n = 4000;
    let p = 8.0 / (n as f64 - 1.0);
    let g = random::gnp(n, p, 42);
    let mean_expected = p * (n as f64 - 1.0);
    let mean = g.average_degree();
    assert!((mean - mean_expected).abs() < 0.3, "mean degree {mean} vs expected {mean_expected}");
    // Binomial variance ≈ mean for small p.
    let var: f64 = g.nodes().map(|v| (g.degree(v) as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    assert!(
        (var - mean_expected).abs() < 0.25 * mean_expected,
        "variance {var} vs ≈ {mean_expected}"
    );
}

#[test]
fn ba_degree_tail_is_heavy() {
    // For BA, P(deg ≥ k) ~ k^{-2}: compare the counts at k and 2k — the
    // ratio should be ≈ 4, and certainly nowhere near the exponential decay
    // a G(n,p) of equal density shows.
    let n = 8000;
    let g = scale_free::barabasi_albert(n, 3, 7).unwrap();
    let count_ge = |k: usize| g.nodes().filter(|&v| g.degree(v) >= k).count() as f64;
    let ratio = count_ge(8) / count_ge(16).max(1.0);
    assert!(
        (2.0..12.0).contains(&ratio),
        "tail ratio {ratio} inconsistent with a power law (~4 expected)"
    );
    // The equal-density G(n,p) has essentially nobody at 4× the mean.
    let gnp = random::gnp(n, 6.0 / (n as f64 - 1.0), 7);
    let ba_high = count_ge(24);
    let gnp_high = gnp.nodes().filter(|&v| gnp.degree(v) >= 24).count();
    assert!(
        ba_high as usize > 10 * (gnp_high + 1),
        "BA must have a far heavier tail: ba {ba_high}, gnp {gnp_high}"
    );
}

#[test]
fn geometric_degree_matches_area_law() {
    let n = 5000;
    let target = 12.0;
    let g = geometric::random_geometric_expected_degree(n, target, 3);
    let mean = g.average_degree();
    // Boundary effects shave ~10–20%; accept a generous band.
    assert!(mean > 0.6 * target && mean < 1.1 * target, "mean degree {mean} vs target {target}");
    // Geometric graphs are strongly clustered (≈ 0.58 in theory for disks),
    // far above a degree-matched G(n,p).
    let cc = properties::average_clustering(&g);
    assert!(cc > 0.4, "geometric clustering {cc}");
}

#[test]
fn watts_strogatz_interpolates_clustering() {
    let c_lattice =
        properties::average_clustering(&small_world::watts_strogatz(400, 8, 0.0, 1).unwrap());
    let c_mid =
        properties::average_clustering(&small_world::watts_strogatz(400, 8, 0.3, 1).unwrap());
    let c_random =
        properties::average_clustering(&small_world::watts_strogatz(400, 8, 1.0, 1).unwrap());
    assert!(
        c_lattice > c_mid && c_mid > c_random,
        "clustering must decrease with β: {c_lattice:.3} > {c_mid:.3} > {c_random:.3}"
    );
    // The β = 0 ring lattice with k = 8 has clustering 0.643 exactly.
    assert!((c_lattice - 0.643).abs() < 0.02, "lattice clustering {c_lattice}");
}

#[test]
fn random_regular_has_no_degree_variance() {
    let g = random::random_regular(500, 6, 9).unwrap();
    assert_eq!(g.min_degree(), 6);
    assert_eq!(g.max_degree(), 6);
    // Random regular graphs are connected w.h.p. for d ≥ 3.
    assert!(properties::is_connected(&g));
}

#[test]
fn recursive_tree_depth_is_logarithmic() {
    // The expected depth of a random recursive tree is ~ ln n; the
    // eccentricity of the root stays well below any polynomial growth.
    let n = 4096;
    let g = trees::random_recursive_tree(n, 11);
    let depth = properties::eccentricity(&g, 0);
    assert!((6..=40).contains(&depth), "root depth {depth} should be Θ(log n) ≈ 8–25");
}

#[test]
fn prufer_trees_are_uniform_ish_over_shapes() {
    // Sanity: over many 4-node Prüfer trees, both shapes (path, star)
    // appear — the star (1 shape, 4 labelings) and paths (12 labelings),
    // so stars should be ≈ 1/4 of draws.
    let mut stars = 0;
    let trials = 400;
    for seed in 0..trials {
        let g = trees::random_prufer_tree(4, seed);
        if g.max_degree() == 3 {
            stars += 1;
        }
    }
    let frac = stars as f64 / trials as f64;
    assert!((0.15..0.35).contains(&frac), "star fraction {frac} should be ≈ 0.25");
}

#[test]
fn gnm_matches_gnp_statistics_at_same_density() {
    let n = 1000;
    let m = 4000;
    let gm = random::gnm(n, m, 5).unwrap();
    assert_eq!(gm.num_edges(), m);
    let gp = random::gnp(n, 2.0 * m as f64 / (n as f64 * (n as f64 - 1.0)), 5);
    // Same expected density: average degrees within 10%.
    let (a, b) = (gm.average_degree(), gp.average_degree());
    assert!((a - b).abs() / a < 0.1, "gnm {a} vs gnp {b}");
}

#[test]
fn chung_lu_respects_exponent_ordering() {
    // A smaller γ (heavier tail) concentrates more degree mass at the top.
    let flat = scale_free::chung_lu_power_law(2000, 3.5, 6.0, 3).unwrap();
    let heavy = scale_free::chung_lu_power_law(2000, 2.2, 6.0, 3).unwrap();
    assert!(
        heavy.max_degree() > flat.max_degree(),
        "heavy-tail max {} should exceed flat-tail max {}",
        heavy.max_degree(),
        flat.max_degree()
    );
}
