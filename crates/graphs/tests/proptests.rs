//! Property-based tests for the graph substrate.

use graphs::generators::{classic, geometric, random, scale_free, small_world, trees};
use graphs::{edgelist, mis, properties, Graph, GraphBuilder};
use proptest::prelude::*;

/// Strategy: an arbitrary simple graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..120).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn csr_adjacency_is_symmetric_sorted_dedup(g in arb_graph()) {
        for v in g.nodes() {
            let adj = g.neighbors(v);
            // Sorted and deduplicated.
            for w in adj.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            // Symmetric.
            for &u in adj {
                prop_assert!(g.neighbors(u as usize).contains(&(v as u32)));
            }
            // No self loops.
            prop_assert!(!adj.contains(&(v as u32)));
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
        prop_assert_eq!(sum, g.degree_sum());
    }

    #[test]
    fn edges_iterator_matches_has_edge(g in arb_graph()) {
        let mut count = 0;
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            count += 1;
        }
        prop_assert_eq!(count, g.num_edges());
    }

    #[test]
    fn deg2_bounds(g in arb_graph()) {
        let delta = g.max_degree();
        for v in g.nodes() {
            let d2 = g.deg2(v);
            prop_assert!(d2 >= g.degree(v));
            prop_assert!(d2 <= delta);
        }
    }

    #[test]
    fn edgelist_round_trip(g in arb_graph()) {
        let back = edgelist::from_str(&edgelist::to_string(&g)).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn greedy_mis_always_valid(g in arb_graph(), seed in 0u64..1000) {
        let set = mis::random_greedy_mis(&g, seed);
        prop_assert!(mis::is_maximal_independent_set(&g, &set));
    }

    #[test]
    fn greedy_mis_any_order_valid(g in arb_graph()) {
        let rev: Vec<_> = g.nodes().rev().collect();
        let set = mis::greedy_mis_in_order(&g, rev);
        prop_assert!(mis::is_maximal_independent_set(&g, &set));
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let (comp, count) = properties::connected_components(&g);
        prop_assert_eq!(comp.len(), g.len());
        for &c in &comp {
            prop_assert!(c < count);
        }
        // Adjacent nodes share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
    }

    #[test]
    fn degeneracy_at_most_max_degree(g in arb_graph()) {
        let (k, order) = properties::degeneracy(&g);
        prop_assert!(k <= g.max_degree());
        prop_assert_eq!(order.len(), g.len());
    }

    #[test]
    fn gnp_determinism(n in 2usize..60, seed in 0u64..50) {
        let g1 = random::gnp(n, 0.15, seed);
        let g2 = random::gnp(n, 0.15, seed);
        prop_assert_eq!(g1, g2);
    }

    #[test]
    fn gnm_has_exact_edges(n in 4usize..30, seed in 0u64..20) {
        let max = n * (n - 1) / 2;
        let m = max / 2;
        let g = random::gnm(n, m, seed).unwrap();
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn random_regular_is_regular(seed in 0u64..20, d in 1usize..5) {
        let n = 24;
        let g = random::random_regular(n, d, seed).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
    }

    #[test]
    fn trees_are_trees(n in 2usize..80, seed in 0u64..20) {
        for g in [trees::random_recursive_tree(n, seed), trees::random_prufer_tree(n, seed)] {
            prop_assert_eq!(g.num_edges(), n - 1);
            prop_assert!(properties::is_connected(&g));
        }
    }

    #[test]
    fn ba_graph_connected(n in 5usize..80, seed in 0u64..20) {
        let g = scale_free::barabasi_albert(n, 2, seed).unwrap();
        prop_assert!(properties::is_connected(&g));
    }

    #[test]
    fn ws_degree_sum_preserved(seed in 0u64..20, beta in 0.0f64..1.0) {
        let g = small_world::watts_strogatz(30, 4, beta, seed).unwrap();
        prop_assert_eq!(g.num_edges(), 30 * 4 / 2);
    }

    #[test]
    fn geometric_monotone_in_radius(seed in 0u64..20) {
        let small = geometric::random_geometric(60, 0.08, seed);
        let large = geometric::random_geometric(60, 0.2, seed);
        // Same points (same seed), bigger radius => superset of edges.
        for (u, v) in small.edges() {
            prop_assert!(large.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph()) {
        let keep: Vec<usize> = g.nodes().filter(|v| v % 2 == 0).collect();
        let (sub, order) = g.induced_subgraph(&keep);
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(order[a], order[b]));
        }
        // Every kept-pair edge appears.
        for (i, &u) in order.iter().enumerate() {
            for (j, &v) in order.iter().enumerate().skip(i + 1) {
                if g.has_edge(u, v) {
                    prop_assert!(sub.has_edge(i, j));
                }
            }
        }
    }

    #[test]
    fn classic_diameters(n in 3usize..30) {
        prop_assert_eq!(properties::diameter(&classic::path(n)), Some(n - 1));
        prop_assert_eq!(properties::diameter(&classic::cycle(n)), Some(n / 2));
        prop_assert_eq!(properties::diameter(&classic::complete(n)), Some(1));
    }
}
