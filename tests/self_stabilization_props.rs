//! Property-based integration tests of the paper's core invariants.

use beeping::Simulator;
use beeping_mis::prelude::*;
use graphs::{Graph, GraphBuilder};
use mis::levels::Level;
use mis::observer::Snapshot;
use mis::runner::initial_levels;
use proptest::prelude::*;

/// Strategy: an arbitrary simple graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..80).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

/// Strategy: raw (unclamped) initial levels for an n-node graph.
fn arb_raw_levels(n: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-100i64..100, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline self-stabilization property: from EVERY initial
    /// configuration, Algorithm 1 stabilizes to a valid MIS.
    #[test]
    fn alg1_stabilizes_from_arbitrary_configuration(
        g in arb_graph(),
        seed in 0u64..500,
        raw in proptest::collection::vec(-100i64..100, 28),
    ) {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let init = InitialLevels::Custom(raw[..g.len()].to_vec());
        let outcome = algo
            .run(&g, RunConfig::new(seed).with_init(init))
            .expect("within budget");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    /// Same property for Algorithm 2 (two channels).
    #[test]
    fn alg2_stabilizes_from_arbitrary_configuration(
        g in arb_graph(),
        seed in 0u64..500,
        raw in proptest::collection::vec(-100i64..100, 28),
    ) {
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let init = InitialLevels::Custom(raw[..g.len()].to_vec());
        let outcome = algo
            .run(&g, RunConfig::new(seed).with_init(init))
            .expect("within budget");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    /// Stable sets are monotone: S_t ⊆ S_{t+1} (paper §3). Run a fault-free
    /// execution and check every consecutive pair of rounds.
    #[test]
    fn stable_sets_are_monotone(g in arb_graph(), seed in 0u64..200) {
        let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);
        let lmax = algo.policy().lmax_values().to_vec();
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        let mut prev: Vec<bool> = Snapshot::new(&g, &lmax, sim.states()).stable_set().to_vec();
        for _ in 0..300 {
            sim.step();
            let snap = Snapshot::new(&g, &lmax, sim.states());
            let cur = snap.stable_set().to_vec();
            for v in g.nodes() {
                prop_assert!(!prev[v] || cur[v], "vertex {v} left the stable set");
            }
            if snap.is_stabilized() {
                break;
            }
            prev = cur;
        }
    }

    /// Lemma 3.1: after max_w ℓmax(w) rounds, every vertex has ℓ > 0 or
    /// μ > 0, forever after.
    #[test]
    fn lemma31_invariant_holds_after_burn_in(g in arb_graph(), seed in 0u64..200) {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = RunConfig::new(seed).with_init(InitialLevels::AllClaiming);
        let init = initial_levels(&algo, &config);
        let lmax = algo.policy().lmax_values().to_vec();
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        sim.run(algo.policy().max_lmax() as u64 + 1);
        for _ in 0..100 {
            sim.step();
            let snap = Snapshot::new(&g, &lmax, sim.states());
            for v in g.nodes() {
                prop_assert!(
                    snap.level(v) > 0 || snap.mu(v) > 0.0,
                    "Lemma 3.1 violated at vertex {v}: ℓ={} μ={}",
                    snap.level(v),
                    snap.mu(v)
                );
            }
        }
    }

    /// Once stabilized, the configuration is a fixpoint: absent faults, no
    /// level ever changes again.
    #[test]
    fn stabilized_configuration_is_fixpoint(g in arb_graph(), seed in 0u64..200) {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(seed)).expect("stabilizes");
        let mut sim = Simulator::new(&g, algo.clone(), outcome.levels.clone(), seed ^ 0xF00);
        sim.run(50);
        prop_assert_eq!(sim.states(), outcome.levels.as_slice());
    }

    /// Levels always remain inside the state space (the RAM invariant),
    /// whatever happens.
    #[test]
    fn levels_stay_in_state_space(g in arb_graph(), seed in 0u64..200, raw in arb_raw_levels(28)) {
        let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
        let config = RunConfig::new(seed).with_init(InitialLevels::Custom(raw[..g.len()].to_vec()));
        let init = initial_levels(&algo, &config);
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        for _ in 0..120 {
            sim.step();
            for v in g.nodes() {
                let l: Level = *sim.state(v);
                let lm = algo.policy().lmax(v);
                prop_assert!((-lm..=lm).contains(&l));
            }
        }
    }

    /// The MIS produced from two different seeds may differ, but both are
    /// valid — and the stable-MIS extraction agrees with independent
    /// re-verification against the definition.
    #[test]
    fn extraction_matches_definition(g in arb_graph(), seed in 0u64..100) {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(seed)).expect("stabilizes");
        for v in g.nodes() {
            let in_mis = outcome.levels[v] == -algo.policy().lmax(v)
                && g.neighbors(v)
                    .iter()
                    .all(|&u| outcome.levels[u as usize] == algo.policy().lmax(u as usize));
            prop_assert_eq!(outcome.mis[v], in_mis);
        }
    }

    /// Recovery from a mid-run fault always reaches a valid MIS again.
    #[test]
    fn recovery_is_universal(g in arb_graph(), seed in 0u64..100, frac in 0.05f64..1.0) {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let rec = mis::runner::run_recovery(
            &g,
            &algo,
            seed,
            beeping::faults::FaultTarget::RandomFraction(frac),
            1_000_000,
        )
        .expect("recovers");
        prop_assert!(graphs::mis::is_maximal_independent_set(&g, &rec.mis));
    }
}
