//! Tier-1 acceptance tests for Byzantine containment (`DESIGN.md`
//! "Byzantine faults and containment"): on every tested family and size, a
//! single stuck beeper or fair babbler disrupts at most its radius-2
//! neighborhood once the `O(ℓmax)` burn-in horizon has passed — the rest of
//! the network stabilizes and the run certifies `disruption_radius ≤ 2`.

use beeping_mis::prelude::*;
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::containment::{run_contained, ContainmentConfig};
use mis::theory::burn_in_horizon;

fn max_degree_node(g: &Graph) -> usize {
    g.nodes().max_by_key(|&v| g.neighbors(v).len()).unwrap_or(0)
}

fn families() -> Vec<GraphFamily> {
    vec![GraphFamily::Cycle, GraphFamily::Gnp { avg_degree: 8.0 }, GraphFamily::Regular { d: 4 }]
}

/// Asserts containment at radius ≤ 2 for one behavior on every family and
/// both acceptance sizes, with the Byzantine node at the maximum-degree
/// vertex (the placement hardest on a radius bound).
fn assert_contained(behavior: ByzantineBehavior<i32>, sim_seed: u64) {
    for n in [256usize, 1024] {
        for (i, family) in families().iter().enumerate() {
            let g = family.generate(n, 0x6000 + i as u64);
            let algo = mis::Algorithm1::new(&g, mis::LmaxPolicy::global_delta(&g));
            let site = max_degree_node(&g);
            let plan = ByzantinePlan::new().with_behavior(site, behavior.clone());
            let config = ContainmentConfig::new(sim_seed)
                .with_max_rounds(200_000)
                .with_radius(2)
                .with_burn_in(burn_in_horizon(algo.policy()));
            let outcome = run_contained(&g, &algo, &plan, &config);
            assert!(
                outcome.is_contained(),
                "{} not contained on {family} n={n}: final radius {} after {} rounds",
                behavior.label(),
                outcome.final_radius,
                outcome.rounds_run,
            );
            assert!(outcome.final_radius <= 2);
            assert!(outcome.contained_round.unwrap() >= burn_in_horizon(algo.policy()));
            assert!(!outcome.correct_mis[site], "the byzantine site is never certified");
        }
    }
}

#[test]
fn stuck_beeper_contained_within_radius_two() {
    assert_contained(ByzantineBehavior::StuckBeep, 11);
}

#[test]
fn babbler_contained_within_radius_two() {
    assert_contained(ByzantineBehavior::Babbler(0.5), 12);
}
