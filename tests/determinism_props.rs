//! Determinism regression properties (see DESIGN.md §"Determinism &
//! invariants"): for a fixed seed, every algorithm's execution — per-round
//! trace included — is bit-identical across runs, with and without channel
//! noise, and every graph generator is a pure function of its seed.
//!
//! These properties are what lint rule L1 enforces statically; this file is
//! the dynamic witness. The Watts–Strogatz case is a true regression: its
//! rewiring loop once iterated a `HashSet` to drive the RNG, so the same
//! seed produced different graphs.

use baselines::jeavons::JsxMis;
use baselines::{luby_mis, AfekStyleMis};
use beeping::channel::ChannelFault;
use beeping_mis::prelude::*;
use graphs::generators::{random, small_world};
use mis::adaptive::AdaptiveMis;
use proptest::prelude::*;

/// Byte-exact comparison via the full `Debug` representation, covering
/// every field of an outcome (trace, levels, MIS, round counts, history).
fn debug_repr<T: std::fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn algorithm1_runs_are_bit_identical(seed in 0u64..512, n in 8usize..28) {
        let g = random::gnp(n, 0.15, seed ^ 0xA5A5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let run = || {
            algo.run(
                &g,
                RunConfig::new(seed).with_init(InitialLevels::Random).with_level_recording(),
            )
        };
        prop_assert_eq!(debug_repr(&run()), debug_repr(&run()));
    }

    #[test]
    fn algorithm2_runs_are_bit_identical(seed in 0u64..512, n in 8usize..28) {
        let g = random::gnp(n, 0.15, seed ^ 0x5A5A);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let run = || {
            algo.run(
                &g,
                RunConfig::new(seed).with_init(InitialLevels::Random).with_level_recording(),
            )
        };
        prop_assert_eq!(debug_repr(&run()), debug_repr(&run()));
    }

    #[test]
    fn algorithm1_trace_is_bit_identical_under_noise(seed in 0u64..512, n in 8usize..24) {
        let g = random::gnp(n, 0.2, seed);
        let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
        let run = |channel: ChannelFault| {
            let mut sim = Simulator::new(&g, algo.clone(), vec![1; n], seed).with_channel(channel);
            let reports: Vec<RoundReport> = (0..120).map(|_| sim.step()).collect();
            (reports, sim.into_states())
        };
        let noise = ChannelFault::reliable().with_drop(0.2).with_spurious(0.02);
        prop_assert_eq!(run(noise.clone()), run(noise));
        prop_assert_eq!(run(ChannelFault::reliable()), run(ChannelFault::reliable()));
    }

    #[test]
    fn algorithm2_trace_is_bit_identical_under_noise(seed in 0u64..512, n in 8usize..24) {
        let g = random::gnp(n, 0.2, seed);
        let algo = Algorithm2::new(&g, LmaxPolicy::global_delta(&g));
        let run = |channel: ChannelFault| {
            let mut sim = Simulator::new(&g, algo.clone(), vec![1; n], seed).with_channel(channel);
            let reports: Vec<RoundReport> = (0..120).map(|_| sim.step()).collect();
            (reports, sim.into_states())
        };
        let noise = ChannelFault::reliable().with_drop(0.15).with_spurious(0.05);
        prop_assert_eq!(run(noise.clone()), run(noise));
        prop_assert_eq!(run(ChannelFault::reliable()), run(ChannelFault::reliable()));
    }

    #[test]
    fn baseline_runs_are_bit_identical(seed in 0u64..512) {
        let g = random::gnp(40, 0.1, seed);
        let jsx = JsxMis::new();
        prop_assert_eq!(
            debug_repr(&jsx.run_clean(&g, seed, 100_000)),
            debug_repr(&jsx.run_clean(&g, seed, 100_000))
        );
        let afek = AfekStyleMis::new(40);
        prop_assert_eq!(
            debug_repr(&afek.run(&g, seed, 100_000)),
            debug_repr(&afek.run(&g, seed, 100_000))
        );
        prop_assert_eq!(
            debug_repr(&luby_mis(&g, seed, 100_000)),
            debug_repr(&luby_mis(&g, seed, 100_000))
        );
        let adaptive = AdaptiveMis::new();
        prop_assert_eq!(
            debug_repr(&adaptive.run_random_init(&g, seed, 100_000)),
            debug_repr(&adaptive.run_random_init(&g, seed, 100_000))
        );
    }

    #[test]
    fn generators_are_seed_deterministic(seed in 0u64..1024) {
        prop_assert_eq!(random::gnp(50, 0.1, seed), random::gnp(50, 0.1, seed));
        prop_assert_eq!(
            random::gnm(50, 100, seed).unwrap(),
            random::gnm(50, 100, seed).unwrap()
        );
        // Dense G(n, m): the complement-sampling branch.
        prop_assert_eq!(
            random::gnm(30, 400, seed).unwrap(),
            random::gnm(30, 400, seed).unwrap()
        );
        prop_assert_eq!(
            random::random_regular(50, 4, seed).unwrap(),
            random::random_regular(50, 4, seed).unwrap()
        );
        prop_assert_eq!(
            small_world::watts_strogatz(50, 4, 0.3, seed).unwrap(),
            small_world::watts_strogatz(50, 4, 0.3, seed).unwrap()
        );
    }
}
