//! Fault-injection integration tests: the paper's transient-fault model
//! exercised end to end, plus the Byzantine layer riding on the same
//! simulator (`DESIGN.md` "Byzantine faults and containment").

use beeping::faults::{FaultPlan, FaultTarget};
use beeping_mis::prelude::*;
use graphs::generators::{classic, random};
use mis::containment::{
    byz_distances, disruption_radius, disruption_radius_with, run_contained, stabilized_except,
    ContainmentConfig,
};
use mis::runner::{initial_levels, run_recovery};
use mis::theory::burn_in_horizon;
use proptest::prelude::*;

#[test]
fn scheduled_fault_plan_still_stabilizes() {
    let g = random::gnp(80, 0.1, 1);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let faults = FaultPlan::new()
        .with_fault(0, FaultTarget::All) // corrupt the initial configuration
        .with_fault(25, FaultTarget::RandomFraction(0.3))
        .with_fault(50, FaultTarget::RandomCount(5))
        .with_fault(75, FaultTarget::Nodes(vec![0, 1, 2]));
    let outcome = algo
        .run(&g, RunConfig::new(4).with_faults(faults))
        .expect("stabilizes after the last fault");
    assert!(outcome.rounds_run >= 75);
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
}

#[test]
fn fault_after_stabilization_forces_rework() {
    // A fault scheduled far in the future: the system first stabilizes,
    // then must re-stabilize. stabilization_round counts from the fault.
    let g = random::gnp(60, 0.1, 2);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    // First find the fault-free stabilization time.
    let free = algo.run(&g, RunConfig::new(9)).unwrap();
    let fault_round = free.stabilization_round + 50;
    let faults = FaultPlan::new().with_fault(fault_round, FaultTarget::All);
    let outcome = algo.run(&g, RunConfig::new(9).with_faults(faults)).unwrap();
    assert_eq!(outcome.rounds_run, fault_round + outcome.stabilization_round);
    assert!(outcome.stabilization_round > 0, "full corruption requires recovery work");
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
}

#[test]
fn single_node_fault_on_stable_path_recovers_locally() {
    // Deterministic micro-scenario: stable path 0-1-2 with 1 in the MIS;
    // corrupt the MIS node to ℓmax (it abandons the MIS). The system must
    // re-elect someone.
    let g = classic::path(3);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(3, 6));
    let mut sim = beeping::Simulator::new(&g, algo.clone(), vec![6, -6, 6], 1);
    assert!(algo.is_stabilized(&g, sim.states()));
    sim.corrupt_state(1, 6);
    let recovered = sim.run_until(100_000, |s| algo.is_stabilized(s.graph(), s.states()));
    assert!(recovered.is_some());
    let mis = algo.mis_members(&g, sim.states());
    assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
}

#[test]
fn corrupting_a_non_mis_node_to_claiming_state_is_detected() {
    // Corrupt a silenced neighbor to "claiming" (-ℓmax): it starts beeping
    // next to the true MIS node; the conflict must resolve to a valid MIS.
    let g = classic::path(3);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(3, 6));
    let mut sim = beeping::Simulator::new(&g, algo.clone(), vec![6, -6, 6], 2);
    sim.corrupt_state(0, -6);
    let recovered = sim.run_until(100_000, |s| algo.is_stabilized(s.graph(), s.states()));
    assert!(recovered.is_some());
    let mis = algo.mis_members(&g, sim.states());
    assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
}

#[test]
fn repeated_recovery_is_stable_across_fault_scales() {
    let g = random::gnp(100, 0.08, 3);
    for algo_policy in [LmaxPolicy::global_delta(&g), LmaxPolicy::own_degree(&g)] {
        let algo = Algorithm1::new(&g, algo_policy);
        for (seed, target) in [
            (1, FaultTarget::RandomCount(1)),
            (2, FaultTarget::RandomFraction(0.25)),
            (3, FaultTarget::RandomFraction(0.75)),
            (4, FaultTarget::All),
        ] {
            let rec = run_recovery(&g, &algo, seed, target, 1_000_000).expect("recovers");
            assert!(graphs::mis::is_maximal_independent_set(&g, &rec.mis));
            assert!(rec.recovery_rounds > 0);
        }
    }
}

#[test]
fn two_channel_recovery() {
    let g = random::gnp(100, 0.08, 5);
    let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let rec = run_recovery(&g, &algo, 7, FaultTarget::All, 1_000_000).expect("recovers");
    assert!(graphs::mis::is_maximal_independent_set(&g, &rec.mis));
}

#[test]
fn fault_plan_on_two_channel_algorithm() {
    let g = random::gnp(60, 0.1, 8);
    let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let faults = FaultPlan::new().with_fault(10, FaultTarget::RandomFraction(0.5));
    let outcome = algo.run(&g, RunConfig::new(1).with_faults(faults)).unwrap();
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
}

#[test]
fn corrupt_all_is_equivalent_to_arbitrary_restart() {
    // Corrupting every node to a specific configuration and continuing is
    // the same process as starting fresh from that configuration with the
    // same RNG offset — the protocol has no hidden state outside the
    // levels.
    let g = random::gnp(40, 0.1, 9);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let target = vec![3; 40];

    let mut sim_a = beeping::Simulator::new(&g, algo.clone(), vec![1; 40], 42);
    sim_a.run(10);
    sim_a.corrupt_all(|_, s| *s = 3);
    // RNG streams of sim_a have consumed 10 rounds; replicate in sim_b.
    let mut sim_b = beeping::Simulator::new(&g, algo.clone(), vec![1; 40], 42);
    sim_b.run(10);
    sim_b.corrupt_all(|_, s| *s = 3);
    assert_eq!(sim_a.states(), target.as_slice());
    for _ in 0..50 {
        sim_a.step();
        sim_b.step();
        assert_eq!(sim_a.states(), sim_b.states());
    }
}

#[test]
fn channel2_liar_never_certifies_false_mis() {
    // Path 0-1-2-3-4 with a channel-2 liar at the center: the liar's
    // persistent membership beep may silence its neighbors, but the
    // certificate on the correct subgraph must stay a real partial MIS —
    // independent, liar-free, and covering every node outside the liar's
    // radius-1 neighborhood.
    let g = classic::path(5);
    let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let plan = ByzantinePlan::new().with_behavior(2, ByzantineBehavior::Channel2Liar);
    let config =
        ContainmentConfig::new(3).with_radius(1).with_burn_in(burn_in_horizon(algo.policy()));
    let outcome = run_contained(&g, &algo, &plan, &config);
    assert!(outcome.is_contained(), "final radius {}", outcome.final_radius);
    assert!(!outcome.correct_mis[2], "the liar itself is never certified");
    for (u, v) in g.edges() {
        assert!(
            !(outcome.correct_mis[u] && outcome.correct_mis[v]),
            "certified set not independent at edge ({u},{v})"
        );
    }
    for v in [0usize, 4] {
        assert!(
            outcome.correct_mis[v]
                || g.neighbors(v).iter().any(|&u| outcome.correct_mis[u as usize]),
            "correct node {v} (distance 2 from the liar) left uncovered"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn empty_byzantine_plan_is_bit_identical_to_baseline(seed in 0u64..256, n in 8usize..24) {
        // An empty plan must not perturb any RNG stream: every round
        // report and every state is bit-identical to the reliable run.
        let g = random::gnp(n, 0.15, seed ^ 0x0B12);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let mut plain = Simulator::new(&g, algo.clone(), vec![1; g.len()], seed);
        let mut byz = Simulator::new(&g, algo.clone(), vec![1; g.len()], seed)
            .with_byzantine(ByzantinePlan::new());
        for _ in 0..60 {
            let a = plain.step();
            let b = byz.step();
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            prop_assert_eq!(plain.states(), byz.states());
        }
    }

    #[test]
    fn disruption_radius_is_zero_whenever_stabilized(seed in 0u64..256, n in 8usize..24) {
        // Quantifier-restriction semantics: a fully stabilized
        // configuration has radius 0 regardless of where the (hypothetical)
        // byzantine sites sit — including nowhere.
        let g = random::gnp(n, 0.15, seed ^ 0x7E57);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(seed)).expect("stabilizes");
        let active = vec![true; g.len()];
        let site = seed as usize % g.len();
        prop_assert_eq!(disruption_radius(&algo, &g, &outcome.levels, &active, &[site]), 0);
        prop_assert_eq!(disruption_radius(&algo, &g, &outcome.levels, &active, &[]), 0);
    }

    #[test]
    fn radius_is_the_least_radius_certified_by_stabilized_except(
        seed in 0u64..256,
        n in 8usize..20,
    ) {
        // disruption_radius ≤ r ⟺ stabilized_except(r), on arbitrary
        // (random, typically unstable) configurations.
        let g = random::gnp(n, 0.2, seed);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let levels = initial_levels(
            &algo,
            &RunConfig::new(seed).with_init(InitialLevels::Random),
        );
        let active = vec![true; g.len()];
        let dist = byz_distances(&g, &[seed as usize % g.len()]);
        let r = disruption_radius_with(&algo, &g, &levels, &active, &dist);
        for radius in 0..g.len() {
            prop_assert_eq!(
                stabilized_except(&algo, &g, &levels, &active, &dist, radius),
                radius >= r
            );
        }
    }
}
