//! Cross-validation of the baselines against the paper's algorithms and
//! the sequential ground truth.

use baselines::jeavons::{JsxMis, JsxState, JsxStatus};
use baselines::{luby_mis, AfekStyleMis};
use beeping_mis::prelude::*;
use graphs::generators::random;

#[test]
fn all_algorithms_produce_independent_dominating_sets() {
    let g = random::gnp(150, 0.05, 11);
    let mut sizes = Vec::new();

    let alg1 = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let o1 = alg1.run(&g, RunConfig::new(1)).unwrap();
    sizes.push(("alg1", graphs::mis::size(&o1.mis)));

    let alg2 = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let o2 = alg2.run(&g, RunConfig::new(1)).unwrap();
    sizes.push(("alg2", graphs::mis::size(&o2.mis)));

    let (jsx, _) = JsxMis::new().run_clean(&g, 1, 1_000_000).unwrap();
    sizes.push(("jsx", graphs::mis::size(&jsx)));

    let (afek, _) = AfekStyleMis::new(150).run(&g, 1, 1_000_000).unwrap();
    sizes.push(("afek", graphs::mis::size(&afek)));

    let (luby, _) = luby_mis(&g, 1, 1_000_000).unwrap();
    sizes.push(("luby", graphs::mis::size(&luby)));

    let greedy = graphs::mis::greedy_mis(&g);
    sizes.push(("greedy", graphs::mis::size(&greedy)));

    // Every MIS of a graph has size within a Δ+1 factor of every other;
    // sanity-check they are in the same ballpark (same graph, same degree
    // structure) and all nonzero.
    let min = sizes.iter().map(|&(_, s)| s).min().unwrap();
    let max = sizes.iter().map(|&(_, s)| s).max().unwrap();
    assert!(min > 0);
    assert!(
        max <= min * (g.max_degree() + 1),
        "MIS sizes {sizes:?} outside the theoretical spread"
    );
}

#[test]
fn jsx_matches_alg1_speed_from_clean_start() {
    // §2: Algorithm 1 "maintains the same run-time as the original
    // algorithm". From clean-ish starts, both are O(log n); assert they are
    // within a 20× constant on the same graph (generous — we only test the
    // order of growth, not the constant).
    let g = random::gnp(300, 8.0 / 299.0, 13);
    let mut jsx_total = 0u64;
    let mut alg1_total = 0u64;
    for seed in 0..5 {
        jsx_total += JsxMis::new().run_clean(&g, seed, 1_000_000).unwrap().1;
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        alg1_total += algo
            .run(&g, RunConfig::new(seed).with_init(InitialLevels::AllOne))
            .unwrap()
            .stabilization_round;
    }
    let ratio = alg1_total as f64 / jsx_total as f64;
    assert!(
        (0.05..20.0).contains(&ratio),
        "alg1/jsx round ratio {ratio} is out of the constant-factor band"
    );
}

#[test]
fn afek_pays_for_loose_n_bounds_while_alg1_does_not() {
    // The Afek-style baseline's epochs are Θ(log N) rounds, so a looser
    // upper bound on the network size costs proportionally more; Algorithm
    // 1 only depends on the *degree* bound, which is unchanged. This is the
    // qualitative separation the paper's related-work discussion draws.
    let g = random::gnp(512, 8.0 / 511.0, 17);
    let afek_tight = AfekStyleMis::new(512);
    let afek_loose = AfekStyleMis::new(512 << 12); // N = 4096·n
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let mut tight_total = 0u64;
    let mut loose_total = 0u64;
    let mut alg1_total = 0u64;
    for seed in 0..5 {
        tight_total += afek_tight.run(&g, seed, 10_000_000).unwrap().1;
        loose_total += afek_loose.run(&g, seed, 10_000_000).unwrap().1;
        alg1_total += algo.run(&g, RunConfig::new(seed)).unwrap().stabilization_round;
    }
    assert!(
        loose_total as f64 > 1.5 * tight_total as f64,
        "loose N bound ({loose_total}) should cost materially more than tight ({tight_total})"
    );
    assert!(
        loose_total > alg1_total,
        "with a loose N bound the epoch baseline ({loose_total}) loses to Algorithm 1 ({alg1_total})"
    );
}

#[test]
fn jsx_fails_exactly_where_the_paper_says() {
    // Frozen corrupted "done" states are undetectable: JSX terminates
    // immediately with an invalid answer, while Algorithm 1 started from
    // its own worst configuration still converges.
    let g = graphs::generators::classic::cycle(10);
    let mut all_out = vec![JsxState::clean(); 10];
    for s in &mut all_out {
        s.status = JsxStatus::OutOfMis;
    }
    let (mis, rounds) = JsxMis::new().run_from(&g, all_out, 0, 1_000).unwrap();
    assert_eq!(rounds, 0);
    assert!(!graphs::mis::is_maximal_independent_set(&g, &mis));

    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome = algo.run(&g, RunConfig::new(0).with_init(InitialLevels::AllMax)).unwrap();
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
}

#[test]
fn luby_uses_far_fewer_rounds_than_beeping_algorithms() {
    // The LOCAL model's power shows: Luby's 2-round iterations finish in
    // far fewer communication rounds than any beeping protocol here.
    let g = random::gnp(400, 8.0 / 399.0, 19);
    let (_, luby_iters) = luby_mis(&g, 3, 1_000).unwrap();
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let alg1_rounds = algo.run(&g, RunConfig::new(3)).unwrap().stabilization_round;
    assert!(2 * luby_iters < alg1_rounds);
}
