//! Facade-level coverage of the remaining public surface: dynamics, theory,
//! the observer via the prelude, and documentation-level workflows a
//! downstream user would copy.

use beeping_mis::prelude::*;
use mis::dynamics;
use mis::observer::Snapshot;
use mis::theory;

#[test]
fn theory_preconditions_hold_for_shipped_defaults() {
    for n in [32usize, 128, 512] {
        let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), n as u64);
        assert!(theory::satisfies_thm21_precondition(
            &g,
            &LmaxPolicy::global_delta(&g),
            mis::policy::C1_GLOBAL_DELTA
        ));
        assert!(theory::satisfies_thm22_precondition(
            &g,
            &LmaxPolicy::own_degree(&g),
            mis::policy::C1_OWN_DEGREE
        ));
        assert!(theory::satisfies_cor23_precondition(
            &g,
            &LmaxPolicy::two_hop_degree(&g),
            mis::policy::C1_TWO_HOP
        ));
        // And Thm 2.1's η bound matches the lemma threshold at c1 = 15.
        assert!(theory::eta_bound_thm21(mis::policy::C1_GLOBAL_DELTA) <= theory::ETA_THRESHOLD);
    }
}

#[test]
fn eta_bound_is_respected_by_live_executions() {
    // Observe a real run: η_t(v) never exceeds the static Thm 2.1 bound.
    let g = graphs::generators::random::gnp(80, 0.1, 4);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome = algo.run(&g, RunConfig::new(2).with_level_recording()).expect("stabilizes");
    let history = outcome.level_history.unwrap();
    let lmax = algo.policy().lmax_values();
    let bound = theory::eta_bound_thm21(mis::policy::C1_GLOBAL_DELTA);
    for levels in history.iter().step_by(5) {
        let snap = Snapshot::new(&g, lmax, levels);
        for v in g.nodes() {
            assert!(snap.eta(v) <= bound + 1e-12);
            assert_eq!(snap.eta_prime(v), 0.0, "uniform policy ⇒ η′ = 0");
        }
    }
}

#[test]
fn burn_in_horizon_bounds_the_lemma31_invariant() {
    let g = graphs::generators::scale_free::barabasi_albert(60, 3, 9).unwrap();
    let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
    let horizon = theory::burn_in_horizon(algo.policy());
    let outcome = algo
        .run(&g, RunConfig::new(1).with_init(InitialLevels::AllClaiming).with_level_recording())
        .expect("stabilizes");
    let history = outcome.level_history.unwrap();
    let lmax = algo.policy().lmax_values();
    for (t, levels) in history.iter().enumerate().skip(horizon as usize + 1) {
        let snap = Snapshot::new(&g, lmax, levels);
        for v in g.nodes() {
            assert!(snap.level(v) > 0 || snap.mu(v) > 0.0, "Lemma 3.1 violated at t={t}, v={v}");
        }
    }
}

#[test]
fn dynamics_trajectory_is_usable_from_facade() {
    let g = graphs::generators::classic::cycle(40);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome = algo.run(&g, RunConfig::new(5).with_level_recording()).expect("stabilizes");
    let stats = dynamics::trajectory(
        &g,
        algo.policy().lmax_values(),
        outcome.level_history.as_ref().unwrap(),
    );
    // The stable count time series ends at n and the in-MIS series at the
    // outcome's MIS size.
    assert_eq!(stats.last().unwrap().stable, 40);
    assert_eq!(stats.last().unwrap().in_mis, outcome.mis.iter().filter(|&&m| m).count());
    // mean_p ∈ [0, 1] throughout.
    assert!(stats.iter().all(|s| (0.0..=1.0).contains(&s.mean_p)));
}

#[test]
fn readme_workflow_compiles_and_runs() {
    // The exact workflow advertised in the README.
    let g = graphs::generators::random::gnp(500, 8.0 / 499.0, 42);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome =
        algo.run(&g, RunConfig::new(7).with_init(InitialLevels::Random)).expect("stabilizes");
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    assert!(outcome.stabilization_round > 0);
}
