//! Integration tests of the extension features: the adaptive
//! knowledge-free variant, the constant-state baseline, adversarial
//! wake-up, the Stone Age embedding, and the half-duplex ablation —
//! exercised together through the facade crate.

use baselines::stone_age::BeepingInStoneAge;
use baselines::TwoStateMis;
use beeping::sim::DuplexMode;
use beeping::sleep::{Sleepy, SleepyState};
use beeping_mis::prelude::*;
use graphs::generators::{classic, composite, random};
use mis::adaptive::{AdaptiveMis, AdaptiveState};
use mis::levels::Level;
use mis::runner::{initial_levels, SelfStabilizingMis};

#[test]
fn adaptive_matches_knowledge_based_outcomes_in_validity() {
    let g = random::gnp(120, 0.08, 1);
    let adaptive = AdaptiveMis::new();
    let knowledge = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    for seed in 0..5 {
        let (a_mis, _) = adaptive.run_random_init(&g, seed, 2_000_000).expect("adaptive");
        let outcome = knowledge.run(&g, RunConfig::new(seed)).expect("knowledge");
        assert!(graphs::mis::is_maximal_independent_set(&g, &a_mis));
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }
}

#[test]
fn adaptive_survives_fault_bursts() {
    // Corrupt levels AND caps mid-run; the variant must re-stabilize.
    let g = random::gnp(80, 0.1, 2);
    let adaptive = AdaptiveMis::new();
    let init: Vec<AdaptiveState> = (0..80).map(|_| AdaptiveState::fresh()).collect();
    let mut sim = beeping::Simulator::new(&g, adaptive, init, 5);
    sim.run_until(2_000_000, |s| adaptive.is_stabilized(&g, s.states()))
        .expect("first stabilization");
    let mut rng = beeping::rng::aux_rng(5, 0xFE);
    sim.corrupt_all(|_, s| {
        *s = AdaptiveState::sanitized(
            rand::Rng::gen_range(&mut rng, -100i64..100),
            rand::Rng::gen_range(&mut rng, -10i64..100),
        );
    });
    sim.run_until(4_000_000, |s| adaptive.is_stabilized(&g, s.states()))
        .expect("re-stabilization after full corruption");
    let mis_set = adaptive.mis_members(&g, sim.states());
    assert!(graphs::mis::is_maximal_independent_set(&g, &mis_set));
}

#[test]
fn two_state_and_alg1_agree_on_small_worst_cases() {
    for g in [
        classic::complete(12),
        classic::complete_bipartite(8, 8),
        composite::star_of_cliques(4, 5),
        classic::star(25),
    ] {
        let two_state = TwoStateMis::new();
        let (mis2, _) = two_state.run_random_init(&g, 7, 10_000_000).expect("2-state");
        assert!(graphs::mis::is_maximal_independent_set(&g, &mis2));
        let alg1 = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let o = alg1.run(&g, RunConfig::new(7)).expect("alg1");
        assert!(graphs::mis::is_maximal_independent_set(&g, &o.mis));
    }
}

#[test]
fn sleepy_wrapped_algorithm1_stabilizes_after_staggered_wakeup() {
    let g = random::gnp(100, 0.08, 4);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = RunConfig::new(9);
    let levels: Vec<Level> = initial_levels(&algo, &config);
    let init: Vec<SleepyState<Level>> = levels
        .iter()
        .enumerate()
        .map(|(v, &l)| SleepyState::new((v as u64 * 7) % 500, l))
        .collect();
    let mut sim = beeping::Simulator::new(&g, Sleepy::new(algo.clone()), init, 9);
    let done = sim.run_until(1_000_000, |s| {
        s.states().iter().all(SleepyState::is_awake) && {
            let ls: Vec<Level> = s.states().iter().map(|st| st.inner).collect();
            algo.stabilized(&g, &ls)
        }
    });
    assert!(done.is_some());
    let ls: Vec<Level> = sim.states().iter().map(|st| st.inner).collect();
    assert!(graphs::mis::is_maximal_independent_set(&g, &algo.mis_of(&g, &ls)));
}

#[test]
fn stone_age_embedding_full_pipeline() {
    // The facade-level variant of the bit-identical test: run both
    // executors to stabilization and compare the final MIS.
    let g = random::gnp(70, 0.1, 6);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let native = algo.run(&g, RunConfig::new(13)).expect("native");

    let config = RunConfig::new(13);
    let init = initial_levels(&algo, &config);
    let mut stone = BeepingInStoneAge::new(algo.clone()).into_simulator(&g, init, 13);
    let lmax = algo.policy().lmax_values().to_vec();
    let done = stone.run_until(1_000_000, |levels| mis::observer::is_stabilized(&g, &lmax, levels));
    assert_eq!(done, Some(native.stabilization_round));
    assert_eq!(algo.mis_members(&g, stone.states()), native.mis);
}

#[test]
fn half_duplex_breaks_exactly_the_join_rule() {
    // Single edge, both claiming: under full duplex the conflict resolves;
    // under half duplex both stay committed forever.
    let g = classic::path(2);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(2, 5));

    let mut full = beeping::Simulator::new(&g, algo.clone(), vec![-5, -5], 3);
    let resolved = full.run_until(100_000, |s| algo.is_stabilized(&g, s.states()));
    assert!(resolved.is_some(), "full duplex resolves the double claim");

    let mut half =
        beeping::Simulator::new(&g, algo.clone(), vec![-5, -5], 3).with_duplex(DuplexMode::Half);
    half.run(5_000);
    assert_eq!(half.states(), &[-5, -5], "half duplex: both blind claimants stay frozen at -ℓmax");
}

#[test]
fn extensions_do_not_perturb_core_determinism() {
    // Wrapping and unwrapping through extension layers must not change the
    // core algorithm's outcomes for the same seed.
    let g = random::gnp(60, 0.1, 8);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let a = algo.run(&g, RunConfig::new(21)).unwrap();
    let b = algo.run(&g, RunConfig::new(21)).unwrap();
    assert_eq!(a.mis, b.mis);
    assert_eq!(a.stabilization_round, b.stabilization_round);
}
