//! End-to-end integration: every algorithm on every workload family.

use beeping_mis::prelude::*;
use graphs::generators::{
    classic, composite, geometric, lattice, random, scale_free, small_world, trees,
};
use graphs::Graph;

fn workload_zoo() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", classic::path(40)),
        ("cycle", classic::cycle(41)),
        ("complete", classic::complete(20)),
        ("star", classic::star(40)),
        ("wheel", classic::wheel(30)),
        ("bipartite", classic::complete_bipartite(10, 15)),
        ("grid", lattice::grid(7, 8)),
        ("torus", lattice::torus(6, 7)),
        ("hypercube", lattice::hypercube(6)),
        ("king", lattice::king_grid(6, 6)),
        ("gnp", random::gnp(120, 0.06, 1)),
        ("gnm", random::gnm(100, 300, 2).unwrap()),
        ("regular", random::random_regular(60, 4, 3).unwrap()),
        ("bip-rand", random::random_bipartite(30, 30, 0.1, 4)),
        ("geometric", geometric::random_geometric_expected_degree(150, 7.0, 5)),
        ("ba", scale_free::barabasi_albert(120, 3, 6).unwrap()),
        ("chung-lu", scale_free::chung_lu_power_law(100, 2.5, 5.0, 7).unwrap()),
        ("ws", small_world::watts_strogatz(80, 4, 0.2, 8).unwrap()),
        ("rec-tree", trees::random_recursive_tree(90, 9)),
        ("prufer", trees::random_prufer_tree(90, 10)),
        ("kary", trees::kary_tree(60, 3)),
        ("caterpillar", trees::caterpillar(12, 3)),
        ("spider", trees::spider(6, 8)),
        ("star-cliques", composite::star_of_cliques(8, 6)),
        ("clique-chain", composite::clique_chain(6, 7)),
        ("lollipop", composite::lollipop(12, 20)),
        ("broom", composite::broom(20, 15)),
        ("isolated", Graph::empty(25)),
        ("mixed", classic::path(10).disjoint_union(&classic::complete(8))),
    ]
}

#[test]
fn algorithm1_all_policies_all_workloads() {
    for (name, g) in workload_zoo() {
        for policy in [
            LmaxPolicy::global_delta(&g),
            LmaxPolicy::own_degree(&g),
            LmaxPolicy::two_hop_degree(&g),
        ] {
            let pname = policy.name().to_string();
            let algo = Algorithm1::new(&g, policy);
            let outcome = algo
                .run(&g, RunConfig::new(11).with_init(InitialLevels::Random))
                .unwrap_or_else(|e| panic!("{name}/{pname}: {e}"));
            assert!(
                graphs::mis::is_maximal_independent_set(&g, &outcome.mis),
                "{name}/{pname} produced a non-MIS"
            );
        }
    }
}

#[test]
fn algorithm2_all_workloads() {
    for (name, g) in workload_zoo() {
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let outcome = algo
            .run(&g, RunConfig::new(13).with_init(InitialLevels::Random))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            graphs::mis::is_maximal_independent_set(&g, &outcome.mis),
            "{name} produced a non-MIS"
        );
    }
}

#[test]
fn baselines_all_workloads() {
    for (name, g) in workload_zoo() {
        let (jsx_mis, _) = baselines::JsxMis::new()
            .run_clean(&g, 17, 2_000_000)
            .unwrap_or_else(|| panic!("jsx did not terminate on {name}"));
        assert!(graphs::mis::is_maximal_independent_set(&g, &jsx_mis), "jsx on {name}");

        let (afek_mis, _) = baselines::AfekStyleMis::new(g.len().max(2))
            .run(&g, 17, 5_000_000)
            .unwrap_or_else(|| panic!("afek did not terminate on {name}"));
        assert!(graphs::mis::is_maximal_independent_set(&g, &afek_mis), "afek on {name}");

        let (luby, _) = baselines::luby_mis(&g, 17, 1_000_000)
            .unwrap_or_else(|| panic!("luby did not terminate on {name}"));
        assert!(graphs::mis::is_maximal_independent_set(&g, &luby), "luby on {name}");

        let greedy = graphs::mis::greedy_mis(&g);
        assert!(graphs::mis::is_maximal_independent_set(&g, &greedy), "greedy on {name}");
    }
}

#[test]
fn deterministic_across_reconstruction() {
    // Rebuilding graph + algorithm from scratch with the same seeds gives
    // bit-identical outcomes.
    let make = || {
        let g = random::gnp(80, 0.1, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let o = algo.run(&g, RunConfig::new(23)).unwrap();
        (o.mis, o.stabilization_round, o.levels)
    };
    assert_eq!(make(), make());
}

#[test]
fn outcome_mis_matches_final_levels() {
    let g = random::gnp(60, 0.1, 6);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome = algo.run(&g, RunConfig::new(3)).unwrap();
    assert_eq!(outcome.mis, algo.mis_members(&g, &outcome.levels));
    assert!(algo.is_stabilized(&g, &outcome.levels));
}

#[test]
fn all_initial_regimes_agree_on_validity() {
    let g = scale_free::barabasi_albert(100, 2, 2).unwrap();
    let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
    for init in [
        InitialLevels::Random,
        InitialLevels::AllMax,
        InitialLevels::AllClaiming,
        InitialLevels::AllOne,
        InitialLevels::Custom((0..100).map(|v| v as i64 % 7 - 3).collect()),
    ] {
        let outcome = algo
            .run(&g, RunConfig::new(5).with_init(init.clone()))
            .unwrap_or_else(|e| panic!("{init:?}: {e}"));
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis), "{init:?}");
    }
}

#[test]
fn trace_round_accounting() {
    let g = classic::cycle(30);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome = algo.run(&g, RunConfig::new(2)).unwrap();
    assert_eq!(outcome.trace.len() as u64, outcome.rounds_run);
    // Rounds are numbered 1..=rounds_run.
    let rounds: Vec<u64> = outcome.trace.reports().iter().map(|r| r.round).collect();
    assert_eq!(rounds, (1..=outcome.rounds_run).collect::<Vec<_>>());
    // After stabilization every MIS member beeps every round, so the last
    // round must have at least |MIS| beeps.
    let mis_size = outcome.mis.iter().filter(|&&m| m).count();
    assert!(outcome.trace.reports().last().unwrap().beeps_channel1 >= mis_size);
}

#[test]
fn facade_prelude_surface_compiles_and_runs() {
    // Exercise every name exported through the prelude.
    let g: Graph = GraphBuilder::new(3).build();
    assert!(g.is_empty() || g.len() == 3);
    let _ = Channels::One;
    let _ = BeepSignal::silent();
    let plan = FaultPlan::new().with_fault(1, beeping::faults::FaultTarget::All);
    assert_eq!(plan.events().len(), 1);
    let _ = TransientFault::new(0, beeping::faults::FaultTarget::All);
    let report = RoundReport::default();
    assert_eq!(report.round, 0);
    let err = StabilizationError { max_rounds: 1, stable_count: 0, n: 1 };
    assert!(!err.to_string().is_empty());
}
