//! # beeping-mis
//!
//! A production-quality Rust reproduction of
//! *"Self-Stabilizing MIS Computation in the Beeping Model"*
//! (Giakkoupis, Turau & Ziccardi, PODC 2024).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`graphs`]: graph substrate (CSR graphs, generators, MIS verification);
//! - [`beeping`]: the beeping-model simulator (full-duplex collision
//!   detection, two channels, transient-fault injection);
//! - [`mis`]: the paper's contribution — Algorithm 1 and Algorithm 2 with
//!   the three `ℓmax` knowledge policies, plus instrumentation mirroring the
//!   paper's analysis (platinum/golden rounds, η/η′, stable sets);
//! - [`baselines`]: comparators (Jeavons–Scott–Xu, Afek et al., Luby,
//!   sequential greedy);
//! - [`analysis`]: statistics, regression fits and table formatting for the
//!   experiments.
//!
//! ## Quickstart
//!
//! ```
//! use beeping_mis::prelude::*;
//!
//! // A 200-node random geometric graph (a wireless sensor deployment).
//! let g = graphs::generators::geometric::random_geometric_expected_degree(200, 8.0, 42);
//!
//! // Run Algorithm 1 with global-Δ knowledge (Theorem 2.1) from an
//! // arbitrary (adversarial) initial configuration.
//! let outcome = Algorithm1::new(&g, LmaxPolicy::global_delta(&g))
//!     .run(&g, RunConfig::new(42).with_init(InitialLevels::Random))
//!     .expect("stabilizes well within the default round budget");
//!
//! assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
//! println!("stabilized in {} rounds", outcome.stabilization_round);
//! ```

pub use analysis;
pub use baselines;
pub use beeping;
pub use graphs;
pub use mis;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use analysis;
    pub use baselines;
    pub use beeping;
    pub use graphs;
    pub use mis;

    pub use beeping::byzantine::{ByzantineBehavior, ByzantinePlan};
    pub use beeping::faults::{FaultError, FaultPlan, FaultTarget, TransientFault};
    pub use beeping::trace::RoundReport;
    pub use beeping::{BeepSignal, BeepingProtocol, Channels, EngineMode, Simulator};
    pub use graphs::{Graph, GraphBuilder};
    pub use mis::algorithm1::Algorithm1;
    pub use mis::algorithm2::Algorithm2;
    pub use mis::policy::LmaxPolicy;
    pub use mis::runner::{InitialLevels, Outcome, RunConfig, StabilizationError};
}
